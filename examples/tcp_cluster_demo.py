"""Live two-process edge cluster over real TCP — with a power failure.

Stands up a Worker device as a separate OS process (the paper's second
Jetson board), runs both inference modes over real sockets, then kills the
worker process mid-session and shows the Fluid failover: the Master detects
the death and keeps serving on its own certified sub-network.

Run:  python examples/tcp_cluster_demo.py   (about a minute)
"""

import numpy as np

from repro.data import SynthMNISTConfig, load_synth_mnist
from repro.distributed import LocalCluster, WorkerUnavailable
from repro.training import RecipeConfig, TrainConfig, train_fluid
from repro.utils import make_rng


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    return float((logits.argmax(axis=1) == labels).mean())


def main() -> None:
    print("Training a small Fluid DyDNN...")
    train_set, test_set = load_synth_mnist(SynthMNISTConfig(num_train=2000, num_test=400, seed=1))
    config = RecipeConfig(stage=TrainConfig(epochs=1, lr=0.05), niters=2)
    model, _ = train_fluid(train_set, rng=make_rng(3), config=config)
    ws = model.width_spec

    print("Spawning the worker device as a separate OS process (TCP on localhost)...")
    with LocalCluster(model.net) as cluster:
        master = cluster.master
        print(f"  worker alive: {master.ping_worker()}")

        x, y = test_set[np.arange(128)]

        print("\n[HA mode] joint 100% model, per-layer activation exchange over TCP:")
        logits = master.run_ha(ws.full(), x)
        print(f"  accuracy on 128 images: {accuracy(logits, y):.3f}")

        print("[HT mode] independent halves on parallel streams:")
        half = len(x) // 2
        logits_m, logits_w = master.run_ht(
            ws.find("lower50"), ws.find("upper50"), x[:half], x[half:]
        )
        mixed = (accuracy(logits_m, y[:half]) + accuracy(logits_w, y[half:])) / 2
        print(f"  mixed-stream accuracy: {mixed:.3f}")
        print(
            f"  emulated throughput so far: {master.ledger.throughput_ips():.1f} img/s "
            f"(compute {master.ledger.compute_s:.2f}s + comm {master.ledger.comm_s:.2f}s)"
        )

        print("\n*** Killing the worker process (simulated power outage) ***")
        cluster.kill_worker()
        try:
            master.run_remote(ws.find("upper50"), x[:4])
        except WorkerUnavailable as exc:
            print(f"  master detected the failure: {type(exc).__name__}: {exc}")
        print(f"  heartbeat: {master.ping_worker()}")

        print("[failover] master continues standalone on its certified lower 50% model:")
        logits = master.run_local(ws.find("lower50"), x)
        print(f"  accuracy on 128 images: {accuracy(logits, y):.3f}")
        print("\nA Static DNN in the same situation reports zero throughput —")
        print("its resident half-weights are not certified to run alone.")


if __name__ == "__main__":
    main()
