"""Extensions demo: energy per image, and Fluid beyond two devices.

Part 1 extends Fig. 2 with the energy axis: joules per image for each
two-device deployment, using a Jetson-class three-state power model.

Part 2 runs the analytical N-device generalisation: High-Throughput
scaling and worst-case throughput after k failures for 2/4/8-device
clusters.

Run:  python examples/scaling_energy_demo.py   (finishes in seconds)
"""

from repro.comm import CommLatencyModel
from repro.device import EnergyModel, jetson_nx_master, jetson_nx_power, jetson_nx_worker
from repro.distributed import MASTER, SystemThroughputModel
from repro.distributed.multidevice import BlockPartition, MultiDeviceModel
from repro.slimmable import SlimmableConvNet, WidthSpec, paper_width_spec
from repro.utils import make_rng


def energy_section() -> None:
    net = SlimmableConvNet(paper_width_spec(), rng=make_rng(0))
    ws = net.width_spec
    tm = SystemThroughputModel(net, jetson_nx_master(), jetson_nx_worker(), CommLatencyModel())
    em = EnergyModel(jetson_nx_power(), jetson_nx_power())

    ha = tm.ha_throughput(ws.full())
    ht = tm.ht_throughput(ws.find("lower50"), ws.find("upper50"))
    solo = tm.standalone_throughput(MASTER, ws.find("lower50"))

    print("Energy per image (both devices powered unless noted):")
    rows = [
        ("Fluid HT (both devices busy)", ht.throughput_ips, em.joules_per_image(ht)),
        ("Dynamic 'HT' (worker parked)", solo.throughput_ips, em.joules_per_image(solo, 2)),
        ("HA / Static (joint + comm)", ha.throughput_ips, em.joules_per_image(ha)),
        ("Lone survivor (1 device)", solo.throughput_ips, em.joules_per_image(solo, 1)),
    ]
    for name, ips, joules in rows:
        print(f"  {name:32s} {ips:5.1f} img/s   {joules:5.2f} J/img")
    print()


def scaling_section() -> None:
    print("N-device Fluid scaling (even channel blocks, identical devices):")
    print(f"  {'N':>3s} {'HT img/s':>9s} {'HA img/s':>9s}  worst-case after k failures")
    for n in (2, 4, 8):
        spec = WidthSpec(
            max_width=16,
            lower_widths=tuple(16 * k // n for k in range(1, n + 1)),
            split=16 // n,
            num_convs=3,
        )
        net = SlimmableConvNet(spec, rng=make_rng(0))
        model = MultiDeviceModel(
            net, [jetson_nx_master()] * n, CommLatencyModel(), BlockPartition.even(n, 16)
        )
        profile = model.reliability_profile()
        decay = " ".join(f"k={k}:{profile[k]:5.1f}" for k in range(n + 1))
        print(
            f"  {n:3d} {model.ht_throughput(range(n)):9.1f} "
            f"{model.ha_throughput(range(n)):9.1f}  {decay}"
        )
    print("\nAny k < N failures leave the system serving: each block is its")
    print("own standalone model, which is the paper's property at N = 2.")


def main() -> None:
    energy_section()
    scaling_section()


if __name__ == "__main__":
    main()
