"""Regenerate the paper's Fig. 2 end-to-end.

Trains all three model families at full fidelity (this is the slow part,
several minutes), evaluates every availability scenario and mode, and
prints the throughput/accuracy table next to the paper's reported numbers
together with the qualitative shape checks.

Run:  python examples/fig2_report.py [--fast]
"""

import argparse
import time

from repro.data import SynthMNISTConfig, load_synth_mnist
from repro.experiments import format_fig2_table, format_shape_checks, run_fig2, shape_checks
from repro.training import RecipeConfig, TrainConfig, train_family
from repro.utils import make_rng


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true", help="small dataset / fewer epochs (~1 min)"
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    if args.fast:
        data_cfg = SynthMNISTConfig(num_train=2000, num_test=500, seed=0)
        recipe = RecipeConfig(stage=TrainConfig(epochs=1, lr=0.05), niters=2)
    else:
        data_cfg = SynthMNISTConfig(num_train=6000, num_test=1500, seed=0)
        recipe = RecipeConfig(stage=TrainConfig(epochs=2, lr=0.05), niters=3)

    print(f"Generating data ({data_cfg.num_train} train / {data_cfg.num_test} test)...")
    train_set, test_set = load_synth_mnist(data_cfg)

    models = {}
    for family in ("static", "dynamic", "fluid"):
        t0 = time.time()
        models[family], _ = train_family(
            family, train_set, rng=make_rng(args.seed), config=recipe
        )
        print(f"  trained {family} in {time.time() - t0:.0f}s")

    result = run_fig2(models, test_set)
    print()
    print(format_fig2_table(result))
    print()
    print(format_shape_checks(shape_checks(result)))


if __name__ == "__main__":
    main()
