"""High-Accuracy vs High-Throughput: the adaptability trade-off.

Shows (a) the two operating modes' throughput/latency breakdown on the
calibrated emulated testbed, and (b) how the HT-vs-HA throughput gap moves
as the device link gets faster or slower — the crossover analysis behind
the paper's claim that comm overhead caps distributed Static DNNs.

Run:  python examples/modes_demo.py   (finishes in seconds)
"""

from repro.comm import CommLatencyModel
from repro.device import jetson_nx_master, jetson_nx_worker
from repro.distributed import SystemThroughputModel
from repro.slimmable import SlimmableConvNet, paper_width_spec
from repro.utils import make_rng


def main() -> None:
    net = SlimmableConvNet(paper_width_spec(), rng=make_rng(0))
    ws = net.width_spec
    comm = CommLatencyModel()
    tm = SystemThroughputModel(net, jetson_nx_master(), jetson_nx_worker(), comm)

    print("Operating modes on the calibrated testbed (paper Fig. 2 regime):\n")
    ha = tm.ha_throughput(ws.full())
    ht = tm.ht_throughput(ws.find("lower50"), ws.find("upper50"))
    print(
        f"  HA (joint 100% model):   {ha.throughput_ips:5.1f} img/s   "
        f"compute m/w = {1e3*ha.compute_master_s:.1f}/{1e3*ha.compute_worker_s:.1f} ms, "
        f"comm = {1e3*ha.comm_s:.1f} ms"
    )
    print(
        f"  HT (independent halves): {ht.throughput_ips:5.1f} img/s   "
        f"per-stream latency m/w = {1e3*ht.compute_master_s:.1f}/{1e3*ht.compute_worker_s:.1f} ms"
    )
    print(f"  -> HT/HA throughput ratio: {ht.throughput_ips / ha.throughput_ips:.2f}x\n")

    print("Link-speed sweep (scaling the offline-measured comm latency):")
    print(f"  {'comm scale':>10s} {'HA img/s':>9s} {'HT img/s':>9s} {'HT/HA':>6s}")
    for scale in (0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0):
        scaled = CommLatencyModel(
            base_latency_s=comm.base_latency_s * scale,
            bandwidth_bytes_per_s=comm.bandwidth_bytes_per_s / max(scale, 1e-9)
            if scale > 0
            else 1e15,
        )
        tm_s = SystemThroughputModel(net, jetson_nx_master(), jetson_nx_worker(), scaled)
        ha_s = tm_s.ha_throughput(ws.full()).throughput_ips
        ht_s = tm_s.ht_throughput(ws.find("lower50"), ws.find("upper50")).throughput_ips
        print(f"  {scale:10.2f} {ha_s:9.2f} {ht_s:9.2f} {ht_s / ha_s:6.2f}")
    print(
        "\nHT never pays the link, so its advantage grows with comm cost;\n"
        "even with a free link, per-layer overhead keeps HT ahead on this model."
    )


if __name__ == "__main__":
    main()
