"""Quickstart: train a Fluid DyDNN and inspect its sub-networks.

Trains the paper's 3-conv CNN with nested incremental training (Algorithm 1)
on synthetic MNIST, then shows the property that makes the model "fluid":
every sub-network — including the upper slices — works standalone.

Run:  python examples/quickstart.py
Takes about a minute on a laptop.
"""

from repro.data import SynthMNISTConfig, load_synth_mnist
from repro.device import subnet_flops, subnet_param_count
from repro.training import RecipeConfig, TrainConfig, train_fluid
from repro.utils import make_rng


def main() -> None:
    print("Generating synthetic MNIST (no network access needed)...")
    train_set, test_set = load_synth_mnist(SynthMNISTConfig(num_train=3000, num_test=800, seed=0))

    print("Training a Fluid DyDNN with nested incremental training (Algorithm 1)...")
    config = RecipeConfig(
        stage=TrainConfig(epochs=1, batch_size=64, lr=0.05, momentum=0.9),
        niters=2,
    )
    model, history = train_fluid(train_set, rng=make_rng(42), config=config)
    print(f"  trained through {len(history)} stage-epochs: {history.stages()}\n")

    print(f"{'sub-network':12s} {'accuracy':>9s} {'params':>8s} {'FLOPs':>9s}  standalone?")
    print("-" * 55)
    for spec in model.width_spec.all_specs():
        acc = model.evaluate(spec.name, test_set)
        params = subnet_param_count(model.net, spec)
        flops = subnet_flops(model.net, spec)
        standalone = "yes" if model.is_standalone_certified(spec.name) else "no"
        print(f"{spec.name:12s} {acc:9.4f} {params:8d} {flops:9d}  {standalone}")

    lower, upper = model.independent_pair()
    print(
        f"\nHigh-Throughput pair: {lower} (Master) + {upper} (Worker) — "
        "independent sub-networks over shared weights."
    )
    print(
        "The upper models read none of the lower channels' weights, so either\n"
        "device keeps serving if the other one dies (paper Fig. 1b/1c)."
    )


if __name__ == "__main__":
    main()
