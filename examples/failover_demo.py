"""Failure-timeline demo: how each model family rides out device failures.

Replays the same scripted failure sequence (worker dies at t=10s, recovers
at t=25s; master dies at t=40s) against Static, Dynamic and Fluid systems
and prints each system's plan transitions — the dynamic version of the
paper's Fig. 2 scenarios.

Run:  python examples/failover_demo.py   (finishes in seconds)
"""

from repro.comm import CommLatencyModel
from repro.device import FailureEvent, FailureSchedule, jetson_nx_master, jetson_nx_worker
from repro.distributed import SystemThroughputModel
from repro.models import build_model
from repro.runtime import AdaptationPolicy, SystemController
from repro.utils import make_rng


def main() -> None:
    schedule = FailureSchedule(
        [
            FailureEvent(10.0, "worker", "crash"),
            FailureEvent(25.0, "worker", "recover"),
            FailureEvent(40.0, "master", "crash"),
        ]
    )
    horizon = 55.0
    print("Failure script: worker down @10s, worker back @25s, master down @40s\n")

    for family in ("static", "dynamic", "fluid"):
        model = build_model(family, rng=make_rng(0))
        tm = SystemThroughputModel(
            model.net, jetson_nx_master(), jetson_nx_worker(), CommLatencyModel()
        )
        controller = SystemController(AdaptationPolicy(model, tm), tm)
        timeline = controller.simulate(schedule, horizon_s=horizon)

        print(f"=== {family.upper()} DNN ===")
        for transition in timeline.transitions:
            alive = ",".join(sorted(transition.alive)) or "none"
            print(
                f"  t={transition.time_s:5.1f}s  alive=[{alive:13s}]  "
                f"{transition.plan.describe():45s} "
                f"{transition.throughput.throughput_ips:5.1f} img/s"
            )
        print(f"  downtime: {timeline.downtime():.0f}s of {horizon:.0f}s\n")


if __name__ == "__main__":
    main()
