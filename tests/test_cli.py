"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_args(self):
        args = build_parser().parse_args(
            ["train", "--family", "fluid", "--out", "m.npz", "--epochs", "2"]
        )
        assert args.family == "fluid"
        assert args.epochs == 2

    def test_bad_family_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--family", "quantum", "--out", "x"])

    def test_bad_failure_spec_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--family", "fluid", "--fail", "worker-10"])

    def test_dtype_policy_flag(self):
        args = build_parser().parse_args(
            ["--dtype-policy", "float32", "calibration"]
        )
        assert args.dtype_policy == "float32"
        assert build_parser().parse_args(["calibration"]).dtype_policy == "float64"

    def test_bad_dtype_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--dtype-policy", "float16", "calibration"])

    def test_dtype_policy_installed_during_command(self, capsys, monkeypatch):
        from repro import cli
        from repro.utils import get_dtype_policy

        seen = {}

        def probe(_args):
            seen["policy"] = get_dtype_policy()
            return 0

        monkeypatch.setitem(cli.COMMANDS, "calibration", probe)
        assert main(["--dtype-policy", "float32", "calibration"]) == 0
        assert seen["policy"].inference == "float32"
        assert seen["policy"].training == "float64"
        # The previous policy is restored once the command returns.
        assert get_dtype_policy().inference == "float64"


class TestCalibrationCommand:
    def test_prints_all_points(self, capsys):
        assert main(["calibration"]) == 0
        out = capsys.readouterr().out
        for name in ("solo_master_50", "solo_worker_upper50", "fluid_ht", "distributed_ha"):
            assert name in out


class TestSimulateCommand:
    def test_fluid_survival_timeline(self, capsys):
        code = main(
            [
                "simulate", "--family", "fluid",
                "--fail", "worker:10", "--recover", "worker:25",
                "--fail", "master:40", "--horizon", "55",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "solo" in out
        assert "downtime: 0.0s" in out

    def test_static_downtime(self, capsys):
        main(["simulate", "--family", "static", "--fail", "worker:5", "--horizon", "10"])
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "downtime: 5.0s" in out


@pytest.mark.slow
class TestTrainEvaluateRoundtrip:
    def test_train_then_evaluate(self, tmp_path, capsys):
        path = str(tmp_path / "model.npz")
        code = main(
            [
                "train", "--family", "fluid", "--out", path,
                "--train-size", "600", "--epochs", "1", "--niters", "1",
            ]
        )
        assert code == 0
        code = main(
            ["evaluate", "--family", "fluid", "--weights", path, "--test-size", "200"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "upper50" in out and "standalone" in out


class TestScheduledServe:
    def test_sla_flags_parse(self):
        args = build_parser().parse_args(["serve", "--sla", "40", "--replicas", "3"])
        assert args.sla == 40.0
        assert args.replicas == 3

    def test_sla_defaults_off(self):
        args = build_parser().parse_args(["serve"])
        assert args.sla is None
        # Config flags default to None so --config FILE can tell "absent"
        # from "explicitly set" (flags override file values).
        assert args.replicas is None
        assert args.config is None

    def test_invalid_sla_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--sla", "-5"])
        with pytest.raises(SystemExit):
            main(["serve", "--sla", "40", "--replicas", "0"])

    @pytest.mark.slow
    def test_sla_mode_end_to_end(self, capsys, monkeypatch):
        """serve --sla drives the comparison trace and prints the summary."""
        from dataclasses import replace

        import repro.scheduler.bench as sched_bench

        # Shrink the trace so the CLI round-trip stays fast in CI.
        monkeypatch.setattr(
            sched_bench,
            "ACCEPTANCE_TRACE",
            replace(
                sched_bench.SMOKE_TRACE,
                pre_s=0.1, burst_s=0.1, post_s=0.1, kill_at_s=0.15,
            ),
        )
        assert main(["serve", "--sla", "40", "--replicas", "2"]) == 0
        out = capsys.readouterr().out
        assert "scheduler" in out and "fixed_widest" in out
        assert "miss-rate" in out and "p99" in out


class TestReplayCommand:
    def test_flags_parse_with_defaults(self):
        args = build_parser().parse_args(["replay", "--scenario", "bursts"])
        assert args.scenario == "bursts"
        assert args.mode == "sim"
        assert args.replicas is None
        assert args.sampling == 1.0
        assert args.out is None
        assert args.tune is False
        assert args.tune_out is None

    def test_needs_exactly_one_source(self, capsys):
        with pytest.raises(SystemExit):
            main(["replay"])
        with pytest.raises(SystemExit):
            main(["replay", "--scenario", "bursts", "--trace", "x.jsonl"])

    def test_unknown_scenario_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["replay", "--scenario", "black_friday"])

    def test_list_prints_the_zoo(self, capsys):
        assert main(["replay", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("diurnal", "heavy_tail", "bursts", "adversarial", "multi_tenant"):
            assert name in out

    def test_serve_trace_requires_sla(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--trace", "out.jsonl"])

    @pytest.mark.slow
    def test_sim_replay_end_to_end_with_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "bursts.jsonl"
        assert main([
            "replay", "--scenario", "bursts", "--mode", "sim",
            "--out", str(out_path),
        ]) == 0
        printed = capsys.readouterr().out
        assert "replay bursts (sim)" in printed
        assert "miss-rate" in printed and "outcomes" in printed
        # The recorded artifact is itself replayable.
        assert main(["replay", "--trace", str(out_path), "--mode", "sim"]) == 0
        again = capsys.readouterr().out
        assert "replay bursts (sim)" in again


class TestConvBackendFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        # None = "not given": config_from_args falls back to the
        # SchedulerConfig default (im2col) unless --config overrides it.
        assert args.conv_backend is None
        assert args.rows_ladder is None

    def test_backend_choices(self):
        args = build_parser().parse_args(["serve", "--conv-backend", "shifted-gemm"])
        assert args.conv_backend == "shifted-gemm"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--conv-backend", "winograd"])

    def test_rows_ladder_parsing(self):
        from repro.cli import _parse_rows_ladder

        assert _parse_rows_ladder("1,4,16") == (1, 4, 16)
        assert _parse_rows_ladder(None) is None
        with pytest.raises(SystemExit):
            _parse_rows_ladder("1,x")
        with pytest.raises(SystemExit):
            _parse_rows_ladder("0,4")
        with pytest.raises(SystemExit):
            _parse_rows_ladder("")

    def test_plan_flags_require_sla_mode(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--conv-backend", "shifted-gemm"])
        with pytest.raises(SystemExit):
            main(["serve", "--rows-ladder", "1,4"])


class TestConfigFromArgs:
    """The single flag->SchedulerConfig path both subcommands share."""

    @staticmethod
    def _config(argv, defaults=None):
        from repro.cli import config_from_args

        return config_from_args(build_parser().parse_args(argv), defaults=defaults)

    def test_defaults_layer_applies_when_flags_absent(self):
        config = self._config(
            ["serve"], defaults={"replicas": 2, "max_batch": 32, "max_delay_s": 0.002}
        )
        assert config.replicas == 2
        assert config.max_batch == 32
        assert config.max_delay_s == pytest.approx(0.002)

    def test_flags_override_defaults(self):
        config = self._config(
            ["serve", "--replicas", "4", "--max-delay-ms", "1"],
            defaults={"replicas": 2, "max_delay_s": 0.002},
        )
        assert config.replicas == 4
        assert config.max_delay_s == pytest.approx(0.001)

    def test_config_file_between_defaults_and_flags(self, tmp_path):
        import json

        path = tmp_path / "cfg.json"
        path.write_text(json.dumps({"replicas": 3, "max_batch": 8}))
        config = self._config(
            ["serve", "--config", str(path), "--max-batch", "16"],
            defaults={"replicas": 2, "max_batch": 32},
        )
        assert config.replicas == 3      # file beats defaults
        assert config.max_batch == 16    # flag beats file

    def test_sla_flag_becomes_deadline(self):
        config = self._config(["serve", "--sla", "40"])
        assert config.default_sla.deadline_s == pytest.approx(0.040)

    def test_unknown_key_in_config_file_rejected(self, tmp_path):
        import json

        path = tmp_path / "cfg.json"
        path.write_text(json.dumps({"replcas": 3}))
        with pytest.raises(SystemExit, match="unknown config keys"):
            self._config(["serve", "--config", str(path)])

    def test_missing_config_file_rejected(self):
        with pytest.raises(SystemExit, match="--config"):
            self._config(["serve", "--config", "/nonexistent/cfg.json"])

    def test_conv_backend_flag_clears_per_rung_assignment(self, tmp_path):
        import json

        path = tmp_path / "cfg.json"
        path.write_text(json.dumps({
            "rows_ladder": [1, 8],
            "conv_backend_per_rung": [[1, "im2col"], [8, "shifted-gemm"]],
        }))
        config = self._config(
            ["serve", "--config", str(path), "--conv-backend", "shifted-gemm"]
        )
        assert config.conv_backend == "shifted-gemm"
        assert config.conv_backend_per_rung is None


class TestTuneFlags:
    def test_tune_requires_sim_mode(self, capsys):
        with pytest.raises(SystemExit):
            main(["replay", "--scenario", "bursts", "--tune", "--mode", "live"])

    def test_tune_rejects_trace_out(self, capsys):
        with pytest.raises(SystemExit):
            main(["replay", "--scenario", "bursts", "--tune", "--out", "x.jsonl"])

    def test_tune_workers_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(["replay", "--scenario", "bursts", "--tune", "--tune-workers", "0"])
