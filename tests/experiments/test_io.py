"""Tests for experiment-result persistence."""

import pytest

from repro.experiments.fig2 import Fig2Cell, Fig2Result
from repro.experiments.io import (
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)


def sample_result() -> Fig2Result:
    result = Fig2Result()
    result.add(Fig2Cell("static", "master_and_worker", "HA", 11.1, 98.9, "HA ..."))
    result.add(Fig2Cell("fluid", "master_and_worker", "HT", 28.3, 97.6, "HT ..."))
    result.add(Fig2Cell("fluid", "only_worker", "solo", 13.9, 98.9, "solo ..."))
    return result


class TestRoundTrip:
    def test_dict_roundtrip(self):
        original = sample_result()
        restored = result_from_dict(result_to_dict(original))
        assert len(restored.cells) == len(original.cells)
        cell = restored.get("fluid", "master_and_worker", "HT")
        assert cell.throughput_ips == 28.3
        assert cell.accuracy_pct == 97.6

    def test_file_roundtrip(self, tmp_path):
        original = sample_result()
        path = str(tmp_path / "runs" / "fig2.json")
        save_result(path, original)
        restored = load_result(path)
        for cell in original.cells:
            again = restored.get(cell.family, cell.scenario, cell.mode)
            assert again.throughput_ips == pytest.approx(cell.throughput_ips)
            assert again.plan == cell.plan

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError):
            result_from_dict({"schema": 99, "cells": []})

    def test_json_is_stable(self, tmp_path):
        path_a = str(tmp_path / "a.json")
        path_b = str(tmp_path / "b.json")
        save_result(path_a, sample_result())
        save_result(path_b, sample_result())
        assert open(path_a).read() == open(path_b).read()
