"""Tests for report formatting and shape checks on synthetic results."""

import pytest

from repro.experiments import format_fig2_table, format_shape_checks, shape_checks
from repro.experiments.fig2 import Fig2Cell, Fig2Result


def paper_perfect_result() -> Fig2Result:
    """A result whose cells are exactly the paper's numbers."""
    from repro.experiments import PAPER_FIG2

    result = Fig2Result()
    for (family, scenario, mode), (thr, acc) in PAPER_FIG2.items():
        result.add(Fig2Cell(family, scenario, mode, thr, acc, plan="paper"))
    return result


def broken_result() -> Fig2Result:
    """A result where fluid's worker-side survival is broken."""
    result = paper_perfect_result()
    cells = []
    for cell in result.cells:
        if (cell.family, cell.scenario) == ("fluid", "only_worker"):
            cell = Fig2Cell("fluid", "only_worker", "solo", 0.0, 0.0, "broken")
        cells.append(cell)
    return Fig2Result(cells)


class TestShapeChecksOnPaperNumbers:
    def test_paper_numbers_pass_all_checks(self):
        checks = shape_checks(paper_perfect_result())
        failures = [c for c in checks if not c.passed]
        assert not failures, failures

    def test_broken_reliability_is_caught(self):
        checks = shape_checks(broken_result())
        by_name = {c.name: c for c in checks}
        assert not by_name["fluid survives either device death"].passed

    def test_speedups_on_paper_numbers(self):
        result = paper_perfect_result()
        assert result.ht_speedup_vs_static() == pytest.approx(28.3 / 11.1)
        assert result.ht_speedup_vs_dynamic() == pytest.approx(28.3 / 14.4)


class TestFormatting:
    def test_table_includes_every_cell(self):
        table = format_fig2_table(paper_perfect_result())
        for family in ("static", "dynamic", "fluid"):
            assert family in table
        assert "28.3" in table and "2.55x" in table

    def test_table_without_paper_columns(self):
        table = format_fig2_table(paper_perfect_result(), include_paper=False)
        assert "paper thr" not in table

    def test_shape_check_formatting(self):
        text = format_shape_checks(shape_checks(paper_perfect_result()))
        assert text.count("[PASS]") == len(shape_checks(paper_perfect_result()))

    def test_missing_cell_lookup_raises(self):
        with pytest.raises(KeyError):
            paper_perfect_result().get("fluid", "nowhere", "HT")
