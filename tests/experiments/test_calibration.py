"""Tests for the calibration module (paper targets vs emulated testbed)."""

import pytest

from repro.experiments import (
    PAPER_FIG2,
    calibration_points,
    check_calibration,
)


class TestPaperReference:
    def test_reference_table_complete(self):
        families = {key[0] for key in PAPER_FIG2}
        scenarios = {key[1] for key in PAPER_FIG2}
        assert families == {"static", "dynamic", "fluid"}
        assert scenarios == {"master_and_worker", "only_master", "only_worker"}
        assert len(PAPER_FIG2) == 11  # every bar in Fig. 2

    def test_paper_internal_consistency(self):
        """The paper's HT number equals its two solo numbers summed."""
        ht = PAPER_FIG2[("fluid", "master_and_worker", "HT")][0]
        solo_m = PAPER_FIG2[("fluid", "only_master", "solo")][0]
        solo_w = PAPER_FIG2[("fluid", "only_worker", "solo")][0]
        assert ht == pytest.approx(solo_m + solo_w)


class TestCalibration:
    def test_all_points_within_half_percent(self, paper_net):
        for point in calibration_points(paper_net).values():
            assert point.relative_error < 0.005, point

    def test_check_calibration(self, paper_net):
        assert check_calibration(paper_net)

    def test_detects_drift(self, paper_net):
        from repro.device import DeviceProfile

        slow = DeviceProfile("master", 1e6, 0.01, 7600)
        points = calibration_points(paper_net, master=slow)
        assert points["solo_master_50"].relative_error > 0.05
