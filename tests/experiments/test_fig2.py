"""Tests for the Fig. 2 harness (throughput cells are exact; accuracy cells
use the tiny session-trained models, so only coarse bounds are asserted —
the full-fidelity run lives in benchmarks/bench_fig2_accuracy.py)."""

import pytest

from repro.experiments import (
    format_fig2_table,
    format_shape_checks,
    plan_accuracy,
    run_fig2,
    shape_checks,
)
from repro.distributed import SystemThroughputModel, failed_plan, ht_plan
from repro.comm import CommLatencyModel
from repro.device import jetson_nx_master, jetson_nx_worker


@pytest.fixture(scope="module")
def fig2_result(trained_models, tiny_data):
    _, test = tiny_data
    return run_fig2(trained_models, test)


class TestThroughputCells:
    """Throughput does not depend on training, so cells must match the paper."""

    @pytest.mark.parametrize(
        "family,scenario,mode,expected",
        [
            ("static", "master_and_worker", "HA", 11.1),
            ("static", "only_master", "failed", 0.0),
            ("static", "only_worker", "failed", 0.0),
            ("dynamic", "master_and_worker", "HT", 14.4),
            ("dynamic", "master_and_worker", "HA", 11.1),
            ("dynamic", "only_master", "solo", 14.4),
            ("dynamic", "only_worker", "failed", 0.0),
            ("fluid", "master_and_worker", "HT", 28.3),
            ("fluid", "master_and_worker", "HA", 11.1),
            ("fluid", "only_master", "solo", 14.4),
            ("fluid", "only_worker", "solo", 13.9),
        ],
    )
    def test_cell(self, fig2_result, family, scenario, mode, expected):
        cell = fig2_result.get(family, scenario, mode)
        assert cell.throughput_ips == pytest.approx(expected, rel=0.005)

    def test_speedup_ratios(self, fig2_result):
        assert fig2_result.ht_speedup_vs_static() == pytest.approx(2.5, rel=0.05)
        assert fig2_result.ht_speedup_vs_dynamic() == pytest.approx(2.0, rel=0.05)


class TestAccuracyCells:
    def test_failed_cells_zero_accuracy(self, fig2_result):
        assert fig2_result.get("static", "only_master", "failed").accuracy_pct == 0.0
        assert fig2_result.get("dynamic", "only_worker", "failed").accuracy_pct == 0.0

    def test_surviving_cells_beat_chance(self, fig2_result):
        for family, scenario, mode in [
            ("static", "master_and_worker", "HA"),
            ("dynamic", "only_master", "solo"),
            ("fluid", "only_master", "solo"),
            ("fluid", "only_worker", "solo"),
            ("fluid", "master_and_worker", "HT"),
        ]:
            assert fig2_result.get(family, scenario, mode).accuracy_pct > 40.0

    def test_fluid_ht_is_mixture_of_halves(self, fig2_result, trained_models, tiny_data):
        _, test = tiny_data
        model = trained_models["fluid"]
        lo = 100 * model.evaluate("lower50", test)
        hi = 100 * model.evaluate("upper50", test)
        ht = fig2_result.get("fluid", "master_and_worker", "HT").accuracy_pct
        assert min(lo, hi) - 1e-9 <= ht <= max(lo, hi) + 1e-9


class TestPlanAccuracyFunction:
    def test_failed_plan(self, trained_models, tiny_data):
        _, test = tiny_data
        model = trained_models["fluid"]
        tm = SystemThroughputModel(
            model.net, jetson_nx_master(), jetson_nx_worker(), CommLatencyModel()
        )
        assert plan_accuracy(model, failed_plan("x"), test, tm) == 0.0

    def test_ht_weighting_uses_rates(self, trained_models, tiny_data):
        _, test = tiny_data
        model = trained_models["fluid"]
        tm = SystemThroughputModel(
            model.net, jetson_nx_master(), jetson_nx_worker(), CommLatencyModel()
        )
        acc = plan_accuracy(model, ht_plan("lower50", "upper50"), test, tm)
        r_m = 1.0 / tm.standalone_latency("master", model.spec("lower50"))
        r_w = 1.0 / tm.standalone_latency("worker", model.spec("upper50"))
        expected = (
            r_m * 100 * model.evaluate("lower50", test)
            + r_w * 100 * model.evaluate("upper50", test)
        ) / (r_m + r_w)
        assert acc == pytest.approx(expected)


class TestReporting:
    def test_table_renders(self, fig2_result):
        table = format_fig2_table(fig2_result)
        assert "fluid" in table and "28.3" in table and "paper" in table

    def test_shape_checks_run(self, fig2_result):
        checks = shape_checks(fig2_result)
        names = [c.name for c in checks]
        assert len(names) == len(set(names))
        text = format_shape_checks(checks)
        assert "static fails" in text
        # Reliability + throughput-ratio checks must pass even with tiny
        # training; accuracy-level checks are exercised in the benchmark.
        for check in checks[:6]:
            assert check.passed, check

    def test_missing_family_rejected(self, trained_models, tiny_data):
        _, test = tiny_data
        partial = {"static": trained_models["static"]}
        with pytest.raises(KeyError):
            run_fig2(partial, test)
