"""Tests for the global dtype policy."""

import numpy as np
import pytest

from repro.utils.dtypes import (
    DtypePolicy,
    as_compute,
    compute_dtype,
    dtype_policy,
    get_dtype_policy,
    resolve_dtype_policy,
    set_dtype_policy,
)


class TestPolicyObject:
    def test_default_reproduces_historical_behaviour(self):
        policy = DtypePolicy()
        assert policy.inference == "float64"
        assert policy.training == "float64"
        assert policy.wire == "float32"

    def test_fast_inference_keeps_float64_training(self):
        policy = DtypePolicy.fast_inference()
        assert policy.inference == "float32"
        assert policy.training == "float64"

    def test_compute_dtype_switches_on_mode(self):
        policy = DtypePolicy.fast_inference()
        assert policy.compute_dtype(training=True) == np.float64
        assert policy.compute_dtype(training=False) == np.float32

    @pytest.mark.parametrize("field", ["inference", "training", "wire"])
    def test_invalid_dtype_rejected(self, field):
        with pytest.raises(ValueError):
            DtypePolicy(**{field: "float16"})

    def test_from_config_defaults_when_keys_absent(self):
        assert DtypePolicy.from_config({}) == DtypePolicy()

    def test_from_config_reads_keys(self):
        policy = DtypePolicy.from_config(
            {"inference_dtype": "float32", "wire_dtype": "float64"}
        )
        assert policy.inference == "float32"
        assert policy.training == "float64"
        assert policy.wire == "float64"


class TestGlobalState:
    def test_context_manager_restores_previous_policy(self):
        before = get_dtype_policy()
        with dtype_policy(inference="float32") as active:
            assert get_dtype_policy() is active
            assert compute_dtype(training=False) == np.float32
        assert get_dtype_policy() == before

    def test_set_returns_old_policy(self):
        old = set_dtype_policy(DtypePolicy.fast_inference())
        try:
            assert get_dtype_policy().inference == "float32"
        finally:
            set_dtype_policy(old if old != DtypePolicy() else None)
        assert get_dtype_policy() == DtypePolicy()

    def test_policy_and_kwargs_are_exclusive(self):
        with pytest.raises(TypeError):
            with dtype_policy(DtypePolicy(), inference="float32"):
                pass

    def test_as_compute_casts_for_inference_only(self):
        x = np.zeros(3, dtype=np.float64)
        with dtype_policy(inference="float32"):
            assert as_compute(x, training=False).dtype == np.float32
            assert as_compute(x, training=True) is not None
            assert as_compute(x, training=True).dtype == np.float64


class TestThreadSemantics:
    def test_set_policy_is_visible_from_other_threads(self):
        import threading

        seen = {}

        def probe():
            seen["policy"] = get_dtype_policy()

        old = set_dtype_policy(DtypePolicy.fast_inference())
        try:
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join(timeout=5.0)
        finally:
            set_dtype_policy(old)
        assert seen["policy"].inference == "float32"

    def test_context_override_is_thread_scoped(self):
        import threading

        seen = {}

        def probe():
            seen["policy"] = get_dtype_policy()

        with dtype_policy(inference="float32"):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join(timeout=5.0)
        assert seen["policy"].inference == "float64"


class TestResolve:
    def test_float64_is_default_policy(self):
        assert resolve_dtype_policy("float64") == DtypePolicy()

    def test_float32_is_fast_inference(self):
        assert resolve_dtype_policy("float32") == DtypePolicy.fast_inference()

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            resolve_dtype_policy("bfloat16")
