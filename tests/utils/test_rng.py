"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import check_rng, derive_seed, make_rng, spawn_rngs


class TestMakeRng:
    def test_int_seed_is_deterministic(self):
        a = make_rng(42).random(8)
        b = make_rng(42).random(8)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(make_rng(1).random(8), make_rng(2).random(8))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        rng = make_rng(np.random.SeedSequence(7))
        assert isinstance(rng, np.random.Generator)

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_children_are_independent_of_consumption(self):
        parent1 = make_rng(9)
        kids1 = spawn_rngs(parent1, 3)
        first_child_draws = kids1[0].random(4)

        parent2 = make_rng(9)
        kids2 = spawn_rngs(parent2, 3)
        # Consuming kids2[1] heavily must not affect kids2[0]'s stream.
        kids2[1].random(1000)
        np.testing.assert_array_equal(first_child_draws, kids2[0].random(4))

    def test_children_differ_from_each_other(self):
        kids = spawn_rngs(make_rng(3), 2)
        assert not np.array_equal(kids[0].random(8), kids[1].random(8))

    def test_count_zero(self):
        assert spawn_rngs(make_rng(0), 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(make_rng(0), -1)

    def test_parent_advances_consistently(self):
        p1, p2 = make_rng(5), make_rng(5)
        spawn_rngs(p1, 4)
        spawn_rngs(p2, 4)
        np.testing.assert_array_equal(p1.random(4), p2.random(4))


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_label_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_positive_63_bit(self):
        value = derive_seed(123, "x", "y")
        assert 0 <= value < 2**63


class TestCheckRng:
    def test_accepts_generator(self):
        gen = make_rng(0)
        assert check_rng(gen, "here") is gen

    def test_rejects_int(self):
        with pytest.raises(TypeError, match="somewhere"):
            check_rng(42, "somewhere")

    def test_rejects_none(self):
        with pytest.raises(TypeError):
            check_rng(None, "x")
