"""Tests for the Config record."""

import pytest

from repro.utils.config import Config


class TestConfigBasics:
    def test_getitem_and_attr(self):
        cfg = Config({"epochs": 3, "lr": 0.1})
        assert cfg["epochs"] == 3
        assert cfg.lr == 0.1

    def test_missing_attr_raises_attribute_error(self):
        with pytest.raises(AttributeError):
            Config({}).nope

    def test_contains_len_iter(self):
        cfg = Config({"a": 1, "b": 2})
        assert "a" in cfg and "c" not in cfg
        assert len(cfg) == 2
        assert sorted(cfg) == ["a", "b"]

    def test_get_default(self):
        assert Config({}).get("missing", 7) == 7

    def test_non_string_keys_rejected(self):
        with pytest.raises(TypeError):
            Config({1: "x"})


class TestConfigUpdates:
    def test_updated_returns_new_object(self):
        base = Config({"a": 1})
        new = base.updated(a=2, b=3)
        assert base["a"] == 1
        assert new["a"] == 2 and new["b"] == 3

    def test_require_passes(self):
        Config({"a": 1}).require("a")

    def test_require_lists_missing(self):
        with pytest.raises(KeyError, match="b"):
            Config({"a": 1}).require("a", "b")


class TestConfigSerialisation:
    def test_json_roundtrip(self):
        cfg = Config({"x": [1, 2], "y": "z"})
        again = Config.from_json(cfg.to_json())
        assert again.to_dict() == cfg.to_dict()

    def test_from_mapping_copies(self):
        source = {"k": 1}
        cfg = Config.from_mapping(source)
        source["k"] = 2
        assert cfg["k"] == 1
