"""Tracer unit tests: ring buffer, sampling, scopes, the null tracer."""

import threading

import pytest

from repro.trace.tracer import (
    EVENT_RESOLVE,
    EVENT_SUBMIT,
    EVENT_VOCABULARY,
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
)


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.sample(0) is False
        NULL_TRACER.emit(1, EVENT_SUBMIT, rows=1)  # no-op, no state
        NULL_TRACER.emit_scoped(EVENT_SUBMIT)
        assert NULL_TRACER.take(1) == []
        assert NULL_TRACER.events() == []
        with NULL_TRACER.scope(1):
            pass
        assert NULL_TRACER.stats()["enabled"] is False

    def test_is_a_shared_singleton_type(self):
        assert isinstance(NULL_TRACER, NullTracer)


class TestEmission:
    def test_events_carry_kind_offset_and_data(self):
        tracer = Tracer()
        tracer.emit(7, EVENT_SUBMIT, rows=1, deadline_s=0.05)
        (event,) = tracer.events(7)
        assert event.request_id == 7
        assert event.kind == EVENT_SUBMIT
        assert event.t_s >= 0.0
        assert event.data["rows"] == 1
        assert event.to_json() == {
            "t_s": event.t_s, "kind": EVENT_SUBMIT, "rows": 1, "deadline_s": 0.05,
        }

    def test_take_pops_one_requests_events(self):
        tracer = Tracer()
        tracer.emit(1, EVENT_SUBMIT)
        tracer.emit(2, EVENT_SUBMIT)
        tracer.emit(1, EVENT_RESOLVE)
        taken = tracer.take(1)
        assert [e.kind for e in taken] == [EVENT_SUBMIT, EVENT_RESOLVE]
        assert tracer.take(1) == []  # popped
        assert tracer.stats()["in_flight_requests"] == 1  # request 2 remains

    def test_straggler_emit_after_take_does_not_leak_index(self):
        """A hedge leg finishing after its request resolved must not
        re-create a per-request entry nobody will ever take."""
        tracer = Tracer()
        tracer.emit(5, EVENT_SUBMIT)
        tracer.take(5)
        tracer.emit(5, EVENT_RESOLVE)  # straggler
        assert tracer.stats()["in_flight_requests"] == 0
        # The event still lands in the ring for "what happened lately".
        assert [e.kind for e in tracer.events(5)] == [EVENT_SUBMIT, EVENT_RESOLVE]

    def test_closed_set_is_bounded(self):
        tracer = Tracer()
        for rid in range(5000):
            tracer.emit(rid, EVENT_SUBMIT)
            tracer.take(rid)
        assert len(tracer._closed) <= 4096

    def test_ring_drops_oldest_and_counts(self):
        tracer = Tracer(capacity=4)
        for rid in range(6):
            tracer.emit(rid, EVENT_SUBMIT)
        stats = tracer.stats()
        assert stats["emitted"] == 6
        assert stats["dropped"] == 2
        assert [e.request_id for e in tracer.events()] == [2, 3, 4, 5]

    def test_concurrent_emits_are_lossless(self):
        tracer = Tracer()

        def _emit(rid):
            for _ in range(200):
                tracer.emit(rid, EVENT_SUBMIT)

        threads = [threading.Thread(target=_emit, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tracer.stats()["emitted"] == 1600
        for rid in range(8):
            assert len(tracer.take(rid)) == 200


class TestSampling:
    def test_full_sampling_traces_everything(self):
        tracer = Tracer(sampling=1.0)
        assert all(tracer.sample(rid) for rid in range(100))

    def test_zero_sampling_traces_nothing(self):
        tracer = Tracer(sampling=0.0)
        assert not any(tracer.sample(rid) for rid in range(100))

    def test_decisions_are_deterministic_per_seed(self):
        a = Tracer(sampling=0.3, seed=42)
        b = Tracer(sampling=0.3, seed=42)
        decisions = [a.sample(rid) for rid in range(500)]
        assert decisions == [b.sample(rid) for rid in range(500)]
        hits = sum(decisions)
        assert 0 < hits < 500  # an actual fraction, not all/nothing

    def test_validation(self):
        with pytest.raises(ValueError):
            Tracer(sampling=1.5)
        with pytest.raises(ValueError):
            Tracer(sampling=-0.1)
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestScope:
    def test_emit_scoped_attaches_bound_request(self):
        tracer = Tracer()
        with tracer.scope(9):
            tracer.emit_scoped("engine.round", calls=2)
        (event,) = tracer.events(9)
        assert event.request_id == 9
        assert event.data["calls"] == 2

    def test_unscoped_emit_scoped_has_no_request(self):
        tracer = Tracer()
        tracer.emit_scoped("engine.round")
        (event,) = tracer.events()
        assert event.request_id is None

    def test_scopes_nest_and_restore(self):
        tracer = Tracer()
        with tracer.scope(1):
            with tracer.scope(2):
                assert tracer.current_request() == 2
            assert tracer.current_request() == 1
        assert tracer.current_request() is None

    def test_scope_is_thread_local(self):
        tracer = Tracer()
        seen = {}

        def _worker():
            seen["worker"] = tracer.current_request()

        with tracer.scope(3):
            t = threading.Thread(target=_worker)
            t.start()
            t.join()
        assert seen["worker"] is None


class TestVocabulary:
    def test_vocabulary_is_unique_and_covers_engine_round(self):
        assert len(set(EVENT_VOCABULARY)) == len(EVENT_VOCABULARY)
        assert "engine.round" in EVENT_VOCABULARY

    def test_trace_event_is_frozen(self):
        event = TraceEvent(1, 0.0, EVENT_SUBMIT)
        with pytest.raises(Exception):
            event.kind = "other"
