"""Trace replay: deterministic simulation, live frontend replay, round trips."""

import pytest

from repro.models import build_model
from repro.scheduler.frontend import SchedulerConfig
from repro.trace.recorder import (
    LATE,
    OK,
    REJECTED,
    RequestSpec,
    TraceRecorder,
    canonical_dumps,
    write_trace,
)
from repro.trace.replay import (
    TraceReplayer,
    payload_for,
    sla_for,
    summarize_outcomes,
)
from repro.trace.scenarios import SCENARIOS
from repro.trace.tracer import Tracer
from repro.utils import make_rng


@pytest.fixture(scope="module")
def model():
    return build_model("fluid", rng=make_rng(0))


def tiny_specs(n=8, deadline_s=5.0, spacing_s=0.005):
    return [
        RequestSpec(
            request_id=i, arrival_s=i * spacing_s, deadline_s=deadline_s,
            payload_seed=100 + i,
        )
        for i in range(n)
    ]


class TestPayloadRegeneration:
    def test_payload_is_deterministic_per_seed(self, model):
        spec = tiny_specs()[3]
        a = payload_for(spec, model.net)
        b = payload_for(spec, model.net)
        assert (a == b).all()
        assert a.shape == (1, 1, 28, 28)  # the model's default image

    def test_explicit_shape_wins(self, model):
        spec = RequestSpec(
            request_id=0, arrival_s=0.0, deadline_s=1.0,
            payload_seed=7, shape=(2, 1, 28, 28),
        )
        assert payload_for(spec, model.net).shape == (2, 1, 28, 28)

    def test_sla_mirrors_the_spec(self):
        spec = RequestSpec(
            request_id=0, arrival_s=0.0, deadline_s=0.03,
            priority=1, min_width="lower50", max_width="lower75",
        )
        sla = sla_for(spec)
        assert (sla.deadline_s, sla.priority) == (0.03, 1)
        assert (sla.min_width, sla.max_width) == ("lower50", "lower75")


class TestSummarize:
    def test_empty_latency_stats_are_none(self):
        summary = summarize_outcomes(
            [{"outcome": REJECTED, "latency_s": None}], duration_s=1.0
        )
        assert summary["miss_rate"] == 1.0
        assert summary["goodput_rps"] == 0.0
        assert summary["latency"]["p99_s"] is None


class TestConstruction:
    def test_specs_are_sorted_by_arrival(self):
        specs = list(reversed(tiny_specs()))
        replayer = TraceReplayer(specs)
        arrivals = [s.arrival_s for s in replayer.specs]
        assert arrivals == sorted(arrivals)

    def test_from_file_matches_from_scenario(self, tmp_path):
        spec = SCENARIOS["bursts"]
        path = write_trace(tmp_path / "bursts.jsonl", spec.generate(), meta=spec.meta())
        from_file = TraceReplayer.from_file(path)
        from_zoo = TraceReplayer.from_scenario("bursts")
        assert list(from_file.specs) == list(from_zoo.specs)
        assert from_file.duration_s == from_zoo.duration_s


class TestSimulate:
    def test_is_bit_deterministic(self, model):
        rec1, rec2 = TraceRecorder(), TraceRecorder()
        replayer = TraceReplayer.from_scenario("heavy_tail")
        r1 = replayer.simulate(model, recorder=rec1)
        r2 = replayer.simulate(model, recorder=rec2)
        assert rec1.dumps() == rec2.dumps()
        assert r1["outcomes"] == r2["outcomes"]
        assert r1["latency"] == r2["latency"]

    def test_every_request_gets_exactly_one_outcome(self, model):
        result = TraceReplayer.from_scenario("adversarial").simulate(model)
        assert sum(result["outcomes"].values()) == result["requests"]
        assert result["requests"] == len(SCENARIOS["adversarial"].generate())

    def test_batch_rows_histogram_accounts_for_every_flush(self, model):
        """The tuner's ladder derivation feeds off this histogram."""
        result = TraceReplayer.from_scenario("bursts").simulate(model)
        batches = result["batches"]
        assert sum(batches["rows"].values()) == batches["count"]
        assert all(rows >= 1 for rows in batches["rows"])
        # Every served (non-rejected, non-lost) request rode exactly one batch.
        served = sum(rows * n for rows, n in batches["rows"].items())
        assert served == result["outcomes"][OK] + result["outcomes"][LATE]

    def test_tight_deadlines_are_rejected_not_served(self, model):
        """Admission arithmetic is real: impossible deadlines fail fast."""
        specs = [
            RequestSpec(request_id=i, arrival_s=0.001 * i, deadline_s=1e-6)
            for i in range(5)
        ]
        result = TraceReplayer(specs, duration_s=0.1).simulate(model)
        assert result["outcomes"][REJECTED] == 5

    def test_generous_deadlines_all_ok_at_widest(self, model):
        result = TraceReplayer(tiny_specs(), duration_s=0.1).simulate(model)
        assert result["outcomes"][OK] == 8
        assert set(result["widths"]) == {"lower100"}  # budget fits the widest

    def test_recorded_artifact_is_replayable(self, model, tmp_path):
        """simulate -> write -> from_file -> simulate reproduces outcomes."""
        recorder = TraceRecorder(tmp_path / "sim.jsonl")
        replayer = TraceReplayer.from_scenario("bursts")
        first = replayer.simulate(model, recorder=recorder)
        again = TraceReplayer.from_file(recorder.write())
        rec2 = TraceRecorder()
        second = again.simulate(model, recorder=rec2)
        assert first["outcomes"] == second["outcomes"]
        assert canonical_dumps(recorder.records) == canonical_dumps(rec2.records)


class TestLiveReplay:
    def test_tiny_replay_end_to_end(self, model):
        replayer = TraceReplayer(tiny_specs(), name="tiny", duration_s=0.1)
        tracer = Tracer(sampling=1.0)
        recorder = TraceRecorder()
        result = replayer.replay(
            model, SchedulerConfig(replicas=1, warmup=False),
            tracer=tracer, recorder=recorder,
        )
        assert result["mode"] == "live"
        assert result["outcomes"][OK] == 8
        assert len(recorder) == 8
        kinds = [e["kind"] for e in recorder.records[0].events]
        for expected in ("submit", "admission", "width", "enqueue", "batch",
                         "execute", "resolve"):
            assert expected in kinds, f"missing {expected} in {kinds}"
        assert tracer.stats()["in_flight_requests"] == 0
        assert result["frontend"]["batching"]  # snapshotted before close

    def test_live_record_is_replayable_in_sim(self, model, tmp_path):
        """The record-of-a-replay round trip across modes."""
        recorder = TraceRecorder(tmp_path / "live.jsonl")
        TraceReplayer(tiny_specs(), duration_s=0.1).replay(
            model, SchedulerConfig(replicas=1, warmup=False), recorder=recorder,
        )
        again = TraceReplayer.from_file(recorder.write())
        result = again.simulate(model)
        assert result["requests"] == 8
        assert sum(result["outcomes"].values()) == 8
