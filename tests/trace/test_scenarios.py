"""Scenario zoo: determinism, stream shape, per-generator characteristics."""

import pytest

from repro.scheduler.admission import CRITICAL_PRIORITY
from repro.trace.scenarios import GENERATORS, SCENARIOS, TraceSpec, get_scenario


class TestZoo:
    def test_zoo_covers_the_advertised_shapes(self):
        assert set(SCENARIOS) == {
            "diurnal", "heavy_tail", "bursts", "adversarial", "multi_tenant",
        }
        assert set(GENERATORS) == set(SCENARIOS)

    def test_get_scenario_rejects_unknown(self):
        with pytest.raises(KeyError):
            get_scenario("black_friday")

    def test_unknown_generator_rejected(self):
        with pytest.raises(ValueError, match="unknown generator"):
            TraceSpec(name="x", generator="nope")

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            TraceSpec(name="x", generator="diurnal", duration_s=0.0)


class TestGeneratedStreams:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_generation_is_deterministic(self, name):
        spec = SCENARIOS[name]
        assert spec.generate() == spec.generate()

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_stream_is_well_formed(self, name):
        spec = SCENARIOS[name]
        stream = spec.generate()
        assert stream, f"{name} generated no requests"
        assert [s.request_id for s in stream] == list(range(len(stream)))
        arrivals = [s.arrival_s for s in stream]
        assert arrivals == sorted(arrivals)
        assert all(0.0 <= t < spec.duration_s for t in arrivals)
        assert all(s.deadline_s > 0 for s in stream)
        assert len({s.payload_seed for s in stream}) == len(stream)

    def test_different_seed_different_stream(self):
        base = SCENARIOS["bursts"]
        reseeded = TraceSpec(
            name=base.name, generator=base.generator, seed=base.seed + 1,
            duration_s=base.duration_s, params=base.params,
        )
        assert reseeded.generate() != base.generate()


class TestShapeCharacteristics:
    def test_heavy_tail_has_sessions_of_very_different_length(self):
        """Pareto session lengths: some back-to-back runs dwarf the median."""
        stream = SCENARIOS["heavy_tail"].generate()
        gaps = [
            b.arrival_s - a.arrival_s for a, b in zip(stream, stream[1:])
        ]
        tight = sum(1 for g in gaps if g < 0.008)  # intra-session spacing
        assert tight > len(gaps) * 0.2

    def test_adversarial_mixes_deadline_extremes_and_pins_widths(self):
        stream = SCENARIOS["adversarial"].generate()
        deadlines = {s.deadline_s for s in stream}
        assert min(deadlines) < 0.01 < max(deadlines)
        pinned = [s for s in stream if s.min_width is not None]
        assert pinned and all(s.min_width == "lower75" for s in pinned)

    def test_multi_tenant_blends_priorities_and_tenants(self):
        stream = SCENARIOS["multi_tenant"].generate()
        tenants = {s.tenant for s in stream}
        assert tenants == {"bulk", "interactive", "critical"}
        critical = [s for s in stream if s.tenant == "critical"]
        assert critical
        assert all(s.priority == CRITICAL_PRIORITY for s in critical)
        assert all(
            s.priority == 0 for s in stream if s.tenant != "critical"
        )

    def test_diurnal_rate_follows_the_wave(self):
        """More arrivals near the peak than near the trough."""
        spec = SCENARIOS["diurnal"]
        stream = spec.generate()
        bins = [0] * 12
        for s in stream:
            bins[min(int(s.arrival_s / spec.duration_s * 12), 11)] += 1
        assert max(bins) > 2 * (min(bins) + 1)

    def test_bursts_cluster_tightly(self):
        stream = SCENARIOS["bursts"].generate()
        gaps = [b.arrival_s - a.arrival_s for a, b in zip(stream, stream[1:])]
        clustered = sum(1 for g in gaps if g < 0.002)
        assert clustered > len(gaps) * 0.25


class TestMeta:
    def test_meta_names_the_generator_and_seed(self):
        for name, spec in SCENARIOS.items():
            meta = spec.meta()
            assert meta["name"] == name
            assert meta["generator"] == spec.generator
            assert meta["seed"] == spec.seed
            assert meta["duration_s"] == spec.duration_s
