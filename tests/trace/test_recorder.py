"""Trace artifacts: spec/record serialisation, canonical form, versioning."""

import json

import pytest

from repro.trace.recorder import (
    LATE,
    OK,
    TRACE_FORMAT,
    TRACE_VERSION,
    WALL_CLOCK_FIELDS,
    RequestRecord,
    RequestSpec,
    TraceRecorder,
    canonical_dumps,
    canonical_record,
    read_specs,
    read_trace,
    write_trace,
)


def spec(rid=0, **overrides):
    fields = dict(
        request_id=rid, arrival_s=0.1 * rid, deadline_s=0.05,
        priority=0, payload_seed=1234 + rid,
    )
    fields.update(overrides)
    return RequestSpec(**fields)


class TestRequestSpec:
    def test_json_roundtrip(self):
        s = spec(3, min_width="lower25", max_width="lower75",
                 shape=(1, 1, 28, 28), tenant="bulk")
        assert RequestSpec.from_json(s.to_json()) == s

    def test_none_fields_are_omitted(self):
        data = spec(0).to_json()
        assert "min_width" not in data and "tenant" not in data and "shape" not in data
        assert RequestSpec.from_json(data) == spec(0)


class TestRequestRecord:
    def test_rejects_unknown_outcome(self):
        with pytest.raises(ValueError, match="outcome"):
            RequestRecord(spec=spec(0), outcome="meh")

    def test_json_roundtrip_with_events(self):
        record = RequestRecord(
            spec=spec(1), outcome=OK, width="lower50", latency_s=0.012,
            events=({"t_s": 0.1, "kind": "submit"},),
        )
        again = RequestRecord.from_json(record.to_json())
        assert again == record


class TestCanonicalForm:
    def test_strips_wall_clock_fields_recursively(self):
        record = RequestRecord(
            spec=spec(2), outcome=LATE, width="lower100", latency_s=0.9,
            events=(
                {"t_s": 0.5, "kind": "width", "width": "lower100",
                 "predicted_s": 0.01, "budget_s": 0.02},
            ),
        )
        canon = canonical_record(record)
        assert "latency_s" not in canon
        (event,) = canon["events"]
        assert set(event) == {"kind", "width"}
        flat = json.dumps(canon)
        assert not any(f'"{name}"' in flat for name in WALL_CLOCK_FIELDS)

    def test_records_differing_only_in_wall_clock_compare_equal(self):
        def make(latency, t):
            return RequestRecord(
                spec=spec(4), outcome=OK, width="lower50", latency_s=latency,
                events=({"t_s": t, "kind": "resolve", "on_time": True},),
            )

        assert canonical_dumps([make(0.01, 0.5)]) == canonical_dumps([make(0.02, 0.9)])
        # ...but a real behavioural difference still shows.
        other = RequestRecord(spec=spec(4), outcome=OK, width="lower25")
        assert canonical_dumps([make(0.01, 0.5)]) != canonical_dumps([other])


class TestTraceRecorder:
    def test_records_sorted_by_request_id(self):
        rec = TraceRecorder()
        for rid in (2, 0, 1):
            rec.record(RequestRecord(spec=spec(rid), outcome=OK))
        assert [r.spec.request_id for r in rec.records] == [0, 1, 2]
        assert len(rec) == 3

    def test_dumps_is_header_plus_sorted_lines(self):
        rec = TraceRecorder(kind="recorded", meta={"name": "t"})
        rec.record(RequestRecord(spec=spec(1), outcome=OK))
        lines = rec.dumps().strip().splitlines()
        header = json.loads(lines[0])
        assert header["format"] == TRACE_FORMAT
        assert header["version"] == TRACE_VERSION
        assert header["kind"] == "recorded"
        assert json.loads(lines[1])["request_id"] == 1

    def test_write_then_read_roundtrip(self, tmp_path):
        rec = TraceRecorder(tmp_path / "t.jsonl")
        rec.record(RequestRecord(spec=spec(0), outcome=OK, width="lower50"))
        path = rec.write()
        header, rows = read_trace(path)
        assert header["kind"] == "recorded"
        assert rows[0]["width"] == "lower50"
        # A recorded artifact is replayable: specs read straight back.
        _, specs = read_specs(path)
        assert specs == [spec(0)]

    def test_write_without_path_raises(self):
        with pytest.raises(ValueError):
            TraceRecorder().write()


class TestVersioning:
    def test_write_trace_read_specs_roundtrip(self, tmp_path):
        specs = [spec(i) for i in range(3)]
        path = write_trace(tmp_path / "gen.jsonl", specs, meta={"name": "zoo"})
        header, again = read_specs(path)
        assert header["kind"] == "generated"
        assert header["meta"]["name"] == "zoo"
        assert again == specs

    def test_rejects_foreign_format(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "not-a-trace", "version": 1}\n')
        with pytest.raises(ValueError, match="not a"):
            read_trace(path)

    def test_rejects_newer_version(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({"format": TRACE_FORMAT, "version": TRACE_VERSION + 1}) + "\n"
        )
        with pytest.raises(ValueError, match="newer"):
            read_trace(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_trace(path)
