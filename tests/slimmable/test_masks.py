"""Tests for freeze-mask bookkeeping (the incremental-training mechanism)."""

import numpy as np
import pytest

from repro.nn.parameter import Parameter
from repro.slimmable import (
    ChannelSlice,
    RegionTracker,
    clear_freeze_masks,
    conv_region,
    linear_region,
    vector_region,
)


class TestRegionBuilders:
    def test_conv_region(self):
        mask = conv_region((4, 4, 3, 3), ChannelSlice(0, 2), ChannelSlice(1, 3))
        assert mask[0:2, 1:3].all()
        assert mask.sum() == 2 * 2 * 9

    def test_vector_region(self):
        mask = vector_region((6,), ChannelSlice(2, 5))
        np.testing.assert_array_equal(mask, [0, 0, 1, 1, 1, 0])

    def test_linear_region(self):
        mask = linear_region((3, 8), ChannelSlice(2, 6))
        assert mask[:, 2:6].all()
        assert mask.sum() == 3 * 4


class TestRegionTracker:
    def test_first_stage_fully_trainable(self):
        p = Parameter(np.zeros((4, 4)))
        tracker = RegionTracker()
        region = np.zeros((4, 4))
        region[:2, :2] = 1
        trainable = tracker.trainable_mask(p, region)
        np.testing.assert_array_equal(trainable, region)

    def test_second_stage_excludes_covered(self):
        p = Parameter(np.zeros((4, 4)))
        tracker = RegionTracker()
        first = np.zeros((4, 4))
        first[:2, :2] = 1
        tracker.mark(p, first)
        second = np.zeros((4, 4))
        second[:3, :3] = 1
        trainable = tracker.trainable_mask(p, second)
        assert not trainable[:2, :2].any()
        assert trainable[:3, :3].sum() == 9 - 4

    def test_mark_is_cumulative_union(self):
        p = Parameter(np.zeros(4))
        tracker = RegionTracker()
        tracker.mark(p, np.array([1.0, 0, 0, 0]))
        tracker.mark(p, np.array([0.0, 1, 0, 0]))
        np.testing.assert_array_equal(tracker.covered(p), [1, 1, 0, 0])

    def test_reset(self):
        p = Parameter(np.zeros(2))
        tracker = RegionTracker()
        tracker.mark(p, np.ones(2))
        tracker.reset()
        np.testing.assert_array_equal(tracker.covered(p), [0, 0])

    def test_shape_mismatch_raises(self):
        p = Parameter(np.zeros(2))
        with pytest.raises(ValueError):
            RegionTracker().mark(p, np.ones(3))


class TestClearFreezeMasks:
    def test_clears_all(self):
        params = [Parameter(np.zeros(2)), Parameter(np.zeros(3))]
        for p in params:
            p.set_freeze_mask(np.zeros_like(p.data))
        clear_freeze_masks(params)
        assert all(p.grad_mask is None for p in params)
