"""Tests for the slimmable network container and sub-network views."""

import numpy as np
import pytest

from repro.nn import SoftmaxCrossEntropy
from repro.slimmable import ChannelSlice, SlimmableConvNet, paper_width_spec
from repro.utils import make_rng


class TestArchitecture:
    def test_paper_parameter_count(self, paper_net):
        # conv1: 16*1*9+16; conv2/3: 16*16*9+16; fc: 10*784+10
        expected = (16 * 9 + 16) + 2 * (16 * 16 * 9 + 16) + (10 * 784 + 10)
        assert paper_net.num_parameters() == expected

    def test_all_subnets_produce_logits(self, paper_net, rng):
        x = rng.standard_normal((3, 1, 28, 28))
        for spec in paper_net.width_spec.all_specs():
            logits = paper_net.view(spec)(x)
            assert logits.shape == (3, 10)
            assert np.isfinite(logits).all()

    def test_feature_slice_mapping(self, paper_net):
        fs = paper_net.feature_slice_for(ChannelSlice(8, 16))
        assert fs.start == 8 * 49 and fs.stop == 16 * 49

    def test_spec_length_mismatch_rejected(self, paper_net):
        from repro.slimmable import uniform_spec

        with pytest.raises(ValueError):
            paper_net.set_active(uniform_spec("bad", 0, 4, 5))

    def test_too_much_pooling_rejected(self, paper_spec):
        with pytest.raises(ValueError):
            SlimmableConvNet(paper_spec, image_size=4, pool_after=(0, 1, 2), rng=make_rng(0))


class TestWeightSharing:
    def test_lower_subnet_shares_weights_with_full(self, paper_net, rng):
        """Changing the full model's lower block changes the lower subnet."""
        ws = paper_net.width_spec
        x = rng.standard_normal((2, 1, 28, 28))
        before = paper_net.view(ws.find("lower50"))(x)
        paper_net.convs[0].weight.data[:8] += 0.5
        after = paper_net.view(ws.find("lower50"))(x)
        assert not np.allclose(before, after)

    def test_upper_subnet_independent_of_lower_weights(self, paper_net, rng):
        """The paper's reliability mechanism: upper subnets never read the
        lower channels' weights, so scrambling them must not change upper
        outputs (this is what lets the Worker survive a Master failure)."""
        ws = paper_net.width_spec
        x = rng.standard_normal((2, 1, 28, 28))
        before = paper_net.view(ws.find("upper50"))(x)
        # Scramble everything the master holds: rows [0, 8) of each conv,
        # and the classifier columns for channels [0, 8).
        for conv in paper_net.convs:
            conv.weight.data[:8] = rng.standard_normal(conv.weight.data[:8].shape)
            conv.bias.data[:8] = rng.standard_normal(8)
        paper_net.classifier.weight.data[:, : 8 * 49] = rng.standard_normal((10, 8 * 49))
        after = paper_net.view(ws.find("upper50"))(x)
        np.testing.assert_allclose(before, after)

    def test_lower_subnet_independent_of_upper_weights(self, paper_net, rng):
        ws = paper_net.width_spec
        x = rng.standard_normal((2, 1, 28, 28))
        before = paper_net.view(ws.find("lower50"))(x)
        for conv in paper_net.convs:
            conv.weight.data[8:] = rng.standard_normal(conv.weight.data[8:].shape)
        after = paper_net.view(ws.find("lower50"))(x)
        np.testing.assert_allclose(before, after)

    def test_combined_model_uses_cross_blocks(self, paper_net, rng):
        """The 100% model must read lower->upper cross weights (dense)."""
        ws = paper_net.width_spec
        x = rng.standard_normal((2, 1, 28, 28))
        before = paper_net.view(ws.find("lower100"))(x)
        # Perturb only a cross block: conv2 rows 8:16, cols 0:8.
        paper_net.convs[1].weight.data[8:, :8] += 0.5
        after = paper_net.view(ws.find("lower100"))(x)
        assert not np.allclose(before, after)
        # But the standalone halves are untouched by that cross block.
        np.testing.assert_allclose(
            paper_net.view(ws.find("lower50"))(x), paper_net.view(ws.find("lower50"))(x)
        )


class TestViews:
    def test_view_activates_on_forward(self, paper_net, rng):
        ws = paper_net.width_spec
        lower = paper_net.view(ws.find("lower25"))
        upper = paper_net.view(ws.find("upper25"))
        x = rng.standard_normal((1, 1, 28, 28))
        lower(x)
        assert paper_net.active_spec.name == "lower25"
        upper(x)
        assert paper_net.active_spec.name == "upper25"

    def test_backward_guards_against_stale_spec(self, paper_net, rng):
        ws = paper_net.width_spec
        view_a = paper_net.view(ws.find("lower25"))
        view_b = paper_net.view(ws.find("lower50"))
        x = rng.standard_normal((1, 1, 28, 28))
        y = view_a(x)
        view_b(x)  # switches active spec
        with pytest.raises(RuntimeError):
            view_a.backward(np.ones_like(y))

    def test_view_parameters_are_container_parameters(self, paper_net):
        view = paper_net.view(paper_net.width_spec.find("lower25"))
        assert view.parameters() == paper_net.parameters()

    def test_views_dict_covers_family(self, paper_net):
        views = paper_net.views()
        assert set(views) == {s.name for s in paper_net.width_spec.all_specs()}

    def test_flops_monotone_in_width(self, paper_net):
        ws = paper_net.width_spec
        flops = [paper_net.view(ws.lower(w)).flops_per_image() for w in ws.lower_widths]
        assert flops == sorted(flops)
        assert flops[0] < flops[-1]


class TestTrainingThroughViews:
    def test_backward_only_touches_active_region(self, paper_net, rng):
        ws = paper_net.width_spec
        view = paper_net.view(ws.find("upper25"))
        x = rng.standard_normal((2, 1, 28, 28))
        y = view(x)
        loss_fn = SoftmaxCrossEntropy()
        _, grad = loss_fn(y, np.array([1, 2]))
        view.zero_grad()
        view.backward(grad)
        # conv2 gradient must live only in block [8:12, 8:12].
        g = paper_net.convs[1].weight.grad
        assert g[8:12, 8:12].any()
        mask = np.zeros_like(g)
        mask[8:12, 8:12] = 1
        assert not (g * (1 - mask)).any()

    def test_region_masks_cover_all_touched_params(self, paper_net, rng):
        """Gradient support must be inside the declared region mask."""
        ws = paper_net.width_spec
        loss_fn = SoftmaxCrossEntropy()
        x = rng.standard_normal((2, 1, 28, 28))
        for spec in ws.all_specs():
            view = paper_net.view(spec)
            y = view(x)
            _, grad = loss_fn(y, np.array([0, 1]))
            view.zero_grad()
            view.backward(grad)
            regions = {id(p): m for p, m in paper_net.region_masks(spec)}
            for param in paper_net.parameters():
                support = (param.grad != 0).astype(float)
                region = regions[id(param)]
                outside = support * (1 - region)
                assert not outside.any(), f"{spec.name}: {param.name} grad outside region"
