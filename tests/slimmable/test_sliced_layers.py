"""Tests for sliced conv/linear layers: correctness against dense layers,
gradient routing into the full-width store, and slice validation."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.slimmable import ChannelSlice, SlicedConv2d, SlicedLinear
from repro.utils import make_rng
from tests.nn.gradcheck import numerical_grad_wrt_array


class TestSlicedConvForward:
    def test_full_slice_matches_dense_conv(self, rng):
        conv = SlicedConv2d(3, 5, 3, padding=1, rng=rng)
        x = rng.standard_normal((2, 3, 6, 6))
        y = conv(x)
        dense, _ = F.conv2d_forward(x, conv.weight.data, conv.bias.data, 1, 1)
        np.testing.assert_allclose(y, dense)

    def test_sub_slice_matches_manual_slice(self, rng):
        conv = SlicedConv2d(4, 6, 3, padding=1, rng=rng)
        conv.set_slices(ChannelSlice(1, 3), ChannelSlice(2, 5))
        x = rng.standard_normal((2, 2, 5, 5))
        y = conv(x)
        w = conv.weight.data[2:5, 1:3]
        b = conv.bias.data[2:5]
        expected, _ = F.conv2d_forward(x, np.ascontiguousarray(w), b, 1, 1)
        np.testing.assert_allclose(y, expected)

    def test_wrong_input_channels_raises(self, rng):
        conv = SlicedConv2d(4, 6, 3, rng=rng)
        conv.set_slices(ChannelSlice(0, 2), ChannelSlice(0, 3))
        with pytest.raises(ValueError):
            conv(rng.standard_normal((1, 4, 5, 5)))

    def test_slice_bounds_validated(self, rng):
        conv = SlicedConv2d(4, 6, 3, rng=rng)
        with pytest.raises(ValueError):
            conv.set_slices(ChannelSlice(0, 5), ChannelSlice(0, 6))
        with pytest.raises(ValueError):
            conv.set_slices(ChannelSlice(0, 4), ChannelSlice(0, 7))

    def test_slice_input_false_ignores_in_slice(self, rng):
        conv = SlicedConv2d(1, 6, 3, padding=1, slice_input=False, rng=rng)
        conv.set_slices(ChannelSlice(0, 1), ChannelSlice(2, 4))
        x = rng.standard_normal((1, 1, 5, 5))
        assert conv(x).shape == (1, 2, 5, 5)


class TestSlicedConvBackward:
    def test_gradients_land_only_in_active_block(self, rng):
        conv = SlicedConv2d(4, 6, 3, padding=1, rng=rng)
        conv.set_slices(ChannelSlice(1, 3), ChannelSlice(2, 5))
        x = rng.standard_normal((2, 2, 5, 5))
        y = conv(x)
        conv.zero_grad()
        conv.backward(np.ones_like(y))
        grad = conv.weight.grad
        active = grad[2:5, 1:3]
        assert np.abs(active).sum() > 0
        total = np.abs(grad).sum()
        assert total == pytest.approx(np.abs(active).sum())
        bias_grad = conv.bias.grad
        assert not bias_grad[:2].any() and not bias_grad[5:].any()

    def test_weight_gradient_matches_numerical(self, rng):
        conv = SlicedConv2d(3, 4, 3, padding=1, rng=rng)
        conv.set_slices(ChannelSlice(0, 2), ChannelSlice(1, 4))
        x = rng.standard_normal((1, 2, 4, 4))
        g = rng.standard_normal((1, 3, 4, 4))

        def objective():
            return float((conv(x) * g).sum())

        conv.zero_grad()
        conv(x)
        grad_x = conv.backward(g)
        num_w = numerical_grad_wrt_array(objective, conv.weight.data)
        np.testing.assert_allclose(conv.weight.grad, num_w, atol=1e-6)
        num_x = numerical_grad_wrt_array(objective, x)
        np.testing.assert_allclose(grad_x, num_x, atol=1e-6)

    def test_flops_scale_with_slice(self, rng):
        conv = SlicedConv2d(8, 8, 3, padding=1, rng=rng)
        conv.set_slices(ChannelSlice(0, 8), ChannelSlice(0, 8))
        full = conv.flops_per_image(10, 10)
        conv.set_slices(ChannelSlice(0, 4), ChannelSlice(0, 4))
        quarter = conv.flops_per_image(10, 10)
        assert quarter * 4 == full


class TestSlicedLinear:
    def test_full_slice_matches_dense(self, rng):
        lin = SlicedLinear(8, 3, rng=rng)
        x = rng.standard_normal((4, 8))
        np.testing.assert_allclose(lin(x), x @ lin.weight.data.T + lin.bias.data)

    def test_sub_slice_matches_manual(self, rng):
        lin = SlicedLinear(8, 3, rng=rng)
        lin.set_feature_slice(ChannelSlice(2, 6))
        x = rng.standard_normal((4, 4))
        expected = x @ lin.weight.data[:, 2:6].T + lin.bias.data
        np.testing.assert_allclose(lin(x), expected)

    def test_gradients_only_in_active_columns(self, rng):
        lin = SlicedLinear(8, 3, rng=rng)
        lin.set_feature_slice(ChannelSlice(2, 6))
        y = lin(rng.standard_normal((4, 4)))
        lin.zero_grad()
        lin.backward(np.ones_like(y))
        grad = lin.weight.grad
        assert not grad[:, :2].any() and not grad[:, 6:].any()
        assert grad[:, 2:6].any()

    def test_bias_always_full(self, rng):
        lin = SlicedLinear(8, 3, rng=rng)
        lin.set_feature_slice(ChannelSlice(0, 4))
        y = lin(rng.standard_normal((2, 4)))
        lin.zero_grad()
        lin.backward(np.ones_like(y))
        assert lin.bias.grad.shape == (3,)
        assert lin.bias.grad.all()

    def test_slice_bounds_validated(self, rng):
        lin = SlicedLinear(8, 3, rng=rng)
        with pytest.raises(ValueError):
            lin.set_feature_slice(ChannelSlice(0, 9))

    def test_wrong_input_width_raises(self, rng):
        lin = SlicedLinear(8, 3, rng=rng)
        lin.set_feature_slice(ChannelSlice(0, 4))
        with pytest.raises(ValueError):
            lin(rng.standard_normal((2, 8)))
