"""Tests for channel slices and width specs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.slimmable import ChannelSlice, SubNetSpec, WidthSpec, paper_width_spec, uniform_spec


class TestChannelSlice:
    def test_width(self):
        assert ChannelSlice(2, 6).width == 4

    def test_invalid(self):
        with pytest.raises(ValueError):
            ChannelSlice(3, 3)
        with pytest.raises(ValueError):
            ChannelSlice(-1, 2)
        with pytest.raises(ValueError):
            ChannelSlice(5, 2)

    def test_contains(self):
        assert ChannelSlice(0, 8).contains(ChannelSlice(2, 6))
        assert not ChannelSlice(0, 8).contains(ChannelSlice(6, 10))

    def test_overlaps(self):
        assert ChannelSlice(0, 4).overlaps(ChannelSlice(3, 6))
        assert not ChannelSlice(0, 4).overlaps(ChannelSlice(4, 6))

    def test_as_slice(self):
        assert ChannelSlice(1, 3).as_slice() == slice(1, 3)

    @settings(max_examples=30, deadline=None)
    @given(a=st.integers(0, 20), w1=st.integers(1, 10), b=st.integers(0, 20), w2=st.integers(1, 10))
    def test_contains_implies_overlaps(self, a, w1, b, w2):
        outer = ChannelSlice(a, a + w1 + w2)
        inner = ChannelSlice(a + (w1 + w2) // 4, a + (w1 + w2) // 2 + 1)
        if outer.contains(inner):
            assert outer.overlaps(inner)


class TestSubNetSpec:
    def test_uniform_spec(self):
        spec = uniform_spec("x", 0, 4, 3)
        assert len(spec.conv_slices) == 3
        assert spec.is_uniform()
        assert spec.is_lower()

    def test_upper_is_not_lower(self):
        spec = uniform_spec("u", 4, 8, 2)
        assert not spec.is_lower()

    def test_empty_slices_rejected(self):
        with pytest.raises(ValueError):
            SubNetSpec("bad", ())


class TestWidthSpec:
    def test_paper_spec_families(self):
        ws = paper_width_spec()
        lowers = [s.name for s in ws.lower_family()]
        uppers = [s.name for s in ws.upper_family()]
        assert lowers == ["lower25", "lower50", "lower75", "lower100"]
        assert uppers == ["upper25", "upper50"]

    def test_paper_spec_slices(self):
        ws = paper_width_spec()
        assert ws.find("lower50").conv_slices[0] == ChannelSlice(0, 8)
        assert ws.find("upper25").conv_slices[0] == ChannelSlice(8, 12)
        assert ws.find("upper50").conv_slices[0] == ChannelSlice(8, 16)

    def test_full(self):
        ws = paper_width_spec()
        assert ws.full().name == "lower100"
        assert ws.full().last_slice.stop == 16

    def test_find_unknown_raises(self):
        with pytest.raises(KeyError):
            paper_width_spec().find("lower33")

    def test_lower_requires_listed_width(self):
        with pytest.raises(ValueError):
            paper_width_spec().lower(5)

    def test_upper_bounds(self):
        ws = paper_width_spec()
        with pytest.raises(ValueError):
            ws.upper(9)  # 8 + 9 > 16
        with pytest.raises(ValueError):
            ws.upper(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            WidthSpec(max_width=8, lower_widths=(4, 8), split=0, num_convs=2)
        with pytest.raises(ValueError):
            WidthSpec(max_width=8, lower_widths=(8, 4), split=4, num_convs=2)
        with pytest.raises(ValueError):
            WidthSpec(max_width=8, lower_widths=(4, 6), split=4, num_convs=2)

    def test_upper_family_mirrors_widths_above_split(self):
        ws = WidthSpec(max_width=12, lower_widths=(3, 6, 9, 12), split=6, num_convs=2)
        names = [s.name for s in ws.upper_family()]
        assert names == ["upper25", "upper50"]
        assert ws.upper_family()[0].conv_slices[0] == ChannelSlice(6, 9)

    def test_all_specs_unique_names(self):
        ws = paper_width_spec()
        names = [s.name for s in ws.all_specs()]
        assert len(names) == len(set(names))
