"""End-to-end integration: the paper's full story on tiny models.

Train all three families -> run the Fig. 2 harness -> persist/reload the
result -> verify the reliability shape checks -> drive the failure
timeline.  This is the whole pipeline a user of the library runs, in one
test module.
"""

import numpy as np
import pytest

from repro.comm import CommLatencyModel
from repro.device import jetson_nx_master, jetson_nx_worker, single_failure
from repro.distributed import ExecutionMode, SystemThroughputModel
from repro.experiments import (
    load_result,
    run_fig2,
    save_result,
    shape_checks,
    subnet_accuracy_table,
)
from repro.runtime import AdaptationPolicy, SystemController


@pytest.fixture(scope="module")
def pipeline(trained_models, tiny_data):
    _, test_set = tiny_data
    result = run_fig2(trained_models, test_set)
    return trained_models, test_set, result


class TestFullPipeline:
    def test_reliability_shape_holds_end_to_end(self, pipeline):
        _, _, result = pipeline
        checks = shape_checks(result)
        reliability = [c for c in checks if "survives" in c.name or "fails" in c.name]
        assert len(reliability) == 3
        assert all(c.passed for c in reliability), reliability

    def test_throughput_cells_paper_exact(self, pipeline):
        _, _, result = pipeline
        assert result.get(
            "fluid", "master_and_worker", "HT"
        ).throughput_ips == pytest.approx(28.3, rel=0.005)

    def test_result_roundtrips_through_json(self, pipeline, tmp_path):
        _, _, result = pipeline
        path = str(tmp_path / "fig2.json")
        save_result(path, result)
        restored = load_result(path)
        checks = shape_checks(restored)
        assert [c.passed for c in checks] == [c.passed for c in shape_checks(result)]

    def test_subnet_table_renders(self, pipeline):
        models, test_set, _ = pipeline
        table = subnet_accuracy_table(models, test_set)
        assert "fluid" in table and "upper50" in table and "*" in table

    def test_failure_timeline_consistent_with_fig2(self, pipeline):
        """The controller's post-failure throughput equals the Fig. 2 cell."""
        models, _, result = pipeline
        model = models["fluid"]
        tm = SystemThroughputModel(
            model.net, jetson_nx_master(), jetson_nx_worker(), CommLatencyModel()
        )
        controller = SystemController(AdaptationPolicy(model, tm), tm)
        timeline = controller.simulate(single_failure("master", at_s=5.0), horizon_s=10.0)
        final = timeline.transitions[-1]
        assert final.plan.mode is ExecutionMode.SOLO
        cell = result.get("fluid", "only_worker", "solo")
        assert final.throughput.throughput_ips == pytest.approx(cell.throughput_ips)

    def test_checkpoint_roundtrip_preserves_fig2_accuracy(self, pipeline, tmp_path):
        """Save + reload the fluid model; its Fig. 2 accuracies are identical."""
        from repro.models import build_model
        from repro.nn.checkpoint import load_state, save_state
        from repro.utils import make_rng

        models, test_set, result = pipeline
        path = str(tmp_path / "fluid.npz")
        save_state(path, models["fluid"].state_dict())
        clone = build_model("fluid", rng=make_rng(123))
        clone.load_state_dict(load_state(path))
        original = models["fluid"].evaluate("upper50", test_set)
        assert clone.evaluate("upper50", test_set) == pytest.approx(original)
