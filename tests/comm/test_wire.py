"""Tests for the binary wire format, including adversarial frames."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import WireError, decode_frame, encode_frame, frame_payload_bytes
from repro.comm.wire import _ALLOWED_DTYPES, cast_for_wire, wire_dtype
from repro.utils import dtype_policy, make_rng


class TestRoundTrip:
    def test_basic(self, rng):
        arrays = {"x": rng.standard_normal((2, 3)), "y": np.arange(4, dtype=np.int64)}
        meta = {"kind": "test", "nested": {"a": 1}}
        out_arrays, out_meta = decode_frame(encode_frame(arrays, meta))
        assert out_meta == meta
        np.testing.assert_array_equal(out_arrays["x"], arrays["x"])
        np.testing.assert_array_equal(out_arrays["y"], arrays["y"])

    def test_empty_arrays(self):
        out_arrays, out_meta = decode_frame(encode_frame({}, {"m": 1}))
        assert out_arrays == {}
        assert out_meta == {"m": 1}

    def test_zero_size_array(self):
        arrays, _ = decode_frame(encode_frame({"e": np.zeros((0, 3))}, {}))
        assert arrays["e"].shape == (0, 3)

    def test_scalar_array(self):
        arrays, _ = decode_frame(encode_frame({"s": np.array(3.5)}, {}))
        assert arrays["s"].shape == ()
        assert float(arrays["s"]) == 3.5

    def test_preserves_dtype(self):
        for dtype in ("float32", "float64", "int32", "int64", "uint8", "bool"):
            src = np.ones((2, 2), dtype=dtype)
            arrays, _ = decode_frame(encode_frame({"a": src}, {}))
            assert arrays["a"].dtype == np.dtype(dtype)

    def test_non_contiguous_input(self, rng):
        base = rng.standard_normal((4, 6))
        view = base[:, ::2]  # non-contiguous
        arrays, _ = decode_frame(encode_frame({"v": view}, {}))
        np.testing.assert_array_equal(arrays["v"], view)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        n=st.integers(1, 5),
        shape=st.lists(st.integers(1, 6), min_size=1, max_size=4),
    )
    def test_roundtrip_randomised(self, seed, n, shape):
        rng = make_rng(seed)
        arrays = {f"a{i}": rng.standard_normal(tuple(shape)) for i in range(n)}
        decoded, _ = decode_frame(encode_frame(arrays, {"seed": seed}))
        for name, arr in arrays.items():
            np.testing.assert_array_equal(decoded[name], arr)


class TestDtypeAllowlist:
    """Every allowlisted dtype round-trips; everything else is rejected."""

    @pytest.mark.parametrize("dtype", sorted(_ALLOWED_DTYPES))
    def test_roundtrip_every_allowed_dtype(self, dtype):
        if dtype == "bool":
            src = np.array([[True, False], [False, True]])
        elif np.issubdtype(np.dtype(dtype), np.integer):
            info = np.iinfo(dtype)
            src = np.array([[info.min, 0], [7, info.max]], dtype=dtype)
        else:
            src = np.array([[-1.5, 0.0], [np.pi, 1e30]], dtype=dtype)
        decoded, _ = decode_frame(encode_frame({"a": src}, {"dtype": dtype}))
        assert decoded["a"].dtype == np.dtype(dtype)
        assert decoded["a"].shape == src.shape
        np.testing.assert_array_equal(decoded["a"], src)

    @pytest.mark.parametrize(
        "dtype", ["float16", "int16", "uint64", "complex64", "complex128"]
    )
    def test_disallowed_dtype_rejected_on_encode(self, dtype):
        assert dtype not in _ALLOWED_DTYPES
        with pytest.raises(WireError, match="not allowed"):
            encode_frame({"bad": np.ones(3, dtype=dtype)}, {})

    @pytest.mark.parametrize("dtype", ["float16", "complex128"])
    def test_disallowed_dtype_rejected_on_decode(self, dtype):
        import json
        import struct

        header = json.dumps(
            {"meta": {}, "arrays": [{"name": "x", "dtype": dtype, "shape": [1]}]}
        ).encode()
        frame = b"FDN1" + struct.pack(">I", len(header)) + header + b"\x00" * 16
        with pytest.raises(WireError, match="not allowed"):
            decode_frame(frame)


class TestWireDtypePolicy:
    def test_default_wire_dtype_is_float32(self):
        assert wire_dtype() == np.float32

    def test_policy_selects_wire_dtype(self):
        with dtype_policy(wire="float64"):
            assert wire_dtype() == np.float64
            assert cast_for_wire(np.zeros(2, dtype=np.float32)).dtype == np.float64

    def test_cast_for_wire_no_copy_when_already_there(self):
        x = np.zeros(4, dtype=np.float32)
        assert cast_for_wire(x) is x

    def test_cast_for_wire_roundtrips_through_frame(self, rng):
        x = rng.standard_normal((3, 5))
        wired = cast_for_wire(x)
        decoded, _ = decode_frame(encode_frame({"x": wired}, {}))
        np.testing.assert_array_equal(decoded["x"], x.astype(np.float32))


class TestRejections:
    def test_object_dtype_rejected(self):
        with pytest.raises(WireError):
            encode_frame({"bad": np.array([object()])}, {})

    def test_bad_magic(self):
        frame = bytearray(encode_frame({"x": np.zeros(2)}, {}))
        frame[0] = ord("X")
        with pytest.raises(WireError, match="magic"):
            decode_frame(bytes(frame))

    def test_truncated_header(self):
        frame = encode_frame({"x": np.zeros(2)}, {})
        with pytest.raises(WireError):
            decode_frame(frame[:6])

    def test_truncated_payload(self):
        frame = encode_frame({"x": np.zeros(100)}, {})
        with pytest.raises(WireError, match="truncated"):
            decode_frame(frame[:-10])

    def test_trailing_garbage(self):
        frame = encode_frame({"x": np.zeros(2)}, {})
        with pytest.raises(WireError, match="trailing"):
            decode_frame(frame + b"junk")

    def test_header_not_json(self):
        import struct

        header = b"not json at all"
        frame = b"FDN1" + struct.pack(">I", len(header)) + header
        with pytest.raises(WireError):
            decode_frame(frame)

    def test_smuggled_dtype_rejected(self):
        # Craft a header claiming an object dtype.
        import json
        import struct

        header = json.dumps(
            {"meta": {}, "arrays": [{"name": "x", "dtype": "object", "shape": [1]}]}
        ).encode()
        frame = b"FDN1" + struct.pack(">I", len(header)) + header + b"\x00" * 8
        with pytest.raises(WireError, match="not allowed"):
            decode_frame(frame)

    def test_negative_shape_rejected(self):
        import json
        import struct

        header = json.dumps(
            {"meta": {}, "arrays": [{"name": "x", "dtype": "float64", "shape": [-1]}]}
        ).encode()
        frame = b"FDN1" + struct.pack(">I", len(header)) + header
        with pytest.raises(WireError):
            decode_frame(frame)

    def test_oversized_declared_header(self):
        import struct

        frame = b"FDN1" + struct.pack(">I", 1 << 24) + b"x"
        with pytest.raises(WireError):
            decode_frame(frame)


class TestPayloadBytes:
    def test_counts(self, rng):
        arrays = {"a": np.zeros((2, 3)), "b": np.zeros(5, dtype=np.float32)}
        assert frame_payload_bytes(arrays) == 2 * 3 * 8 + 5 * 4
