"""Tests for the in-process transport pair."""

import numpy as np
import pytest

from repro.comm import InProcChannel, Message, MessageKind, TransportClosed, TransportError


class TestInProcChannel:
    def test_bidirectional(self, rng):
        chan = InProcChannel()
        chan.a.send(Message(MessageKind.PING))
        assert chan.b.recv(timeout=1.0).kind == MessageKind.PING
        chan.b.send(Message(MessageKind.PONG))
        assert chan.a.recv(timeout=1.0).kind == MessageKind.PONG

    def test_arrays_survive_the_codec(self, rng):
        chan = InProcChannel()
        x = rng.standard_normal((2, 3)).astype(np.float32)
        chan.a.send(Message(MessageKind.RESULT, arrays={"x": x}))
        got = chan.b.recv(timeout=1.0)
        np.testing.assert_array_equal(got.arrays["x"], x)

    def test_fifo_order(self):
        chan = InProcChannel()
        chan.a.send(Message(MessageKind.PING, fields={"n": 1}))
        chan.a.send(Message(MessageKind.PING, fields={"n": 2}))
        assert chan.b.recv(timeout=1.0).fields["n"] == 1
        assert chan.b.recv(timeout=1.0).fields["n"] == 2

    def test_send_after_close_raises(self):
        chan = InProcChannel()
        chan.a.close()
        with pytest.raises(TransportClosed):
            chan.a.send(Message(MessageKind.PING))

    def test_send_to_closed_peer_raises(self):
        chan = InProcChannel()
        chan.b.close()
        with pytest.raises(TransportError):
            chan.a.send(Message(MessageKind.PING))

    def test_recv_after_peer_close_raises(self):
        chan = InProcChannel()
        chan.a.close()
        with pytest.raises(TransportError):
            chan.b.recv(timeout=0.2)

    def test_recv_timeout(self):
        chan = InProcChannel()
        with pytest.raises(TransportError, match="timeout"):
            chan.a.recv(timeout=0.05)

    def test_closed_property(self):
        chan = InProcChannel()
        assert not chan.a.closed
        chan.a.close()
        assert chan.a.closed
