"""Tests for protocol messages."""

import numpy as np
import pytest

from repro.comm import Message, MessageKind, error_message, result_message


class TestMessage:
    def test_roundtrip(self, rng):
        msg = Message(
            MessageKind.RUN_SUBNET,
            fields={"spec": "lower50"},
            arrays={"x": rng.standard_normal((2, 1, 4, 4))},
        )
        again = Message.decode(msg.encode())
        assert again.kind == MessageKind.RUN_SUBNET
        assert again.fields == {"spec": "lower50"}
        np.testing.assert_array_equal(again.arrays["x"], msg.arrays["x"])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Message("teleport")

    def test_ping_has_no_payload(self):
        again = Message.decode(Message(MessageKind.PING).encode())
        assert again.kind == MessageKind.PING
        assert again.arrays == {}

    def test_error_helper(self):
        msg = error_message("boom")
        assert msg.kind == MessageKind.ERROR
        assert msg.fields["reason"] == "boom"

    def test_result_helper(self, rng):
        msg = result_message({"logits": rng.standard_normal((1, 10))}, compute_s=0.5)
        assert msg.kind == MessageKind.RESULT
        assert msg.fields["compute_s"] == 0.5

    def test_decode_requires_kind(self, rng):
        from repro.comm import encode_frame

        frame = encode_frame({}, {"fields": {}})
        with pytest.raises(ValueError):
            Message.decode(frame)
