"""Tests for the TCP transport over localhost."""

import threading

import numpy as np
import pytest

from repro.comm import Message, MessageKind, TcpListener, TransportError, connect


@pytest.fixture
def tcp_pair():
    listener = TcpListener()
    port = listener.address[1]
    server_side = {}

    def accept():
        server_side["t"] = listener.accept(timeout=5.0)

    thread = threading.Thread(target=accept)
    thread.start()
    client = connect("127.0.0.1", port)
    thread.join(timeout=5.0)
    server = server_side["t"]
    yield client, server
    client.close()
    server.close()
    listener.close()


class TestTcpTransport:
    def test_roundtrip(self, tcp_pair, rng):
        client, server = tcp_pair
        x = rng.standard_normal((3, 1, 8, 8)).astype(np.float32)
        client.send(Message(MessageKind.RUN_SUBNET, fields={"spec": "s"}, arrays={"x": x}))
        got = server.recv(timeout=2.0)
        assert got.fields["spec"] == "s"
        np.testing.assert_array_equal(got.arrays["x"], x)

    def test_large_frame(self, tcp_pair, rng):
        client, server = tcp_pair
        x = rng.standard_normal((64, 1, 28, 28)).astype(np.float32)
        client.send(Message(MessageKind.RESULT, arrays={"x": x}))
        got = server.recv(timeout=5.0)
        assert got.arrays["x"].shape == (64, 1, 28, 28)

    def test_many_messages_in_order(self, tcp_pair):
        client, server = tcp_pair
        for i in range(20):
            client.send(Message(MessageKind.PING, fields={"i": i}))
        for i in range(20):
            assert server.recv(timeout=2.0).fields["i"] == i

    def test_recv_timeout(self, tcp_pair):
        client, _ = tcp_pair
        with pytest.raises(TransportError, match="timeout"):
            client.recv(timeout=0.1)

    def test_peer_close_detected(self, tcp_pair):
        client, server = tcp_pair
        server.close()
        with pytest.raises(TransportError):
            client.recv(timeout=2.0)

    def test_connect_to_dead_port_fails(self):
        listener = TcpListener()
        port = listener.address[1]
        listener.close()
        with pytest.raises(TransportError):
            connect("127.0.0.1", port, timeout=0.5)
