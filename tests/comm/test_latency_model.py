"""Tests for the offline-measured communication latency model."""

import pytest

from repro.comm import CommLatencyModel


class TestCommLatencyModel:
    def test_transfer_time_formula(self):
        model = CommLatencyModel(base_latency_s=0.001, bandwidth_bytes_per_s=1e6)
        assert model.transfer_time(1000) == pytest.approx(0.001 + 0.001)

    def test_zero_bytes_costs_base(self):
        model = CommLatencyModel(base_latency_s=0.002, bandwidth_bytes_per_s=1e6)
        assert model.transfer_time(0) == pytest.approx(0.002)

    def test_total_time(self):
        model = CommLatencyModel(base_latency_s=0.001, bandwidth_bytes_per_s=1e6)
        total = model.total_time([1000, 2000])
        assert total == pytest.approx(0.001 * 2 + 0.003)

    def test_calibrated_ha_exchange_cost(self):
        # The paper's per-image HA comm: exchanges of 6272/1568/1568/40 bytes
        # must cost ~6.54 ms (the lone-50% vs distributed-100% gap).
        model = CommLatencyModel()
        total = model.total_time([6272, 1568, 1568, 40])
        assert total == pytest.approx(0.006535, rel=0.01)

    def test_scaling_helpers(self):
        model = CommLatencyModel(base_latency_s=0.001, bandwidth_bytes_per_s=1e6)
        assert model.scaled_bandwidth(2.0).bandwidth_bytes_per_s == 2e6
        assert model.scaled_latency(0.5).base_latency_s == pytest.approx(0.0005)

    def test_validation(self):
        with pytest.raises(ValueError):
            CommLatencyModel(base_latency_s=-1)
        with pytest.raises(ValueError):
            CommLatencyModel(bandwidth_bytes_per_s=0)
        with pytest.raises(ValueError):
            CommLatencyModel().transfer_time(-5)
        with pytest.raises(ValueError):
            CommLatencyModel().scaled_bandwidth(0)
