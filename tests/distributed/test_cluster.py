"""Integration tests: real multi-process TCP cluster on localhost."""

import numpy as np
import pytest

from repro.distributed import LocalCluster, WorkerUnavailable
from repro.slimmable import SlimmableConvNet, paper_width_spec
from repro.utils import make_rng


@pytest.fixture(scope="module")
def cluster_net():
    return SlimmableConvNet(paper_width_spec(), rng=make_rng(21))


class TestLocalCluster:
    def test_remote_subnet_inference(self, cluster_net):
        rng = make_rng(0)
        with LocalCluster(cluster_net) as cluster:
            assert cluster.master.ping_worker()
            spec = cluster_net.width_spec.find("upper50")
            x = rng.standard_normal((2, 1, 28, 28))
            remote = cluster.master.run_remote(spec, x)
            view = cluster_net.view(spec)
            view.train(False)
            local = view(x.astype(np.float32).astype(np.float64))
            np.testing.assert_allclose(remote, local, atol=1e-5)

    def test_ha_over_real_tcp(self, cluster_net):
        rng = make_rng(1)
        with LocalCluster(cluster_net) as cluster:
            spec = cluster_net.width_spec.full()
            x = rng.standard_normal((3, 1, 28, 28))
            out = cluster.master.run_ha(spec, x)
            view = cluster_net.view(spec)
            view.train(False)
            np.testing.assert_allclose(out, view(x), atol=1e-4)

    def test_power_failure_and_failover(self, cluster_net):
        """Kill the worker process mid-session; master detects the death and
        continues on its own certified sub-network — the paper's headline
        reliability scenario, on a real process boundary."""
        rng = make_rng(2)
        with LocalCluster(cluster_net) as cluster:
            spec = cluster_net.width_spec.find("upper50")
            x = rng.standard_normal((1, 1, 28, 28))
            cluster.master.run_remote(spec, x)  # worker is alive and serving

            cluster.kill_worker()  # power outage

            with pytest.raises(WorkerUnavailable):
                cluster.master.run_remote(spec, x)
            assert not cluster.master.ping_worker()

            # Failover: master continues standalone.
            logits = cluster.master.run_local(
                cluster_net.width_spec.find("lower50"), x
            )
            assert logits.shape == (1, 10)

    def test_scripted_crash_after_n_requests(self, cluster_net):
        rng = make_rng(3)
        with LocalCluster(cluster_net, crash_after=1) as cluster:
            spec = cluster_net.width_spec.find("upper25")
            x = rng.standard_normal((1, 1, 28, 28))
            cluster.master.run_remote(spec, x)
            with pytest.raises(WorkerUnavailable):
                cluster.master.run_remote(spec, x)
