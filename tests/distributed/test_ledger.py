"""Tests for the emulated-time ledger."""

import pytest

from repro.distributed import EmulatedTimeLedger


class TestEmulatedTimeLedger:
    def test_empty_ledger(self):
        ledger = EmulatedTimeLedger()
        assert ledger.total_s == 0.0
        assert ledger.throughput_ips() == 0.0

    def test_throughput(self):
        ledger = EmulatedTimeLedger(compute_s=0.8, comm_s=0.2, images=10)
        assert ledger.total_s == pytest.approx(1.0)
        assert ledger.throughput_ips() == pytest.approx(10.0)

    def test_accumulation(self):
        ledger = EmulatedTimeLedger()
        ledger.compute_s += 0.5
        ledger.comm_s += 0.1
        ledger.images += 5
        assert ledger.throughput_ips() == pytest.approx(5 / 0.6)
