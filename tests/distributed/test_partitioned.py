"""Tests for exact width-partitioned computation (HA mode math)."""

import numpy as np
import pytest

from repro.distributed import conv_block_half, fc_partial, partitioned_forward_reference
from repro.distributed.partitioned import feature_slice_for_block, flatten_channel_block
from repro.slimmable import ChannelSlice
from repro.utils import make_rng


class TestPartitionedEquivalence:
    @pytest.mark.parametrize("spec_name", ["lower100", "lower75"])
    def test_matches_monolithic_forward(self, paper_net, rng, spec_name):
        spec = paper_net.width_spec.find(spec_name)
        x = rng.standard_normal((4, 1, 28, 28))
        view = paper_net.view(spec)
        view.train(False)
        reference = view(x)
        partitioned, _ = partitioned_forward_reference(paper_net, spec, 8, x)
        np.testing.assert_allclose(partitioned, reference, atol=1e-10)

    def test_matches_at_uneven_split(self, paper_net, rng):
        spec = paper_net.width_spec.full()
        x = rng.standard_normal((2, 1, 28, 28))
        view = paper_net.view(spec)
        view.train(False)
        reference = view(x)
        for split in (4, 12):
            partitioned, _ = partitioned_forward_reference(paper_net, spec, split, x)
            np.testing.assert_allclose(partitioned, reference, atol=1e-10)

    def test_exchange_accounting_matches_cost_model(self, paper_net, rng):
        from repro.device import partitioned_device_costs

        spec = paper_net.width_spec.full()
        x = rng.standard_normal((1, 1, 28, 28))
        _, exchanged = partitioned_forward_reference(paper_net, spec, 8, x)
        _, _, expected = partitioned_device_costs(paper_net, spec, 8)
        assert exchanged == expected

    def test_upper_spec_rejected(self, paper_net, rng):
        spec = paper_net.width_spec.find("upper50")
        with pytest.raises(ValueError):
            partitioned_forward_reference(paper_net, spec, 8, rng.standard_normal((1, 1, 28, 28)))


class TestConvBlockHalf:
    def test_halves_concatenate_to_full_layer(self, paper_net, rng):
        x = rng.standard_normal((2, 1, 28, 28))
        spec = paper_net.width_spec.full()
        lower = conv_block_half(paper_net, 0, x, ChannelSlice(0, 8))
        upper = conv_block_half(paper_net, 0, x, ChannelSlice(8, 16))
        assert lower.shape == (2, 8, 14, 14)
        assert upper.shape == (2, 8, 14, 14)
        # Full layer through the net's own forward path.
        paper_net.set_active(spec)
        full = paper_net.pools[0](paper_net.relus[0](paper_net.convs[0](x)))
        np.testing.assert_allclose(np.concatenate([lower, upper], axis=1), full, atol=1e-12)

    def test_channel_mismatch_raises(self, paper_net, rng):
        x = rng.standard_normal((1, 4, 14, 14))
        with pytest.raises(ValueError):
            conv_block_half(paper_net, 1, x, ChannelSlice(0, 8), ChannelSlice(0, 8))


class TestFcPartial:
    def test_partials_sum_to_full_logits(self, paper_net, rng):
        spec = paper_net.width_spec.full()
        x = rng.standard_normal((3, 1, 28, 28))
        view = paper_net.view(spec)
        view.train(False)
        reference = view(x)
        # Recompute features through the conv stack.
        paper_net.set_active(spec)
        act = x
        for i in range(3):
            act = paper_net.relus[i](paper_net.convs[i](act))
            if i in paper_net.pools:
                act = paper_net.pools[i](act)
        lower_feats = flatten_channel_block(act[:, :8])
        upper_feats = flatten_channel_block(act[:, 8:])
        logits = fc_partial(
            paper_net, lower_feats, feature_slice_for_block(paper_net, ChannelSlice(0, 8)), True
        ) + fc_partial(
            paper_net, upper_feats, feature_slice_for_block(paper_net, ChannelSlice(8, 16)), False
        )
        np.testing.assert_allclose(logits, reference, atol=1e-10)

    def test_feature_shape_validated(self, paper_net, rng):
        with pytest.raises(ValueError):
            fc_partial(paper_net, rng.standard_normal((2, 5)), ChannelSlice(0, 392), True)
