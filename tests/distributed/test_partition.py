"""Tests for width partitioning and weight residency."""

import pytest

from repro.distributed import MASTER, WORKER, WidthPartition
from repro.slimmable import paper_width_spec


@pytest.fixture
def partition():
    return WidthPartition.at_spec_split(paper_width_spec())


class TestDeviceSlices:
    def test_master_gets_lower_rows(self, partition):
        s = partition.device_slice(MASTER)
        assert (s.start, s.stop) == (0, 8)

    def test_worker_gets_upper_rows(self, partition):
        s = partition.device_slice(WORKER)
        assert (s.start, s.stop) == (8, 16)

    def test_unknown_role(self, partition):
        with pytest.raises(ValueError):
            partition.device_slice("bystander")

    def test_split_bounds(self):
        with pytest.raises(ValueError):
            WidthPartition(paper_width_spec(), 0)
        with pytest.raises(ValueError):
            WidthPartition(paper_width_spec(), 16)


class TestResidency:
    def test_master_residency(self, partition):
        names = [s.name for s in partition.resident_specs(MASTER)]
        assert names == ["lower25", "lower50"]

    def test_worker_residency(self, partition):
        names = [s.name for s in partition.resident_specs(WORKER)]
        assert names == ["upper25", "upper50"]

    def test_residency_table(self, partition):
        table = partition.residency_table()
        assert table[MASTER] == ["lower25", "lower50"]
        assert table[WORKER] == ["upper25", "upper50"]


class TestSurvivorOptions:
    """The reliability story of Fig. 1b/1c, expressed as residency x certification."""

    def test_static_has_no_survivors(self, partition):
        # Static DNN certifies nothing standalone.
        assert partition.survivor_options(MASTER, ()) == []
        assert partition.survivor_options(WORKER, ()) == []

    def test_dynamic_master_survives_worker_does_not(self, partition):
        dynamic_certified = ("lower25", "lower50", "lower75", "lower100")
        master_names = [s.name for s in partition.survivor_options(MASTER, dynamic_certified)]
        assert master_names == ["lower25", "lower50"]
        assert partition.survivor_options(WORKER, dynamic_certified) == []

    def test_fluid_both_survive(self, partition):
        fluid_certified = (
            "lower25", "lower50", "lower75", "lower100", "upper25", "upper50",
        )
        assert [s.name for s in partition.survivor_options(MASTER, fluid_certified)] == [
            "lower25",
            "lower50",
        ]
        assert [s.name for s in partition.survivor_options(WORKER, fluid_certified)] == [
            "upper25",
            "upper50",
        ]

    def test_uneven_split_changes_residency(self):
        partition = WidthPartition(paper_width_spec(), 12)
        master_names = [s.name for s in partition.resident_specs(MASTER)]
        assert "lower75" in master_names
        # Worker rows [12,16) hold no named sub-network (upper specs start at 8).
        assert partition.resident_specs(WORKER) == []
