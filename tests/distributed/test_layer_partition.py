"""Tests for the layer-wise (depth) partitioning baseline."""

import pytest

from repro.comm import CommLatencyModel
from repro.device import jetson_nx_master, jetson_nx_worker
from repro.distributed import LayerCut, LayerPartitionModel, SystemThroughputModel


@pytest.fixture
def lp(paper_net):
    return LayerPartitionModel(
        paper_net, jetson_nx_master(), jetson_nx_worker(), CommLatencyModel()
    )


class TestLayerCut:
    def test_bounds(self):
        with pytest.raises(ValueError):
            LayerCut(0, 4)
        with pytest.raises(ValueError):
            LayerCut(4, 4)


class TestStageCosts:
    def test_partition_covers_all_layers(self, lp, paper_net):
        spec = paper_net.width_spec.full()
        master, worker, _ = lp.stage_costs(spec, LayerCut(2, 4))
        assert len(master) == 2 and len(worker) == 2
        from repro.device import subnet_flops

        total = subnet_flops(paper_net, spec)
        assert sum(c.flops for c in master) + sum(c.flops for c in worker) == total

    def test_transfer_is_cut_activation(self, lp, paper_net):
        spec = paper_net.width_spec.full()
        _, _, transfer = lp.stage_costs(spec, LayerCut(1, 4))
        # Full (not half) pooled conv1 activation: 16 * 14*14 * 4 bytes.
        assert transfer == 16 * 196 * 4


class TestLatency:
    def test_sequential_sums_stages(self, lp, paper_net):
        spec = paper_net.width_spec.full()
        out = lp.latency(spec, LayerCut(2, 4))
        assert out.latency_s == pytest.approx(
            out.compute_master_s + out.compute_worker_s + out.comm_s
        )

    def test_pipelined_beats_sequential(self, lp, paper_net):
        spec = paper_net.width_spec.full()
        cut = LayerCut(2, 4)
        assert lp.pipelined_throughput(spec, cut) > lp.latency(spec, cut).throughput_ips

    def test_best_cut_search(self, lp, paper_net):
        spec = paper_net.width_spec.full()
        cut, ips = lp.best_cut(spec, pipelined=True)
        assert 1 <= cut.cut <= 3
        for other in range(1, 4):
            assert ips >= lp.pipelined_throughput(spec, LayerCut(other, 4)) - 1e-12


class TestComparisonWithWidthPartition:
    def test_width_ha_beats_sequential_layer_split(self, lp, paper_net):
        """Per-image latency: width partitioning parallelises every layer,
        depth partitioning serialises the devices."""
        tm = SystemThroughputModel(
            paper_net, jetson_nx_master(), jetson_nx_worker(), CommLatencyModel()
        )
        spec = paper_net.width_spec.full()
        width_ha = tm.ha_throughput(spec).throughput_ips
        _, layer_seq = lp.best_cut(spec, pipelined=False)
        assert width_ha > layer_seq

    def test_ht_beats_any_layer_split(self, lp, paper_net):
        tm = SystemThroughputModel(
            paper_net, jetson_nx_master(), jetson_nx_worker(), CommLatencyModel()
        )
        ws = paper_net.width_spec
        ht = tm.ht_throughput(ws.find("lower50"), ws.find("upper50")).throughput_ips
        _, layer_pipe = lp.best_cut(ws.full(), pipelined=True)
        assert ht > layer_pipe

    def test_layer_split_never_survives_failure(self):
        assert not LayerPartitionModel.survives_single_failure()
