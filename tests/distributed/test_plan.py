"""Tests for deployment plans."""

import pytest

from repro.distributed import (
    Assignment,
    DeploymentPlan,
    ExecutionMode,
    failed_plan,
    ha_plan,
    ht_plan,
    solo_plan,
)


class TestAssignment:
    def test_invalid_role_rejected(self):
        with pytest.raises(ValueError):
            Assignment("master", "lower50", "juggler")


class TestDeploymentPlan:
    def test_duplicate_device_rejected(self):
        with pytest.raises(ValueError):
            DeploymentPlan(
                mode=ExecutionMode.HIGH_THROUGHPUT,
                assignments=(
                    Assignment("master", "lower50", "standalone"),
                    Assignment("master", "lower25", "standalone"),
                ),
            )

    def test_ha_requires_combined_name(self):
        with pytest.raises(ValueError):
            DeploymentPlan(mode=ExecutionMode.HIGH_ACCURACY)

    def test_failed_cannot_carry_assignments(self):
        with pytest.raises(ValueError):
            DeploymentPlan(
                mode=ExecutionMode.FAILED,
                assignments=(Assignment("master", "lower50", "standalone"),),
            )

    def test_assignment_lookup(self):
        plan = ht_plan("lower50", "upper50")
        assert plan.assignment_for("worker").subnet == "upper50"
        assert plan.assignment_for("bystander") is None
        assert plan.devices() == ["master", "worker"]


class TestFactories:
    def test_solo(self):
        plan = solo_plan("worker", "upper50")
        assert plan.mode is ExecutionMode.SOLO
        assert plan.assignments[0].role == "standalone"

    def test_ha(self):
        plan = ha_plan("lower100")
        assert plan.mode is ExecutionMode.HIGH_ACCURACY
        assert plan.combined_subnet == "lower100"
        roles = {a.device: a.role for a in plan.assignments}
        assert roles == {"master": "partition_lower", "worker": "partition_upper"}

    def test_failed(self):
        plan = failed_plan("because")
        assert plan.mode is ExecutionMode.FAILED
        assert "because" in plan.describe()

    def test_describe_readable(self):
        text = ht_plan("lower50", "upper50").describe()
        assert "HT" in text and "lower50" in text and "upper50" in text
