"""Tests for the worker process entry point (argument plumbing)."""

import numpy as np
import pytest

from repro.distributed.worker_main import build_parser
from repro.nn.checkpoint import save_state
from repro.slimmable import SlimmableConvNet, WidthSpec, paper_width_spec
from repro.utils import make_rng


class TestParser:
    def test_defaults_match_paper_config(self):
        args = build_parser().parse_args(["--port", "0", "--weights", "w.npz"])
        assert args.max_width == 16
        assert args.lower_widths == [4, 8, 12, 16]
        assert args.split == 8
        assert args.num_convs == 3
        assert args.crash_after is None

    def test_custom_widths(self):
        args = build_parser().parse_args(
            [
                "--port", "0", "--weights", "w.npz",
                "--max-width", "8", "--lower-widths", "4", "8", "--split", "4",
            ]
        )
        spec = WidthSpec(
            max_width=args.max_width,
            lower_widths=tuple(args.lower_widths),
            split=args.split,
            num_convs=args.num_convs,
        )
        assert spec.max_width == 8

    def test_port_and_weights_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--port", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--weights", "w.npz"])


class TestCheckpointCompatibility:
    def test_worker_reconstructs_identical_net(self, tmp_path):
        """The weights the cluster launcher writes must load into the net the
        worker builds from CLI args — same architecture, same outputs."""
        source = SlimmableConvNet(paper_width_spec(), rng=make_rng(3))
        path = str(tmp_path / "w.npz")
        save_state(path, source.state_dict())

        from repro.nn.checkpoint import load_state

        rebuilt = SlimmableConvNet(paper_width_spec(), rng=make_rng(99))
        rebuilt.load_state_dict(load_state(path))
        x = make_rng(0).standard_normal((2, 1, 28, 28))
        spec = source.width_spec.find("upper50")
        va, vb = source.view(spec), rebuilt.view(spec)
        va.train(False)
        vb.train(False)
        np.testing.assert_array_equal(va(x), vb(x))
