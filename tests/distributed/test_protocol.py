"""Integration tests: master/worker protocol over the in-process channel."""

import threading

import numpy as np
import pytest

from repro.comm import InProcChannel, Message, MessageKind
from repro.device import CrashCounter, EmulatedDevice, jetson_nx_master, jetson_nx_worker
from repro.distributed import MasterRuntime, WorkerServer, WorkerUnavailable


@pytest.fixture
def protocol_pair(paper_net):
    """A served worker and a connected master over an in-proc channel."""
    chan = InProcChannel()
    worker_device = EmulatedDevice(jetson_nx_worker(), paper_net)
    server = WorkerServer(worker_device, chan.b, partition_split=8)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    master_device = EmulatedDevice(jetson_nx_master(), paper_net)
    master = MasterRuntime(master_device, chan.a, partition_split=8)
    yield master, worker_device
    master.shutdown_worker()
    thread.join(timeout=5.0)


class TestHeartbeat:
    def test_ping(self, protocol_pair):
        master, _ = protocol_pair
        assert master.ping_worker()

    def test_ping_after_shutdown_fails(self, protocol_pair):
        master, _ = protocol_pair
        master.shutdown_worker()
        assert not master.ping_worker()


class TestRemoteExecution:
    def test_run_remote_matches_local_view(self, protocol_pair, rng):
        master, worker_device = protocol_pair
        spec = worker_device.net.width_spec.find("upper50")
        x = rng.standard_normal((3, 1, 28, 28))
        remote = master.run_remote(spec, x)
        view = worker_device.net.view(spec)
        view.train(False)
        local = view(x.astype(np.float32).astype(np.float64))
        np.testing.assert_allclose(remote, local, atol=1e-5)

    def test_worker_accounts_compute_time(self, protocol_pair, rng):
        master, worker_device = protocol_pair
        spec = worker_device.net.width_spec.find("upper50")
        master.run_remote(spec, rng.standard_normal((2, 1, 28, 28)))
        assert worker_device.busy_time_s > 0
        assert master.ledger.compute_s > 0
        assert master.ledger.comm_s > 0


class TestHaProtocol:
    def test_ha_matches_monolithic(self, protocol_pair, rng):
        master, worker_device = protocol_pair
        spec = worker_device.net.width_spec.full()
        x = rng.standard_normal((4, 1, 28, 28))
        out = master.run_ha(spec, x)
        view = worker_device.net.view(spec)
        view.train(False)
        reference = view(x)
        # float32 wire casts dominate the tolerance.
        np.testing.assert_allclose(out, reference, atol=1e-4)

    def test_ha_on_75_percent_model(self, protocol_pair, rng):
        master, worker_device = protocol_pair
        spec = worker_device.net.width_spec.find("lower75")
        x = rng.standard_normal((2, 1, 28, 28))
        out = master.run_ha(spec, x)
        view = worker_device.net.view(spec)
        view.train(False)
        np.testing.assert_allclose(out, view(x), atol=1e-4)

    def test_ha_rejects_upper_spec(self, protocol_pair, rng):
        master, worker_device = protocol_pair
        spec = worker_device.net.width_spec.find("upper50")
        with pytest.raises(ValueError):
            master.run_ha(spec, rng.standard_normal((1, 1, 28, 28)))

    def test_consecutive_ha_batches(self, protocol_pair, rng):
        master, worker_device = protocol_pair
        spec = worker_device.net.width_spec.full()
        view = worker_device.net.view(spec)
        view.train(False)
        for _ in range(3):
            x = rng.standard_normal((2, 1, 28, 28))
            np.testing.assert_allclose(master.run_ha(spec, x), view(x), atol=1e-4)


class TestHtProtocol:
    def test_parallel_streams(self, protocol_pair, rng):
        master, worker_device = protocol_pair
        ws = worker_device.net.width_spec
        x_m = rng.standard_normal((3, 1, 28, 28))
        x_w = rng.standard_normal((3, 1, 28, 28))
        logits_m, logits_w = master.run_ht(ws.find("lower50"), ws.find("upper50"), x_m, x_w)
        assert logits_m.shape == (3, 10)
        assert logits_w.shape == (3, 10)
        assert master.ledger.images == 6  # both parallel streams' images count


class TestFailureHandling:
    def test_crash_mid_stream_raises_worker_unavailable(self, paper_net, rng):
        chan = InProcChannel()
        worker_device = EmulatedDevice(
            jetson_nx_worker(), paper_net, crash_counter=CrashCounter(2)
        )
        server = WorkerServer(worker_device, chan.b, partition_split=8)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        master = MasterRuntime(
            EmulatedDevice(jetson_nx_master(), paper_net),
            chan.a,
            partition_split=8,
            request_timeout=2.0,
        )
        spec = paper_net.width_spec.find("upper50")
        x = rng.standard_normal((1, 1, 28, 28))
        master.run_remote(spec, x)
        master.run_remote(spec, x)
        with pytest.raises(WorkerUnavailable):
            master.run_remote(spec, x)
        thread.join(timeout=5.0)

    def test_crash_command_kills_worker(self, protocol_pair, rng):
        master, worker_device = protocol_pair
        master.crash_worker()
        spec = worker_device.net.width_spec.find("upper50")
        with pytest.raises(WorkerUnavailable):
            master.run_remote(spec, rng.standard_normal((1, 1, 28, 28)))

    def test_local_execution_survives_worker_crash(self, protocol_pair, rng):
        """The Fluid failover: worker dies, master keeps serving lower50."""
        master, worker_device = protocol_pair
        master.crash_worker()
        spec = worker_device.net.width_spec.find("lower50")
        logits = master.run_local(spec, rng.standard_normal((2, 1, 28, 28)))
        assert logits.shape == (2, 10)
