"""Tests for the analytical throughput model (the Fig. 2 methodology)."""

import pytest

from repro.comm import CommLatencyModel
from repro.device import jetson_nx_master, jetson_nx_worker
from repro.distributed import (
    MASTER,
    WORKER,
    SystemThroughputModel,
    failed_plan,
    ha_plan,
    ht_plan,
    solo_plan,
)


@pytest.fixture
def tm(paper_net):
    return SystemThroughputModel(
        paper_net, jetson_nx_master(), jetson_nx_worker(), CommLatencyModel()
    )


class TestCalibratedOperatingPoints:
    """The four paper numbers, reproduced to within 0.5%."""

    def test_lone_master_50(self, tm, paper_net):
        spec = paper_net.width_spec.find("lower50")
        assert tm.standalone_throughput(MASTER, spec).throughput_ips == pytest.approx(
            14.4, rel=0.005
        )

    def test_lone_worker_upper50(self, tm, paper_net):
        spec = paper_net.width_spec.find("upper50")
        assert tm.standalone_throughput(WORKER, spec).throughput_ips == pytest.approx(
            13.9, rel=0.005
        )

    def test_ht_mode(self, tm, paper_net):
        ws = paper_net.width_spec
        out = tm.ht_throughput(ws.find("lower50"), ws.find("upper50"))
        assert out.throughput_ips == pytest.approx(28.3, rel=0.005)

    def test_ha_mode(self, tm, paper_net):
        out = tm.ha_throughput(paper_net.width_spec.full())
        assert out.throughput_ips == pytest.approx(11.1, rel=0.005)


class TestStructuralProperties:
    def test_ht_is_sum_of_solos(self, tm, paper_net):
        ws = paper_net.width_spec
        lower, upper = ws.find("lower50"), ws.find("upper50")
        ht = tm.ht_throughput(lower, upper).throughput_ips
        solo_sum = (
            tm.standalone_throughput(MASTER, lower).throughput_ips
            + tm.standalone_throughput(WORKER, upper).throughput_ips
        )
        assert ht == pytest.approx(solo_sum)

    def test_ha_slower_than_lone_half_model(self, tm, paper_net):
        """Communication makes joint full-model inference slower than a lone
        50% model — the crossover the paper's HT mode exploits."""
        ws = paper_net.width_spec
        ha = tm.ha_throughput(ws.full()).throughput_ips
        solo = tm.standalone_throughput(MASTER, ws.find("lower50")).throughput_ips
        assert ha < solo

    def test_ha_breakdown_components(self, tm, paper_net):
        out = tm.ha_throughput(paper_net.width_spec.full())
        assert out.compute_master_s > 0
        assert out.compute_worker_s > 0
        assert out.comm_s > 0
        assert out.latency_s == pytest.approx(
            max(out.compute_master_s, out.compute_worker_s) + out.comm_s
        )

    def test_partitioning_beats_lone_full_model(self, tm, paper_net):
        """Width partitioning is worth doing at all: the distributed 100%
        model outruns the 100% model on a single device (even paying comm),
        which is why the paper distributes in the first place."""
        ws = paper_net.width_spec
        ha = tm.ha_throughput(ws.full()).throughput_ips
        lone_full = tm.standalone_throughput(MASTER, ws.full()).throughput_ips
        assert ha > lone_full

    def test_free_comm_strictly_improves_ha(self, tm, paper_net):
        free = CommLatencyModel(base_latency_s=0.0, bandwidth_bytes_per_s=1e12)
        tm_free = SystemThroughputModel(
            paper_net, jetson_nx_master(), jetson_nx_worker(), free
        )
        ws = paper_net.width_spec
        assert (
            tm_free.ha_throughput(ws.full()).throughput_ips
            > tm.ha_throughput(ws.full()).throughput_ips
        )


class TestPlanEvaluation:
    def test_failed_plan_zero(self, tm):
        assert tm.evaluate_plan(failed_plan("x")).throughput_ips == 0.0

    def test_solo_plan(self, tm):
        out = tm.evaluate_plan(solo_plan("master", "lower50"))
        assert out.throughput_ips == pytest.approx(14.4, rel=0.005)

    def test_ht_plan(self, tm):
        out = tm.evaluate_plan(ht_plan("lower50", "upper50"))
        assert out.throughput_ips == pytest.approx(28.3, rel=0.005)

    def test_ha_plan(self, tm):
        out = tm.evaluate_plan(ha_plan("lower100"))
        assert out.throughput_ips == pytest.approx(11.1, rel=0.005)
