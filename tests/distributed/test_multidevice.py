"""Tests for the N-device generalisation."""

import pytest

from repro.comm import CommLatencyModel
from repro.device import jetson_nx_master
from repro.distributed.multidevice import BlockPartition, MultiDeviceModel
from repro.slimmable import SlimmableConvNet, WidthSpec
from repro.utils import make_rng


@pytest.fixture(scope="module")
def quad_net():
    spec = WidthSpec(max_width=16, lower_widths=(4, 8, 12, 16), split=8, num_convs=3)
    return SlimmableConvNet(spec, rng=make_rng(0))


@pytest.fixture(scope="module")
def quad_model(quad_net):
    partition = BlockPartition.even(4, 16)
    profiles = [jetson_nx_master()] * 4
    return MultiDeviceModel(quad_net, profiles, CommLatencyModel(), partition)


class TestBlockPartition:
    def test_even_split(self):
        p = BlockPartition.even(4, 16)
        assert p.num_blocks == 4
        assert p.block_slice(0).width == 4
        assert p.block_slice(3).start == 12

    def test_uneven_boundaries(self):
        p = BlockPartition((0, 4, 16))
        assert p.num_blocks == 2
        assert p.block_slice(1).width == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockPartition((0, 16))  # one block
        with pytest.raises(ValueError):
            BlockPartition((2, 8, 16))  # does not start at 0
        with pytest.raises(ValueError):
            BlockPartition((0, 8, 8, 16))  # not strictly increasing
        with pytest.raises(ValueError):
            BlockPartition.even(3, 16)  # 16 % 3 != 0
        with pytest.raises(ValueError):
            BlockPartition.even(4, 16).block_slice(4)


class TestMultiDeviceModel:
    def test_device_count_must_match_blocks(self, quad_net):
        with pytest.raises(ValueError):
            MultiDeviceModel(
                quad_net, [jetson_nx_master()] * 3, CommLatencyModel(),
                BlockPartition.even(4, 16),
            )

    def test_ht_rates_add(self, quad_model):
        one = quad_model.ht_throughput([0])
        assert quad_model.ht_throughput([0, 1]) == pytest.approx(
            one + quad_model.ht_throughput([1])
        )
        assert quad_model.ht_throughput(range(4)) > 3 * one

    def test_ha_requires_all_devices(self, quad_model):
        assert quad_model.ha_throughput([0, 1, 2]) == 0.0
        assert quad_model.ha_throughput(range(4)) > 0.0

    def test_graceful_degradation(self, quad_model):
        """Each lost device removes exactly its stream, never the system."""
        throughputs = [
            quad_model.survivor_throughput(range(k)) for k in range(5)
        ]
        assert throughputs[0] == 0.0
        assert all(a < b for a, b in zip(throughputs, throughputs[1:]))

    def test_reliability_profile_monotone(self, quad_model):
        profile = quad_model.reliability_profile()
        assert profile[4] == 0.0
        assert all(profile[k] >= profile[k + 1] for k in range(4))
        # No single failure kills the system.
        assert profile[1] > 0.0

    def test_ht_beats_ha_in_paper_regime(self, quad_model):
        """The paper's comm-dominated regime persists at N=4: independent
        streams outrun the all-gather pipeline."""
        assert quad_model.ht_throughput(range(4)) > quad_model.ha_throughput(range(4))

    def test_two_block_case_matches_width_partition_shape(self, quad_net):
        """N=2 with even blocks reproduces the paper's two-device structure."""
        model = MultiDeviceModel(
            quad_net,
            [jetson_nx_master()] * 2,
            CommLatencyModel(),
            BlockPartition.even(2, 16),
        )
        ht = model.ht_throughput([0, 1])
        ha = model.ha_throughput([0, 1])
        solo = model.survivor_throughput([0])
        assert ht == pytest.approx(2 * solo, rel=1e-9)
        assert ha < solo < ht

    def test_alive_index_validation(self, quad_model):
        with pytest.raises(ValueError):
            quad_model.ht_throughput([5])
