"""Cross-module property-based tests (hypothesis).

These pin the invariants the reproduction rests on, over randomised
configurations rather than hand-picked cases:

* partitioned execution is exact for any split and any combined width;
* the policy never deploys an uncertified or non-resident sub-network;
* throughput-model identities (HT additivity, HA comm monotonicity);
* freeze masks really freeze, for arbitrary stage orders.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import CommLatencyModel
from repro.device import jetson_nx_master, jetson_nx_worker
from repro.distributed import (
    ExecutionMode,
    SystemThroughputModel,
    partitioned_forward_reference,
)
from repro.models import build_model
from repro.nn import SGD, SoftmaxCrossEntropy
from repro.slimmable import RegionTracker, SlimmableConvNet, paper_width_spec
from repro.utils import make_rng


@pytest.fixture(scope="module")
def shared_net():
    return SlimmableConvNet(paper_width_spec(), rng=make_rng(0))


class TestPartitionedExactness:
    @settings(max_examples=12, deadline=None)
    @given(split=st.integers(1, 15), width_idx=st.integers(0, 3), seed=st.integers(0, 100))
    def test_any_split_any_width(self, shared_net, split, width_idx, seed):
        ws = shared_net.width_spec
        width = ws.lower_widths[width_idx]
        if split >= width:
            return  # split must fall inside the combined slice
        spec = ws.lower(width)
        x = make_rng(seed).standard_normal((2, 1, 28, 28))
        view = shared_net.view(spec)
        view.train(False)
        reference = view(x)
        partitioned, _ = partitioned_forward_reference(shared_net, spec, split, x)
        np.testing.assert_allclose(partitioned, reference, atol=1e-9)


class TestPolicyInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        family=st.sampled_from(["static", "dynamic", "fluid"]),
        alive_mask=st.integers(0, 3),
        target=st.sampled_from(["accuracy", "throughput"]),
    )
    def test_plans_are_always_legal(self, family, alive_mask, target):
        from repro.runtime import AdaptationPolicy

        model = build_model(family, rng=make_rng(0))
        tm = SystemThroughputModel(
            model.net, jetson_nx_master(), jetson_nx_worker(), CommLatencyModel()
        )
        policy = AdaptationPolicy(model, tm, target=target)
        alive = frozenset(
            name for bit, name in ((1, "master"), (2, "worker")) if alive_mask & bit
        )
        plan = policy.plan(alive)

        # 1. Only alive devices are ever assigned work.
        for assignment in plan.assignments:
            assert assignment.device in alive
        # 2. Standalone assignments are certified and resident.
        for assignment in plan.assignments:
            if assignment.role == "standalone":
                assert model.is_standalone_certified(assignment.subnet)
                resident = [
                    s.name for s in policy.partition.resident_specs(assignment.device)
                ]
                assert assignment.subnet in resident
        # 3. HA plans require both devices and a certified combined model.
        if plan.mode is ExecutionMode.HIGH_ACCURACY:
            assert alive == frozenset({"master", "worker"})
            assert model.is_combined_certified(plan.combined_subnet)
        # 4. No devices -> failed.
        if not alive:
            assert plan.mode is ExecutionMode.FAILED


class TestThroughputIdentities:
    @settings(max_examples=20, deadline=None)
    @given(
        m_idx=st.integers(0, 3),
        w_idx=st.integers(0, 1),
        scale=st.floats(0.1, 10.0),
    )
    def test_ht_additivity(self, shared_net, m_idx, w_idx, scale):
        ws = shared_net.width_spec
        master_spec = ws.lower_family()[m_idx]
        worker_spec = ws.upper_family()[w_idx]
        comm = CommLatencyModel().scaled_latency(scale)
        tm = SystemThroughputModel(
            shared_net, jetson_nx_master(), jetson_nx_worker(), comm
        )
        ht = tm.ht_throughput(master_spec, worker_spec).throughput_ips
        solo_m = tm.standalone_throughput("master", master_spec).throughput_ips
        solo_w = tm.standalone_throughput("worker", worker_spec).throughput_ips
        assert ht == pytest.approx(solo_m + solo_w)

    @settings(max_examples=20, deadline=None)
    @given(factor=st.floats(1.01, 50.0))
    def test_ha_monotone_in_comm_latency(self, shared_net, factor):
        ws = shared_net.width_spec
        base_comm = CommLatencyModel()
        tm_base = SystemThroughputModel(
            shared_net, jetson_nx_master(), jetson_nx_worker(), base_comm
        )
        tm_slow = SystemThroughputModel(
            shared_net,
            jetson_nx_master(),
            jetson_nx_worker(),
            base_comm.scaled_latency(factor),
        )
        assert (
            tm_slow.ha_throughput(ws.full()).throughput_ips
            < tm_base.ha_throughput(ws.full()).throughput_ips
        )


class TestFreezeInvariant:
    @settings(max_examples=8, deadline=None)
    @given(
        stage_order=st.permutations([0, 1, 2, 3]),
        seed=st.integers(0, 50),
    )
    def test_covered_regions_never_move(self, stage_order, seed):
        """For any order of lower-family stages: once a stage's region is
        marked covered, later stages' optimisation steps never change it."""
        rng = make_rng(seed)
        net = SlimmableConvNet(paper_width_spec(), rng=make_rng(1))
        tracker = RegionTracker()
        loss_fn = SoftmaxCrossEntropy()
        x = rng.standard_normal((8, 1, 28, 28))
        y = rng.integers(0, 10, 8)
        specs = [net.width_spec.lower_family()[i] for i in stage_order]

        snapshots = []
        for spec in specs:
            net.apply_freeze(spec, tracker)
            view = net.view(spec)
            opt = SGD(view.parameters(), lr=0.1, momentum=0.9)
            for _ in range(2):
                logits = view(x)
                _, grad = loss_fn(logits, y)
                opt.zero_grad()
                view.backward(grad)
                opt.step()
            # Check every previously covered region is bit-identical.
            for params_snapshot, covered_snapshot in snapshots:
                for pid, (data, covered) in params_snapshot.items():
                    current = covered_snapshot[pid]
                    np.testing.assert_array_equal(
                        current.data * covered, data * covered
                    )
            for param, region in net.region_masks(spec):
                tracker.mark(param, region)
            snapshot = {
                id(p): (p.data.copy(), tracker.covered(p).copy())
                for p in net.parameters()
            }
            snapshots.append((snapshot, {id(p): p for p in net.parameters()}))
