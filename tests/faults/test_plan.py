"""Fault plans: validation, ordering, liveness, serialization, chaos seeds."""

import pytest

from repro.faults.plan import (
    CRASH,
    DROP,
    FAULT_KINDS,
    HEARTBEAT_DELAY,
    RECOVER,
    STALL,
    FaultEvent,
    FaultPlan,
    chaos_plan,
    replica_target,
    single_fault,
    target_index,
)


class TestTargets:
    def test_replica_target_round_trips(self):
        assert target_index(replica_target(3)) == 3

    def test_non_replica_target_raises(self):
        for bad in ("device:0", "replica", "replica:x", "worker:1"):
            with pytest.raises(ValueError):
                target_index(bad)

    def test_device_alias_property(self):
        event = FaultEvent(1.0, "gpu:0", CRASH)
        assert event.device == event.target == "gpu:0"


class TestFaultEvent:
    def test_defaults(self):
        event = FaultEvent(0.5, replica_target(0))
        assert event.kind == CRASH
        assert event.duration_s == 0.0 and event.delay_s == 0.0 and event.count == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(-0.1, "replica:0")
        with pytest.raises(ValueError):
            FaultEvent(0.0, "replica:0", "explode")
        with pytest.raises(ValueError):
            FaultEvent(0.0, "replica:0", STALL, duration_s=-1.0)
        with pytest.raises(ValueError):
            FaultEvent(0.0, "replica:0", STALL, delay_s=-1.0)
        with pytest.raises(ValueError):
            FaultEvent(0.0, "replica:0", count=0)

    def test_json_omits_default_knobs(self):
        assert FaultEvent(1.0, "replica:0").to_json() == {
            "time_s": 1.0, "target": "replica:0", "kind": CRASH,
        }

    def test_json_round_trip_preserves_every_knob(self):
        event = FaultEvent(0.4, "replica:2", STALL, duration_s=0.2, delay_s=0.01, count=3)
        assert FaultEvent.from_json(event.to_json()) == event

    def test_from_json_defaults_kind_to_crash(self):
        assert FaultEvent.from_json({"time_s": 1.0, "target": "replica:0"}).kind == CRASH


class TestFaultPlan:
    def test_events_are_time_ordered(self):
        plan = FaultPlan([
            FaultEvent(2.0, "replica:0"),
            FaultEvent(1.0, "replica:1"),
        ])
        assert [e.time_s for e in plan.events] == [1.0, 2.0]
        plan.add(FaultEvent(0.5, "replica:2"))
        assert [e.time_s for e in plan.events] == [0.5, 1.0, 2.0]

    def test_is_alive_applies_event_at_query_time(self):
        plan = single_fault("replica:0", at_s=5.0)
        assert plan.is_alive("replica:0", 4.99)
        assert not plan.is_alive("replica:0", 5.0)  # crash lands *at* t
        assert plan.is_alive("replica:1", 5.0)

    def test_recover_restores_liveness(self):
        plan = FaultPlan([
            FaultEvent(1.0, "replica:0", CRASH),
            FaultEvent(2.0, "replica:0", RECOVER),
        ])
        assert not plan.is_alive("replica:0", 1.5)
        assert plan.is_alive("replica:0", 2.0)

    def test_window_faults_do_not_affect_liveness(self):
        plan = FaultPlan([FaultEvent(1.0, "replica:0", STALL, duration_s=1.0)])
        assert plan.is_alive("replica:0", 1.5)

    def test_crash_time_and_of_kind_and_targets(self):
        plan = FaultPlan([
            FaultEvent(0.3, "replica:1", STALL, duration_s=0.1),
            FaultEvent(0.5, "replica:0", CRASH),
        ])
        assert plan.crash_time("replica:0") == 0.5
        assert plan.crash_time("replica:1") is None
        assert [e.kind for e in plan.of_kind(CRASH)] == [CRASH]
        assert plan.targets() == ("replica:1", "replica:0")

    def test_plan_json_round_trip(self):
        plan = FaultPlan([
            FaultEvent(0.35, "replica:1", CRASH),
            FaultEvent(0.45, "replica:3", STALL, duration_s=0.25, delay_s=0.02),
        ])
        again = FaultPlan.from_json(plan.to_json())
        assert again.events == plan.events

    def test_bool_and_len(self):
        assert not FaultPlan([]) and len(FaultPlan([])) == 0
        assert single_fault("replica:0") and len(single_fault("replica:0")) == 1


class TestChaosPlan:
    def test_same_seed_same_incident(self):
        kwargs = dict(replicas=4, duration_s=2.0, crashes=2, stalls=1, drops=1)
        a = chaos_plan(7, **kwargs)
        b = chaos_plan(7, **kwargs)
        assert a.to_json() == b.to_json()
        assert chaos_plan(8, **kwargs).to_json() != a.to_json()

    def test_crashes_capped_to_leave_a_survivor(self):
        plan = chaos_plan(0, replicas=3, duration_s=1.0, crashes=10)
        assert len(plan.of_kind(CRASH)) == 2

    def test_never_crashes_the_same_replica_twice(self):
        plan = chaos_plan(3, replicas=5, duration_s=1.0, crashes=4)
        crashed = [e.target for e in plan.of_kind(CRASH)]
        assert len(crashed) == len(set(crashed)) == 4

    def test_times_land_inside_the_window(self):
        plan = chaos_plan(
            1, replicas=4, duration_s=10.0, crashes=2, stalls=2,
            drops=2, heartbeat_delays=2, window=(0.25, 0.75),
        )
        assert all(2.5 <= e.time_s <= 7.5 for e in plan.events)
        kinds = {e.kind for e in plan.events}
        assert kinds == {CRASH, STALL, DROP, HEARTBEAT_DELAY}

    def test_validation(self):
        with pytest.raises(ValueError):
            chaos_plan(0, replicas=0, duration_s=1.0)
        with pytest.raises(ValueError):
            chaos_plan(0, replicas=2, duration_s=1.0, window=(0.9, 0.1))


def test_fault_kinds_are_closed_vocabulary():
    assert set(FAULT_KINDS) == {
        CRASH, RECOVER, STALL, DROP, HEARTBEAT_DELAY, "shm_attach_fail",
    }
