"""Fault injector: every handler lands at a real seam and unwinds cleanly.

Events are fired synchronously (``injector.fire``) against a
thread-backend frontend so nothing here depends on timer scheduling;
one test exercises the timer path with a generous wait.
"""

import time

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CRASH,
    DROP,
    HEARTBEAT_DELAY,
    RECOVER,
    SHM_ATTACH_FAIL,
    STALL,
    FaultEvent,
    FaultPlan,
    replica_target,
)
from repro.models import build_model
from repro.scheduler import SchedulerConfig, ServingFrontend
from repro.scheduler.pool import ReplicaUnavailable
from repro.utils import make_rng


@pytest.fixture(scope="module")
def model():
    return build_model("fluid", rng=make_rng(0))


@pytest.fixture
def frontend(model):
    with ServingFrontend(model, SchedulerConfig(replicas=2, warmup=False)) as fe:
        yield fe


def one_image(seed=1):
    return make_rng(seed).standard_normal((1, 1, 28, 28))


def injector_for(frontend, *events):
    return FaultInjector(frontend, FaultPlan(list(events)))


class TestCrashAndRecover:
    def test_crash_kills_the_target(self, frontend):
        inj = injector_for(frontend, FaultEvent(0.0, replica_target(0), CRASH))
        inj.fire(inj.plan.events[0])
        assert not frontend.pool.replicas[0].alive
        counters = frontend.metrics.snapshot()["counters"]
        assert counters["faults.injected"] == 1
        assert counters["faults.crash"] == 1

    def test_recover_revives_and_rebinds_the_monitor(self, frontend):
        pool = frontend.pool
        pool.replicas[0].kill()
        pool.report_failure(pool.replicas[0])
        assert pool.monitors[0].declared_dead
        inj = injector_for(frontend, FaultEvent(0.0, replica_target(0), RECOVER))
        inj.fire(inj.plan.events[0])
        assert pool.replicas[0].alive
        assert not pool.monitors[0].declared_dead


class TestStall:
    def test_stall_wraps_run_parts_and_delays(self, frontend):
        replica = frontend.pool.replicas[0]
        inj = injector_for(
            frontend,
            FaultEvent(0.0, replica_target(0), STALL, duration_s=30.0, delay_s=0.05),
        )
        inj.fire(inj.plan.events[0])
        started = time.monotonic()
        out = replica.run_parts([one_image()], "lower25")
        assert time.monotonic() - started >= 0.05
        assert out.shape == (1, 10)
        inj.stop()
        # The wrapper is gone: the same call is fast again.
        started = time.monotonic()
        replica.run_parts([one_image()], "lower25")
        assert time.monotonic() - started < 0.05


class TestDrop:
    def test_drop_on_thread_replica_raises_transiently(self, frontend):
        replica = frontend.pool.replicas[1]
        inj = injector_for(
            frontend,
            FaultEvent(0.0, replica_target(1), DROP, duration_s=0.05),
        )
        inj.fire(inj.plan.events[0])
        with pytest.raises(ReplicaUnavailable):
            replica.run_parts([one_image()], "lower25")
        time.sleep(0.08)  # window over: the wrapper delegates again
        assert replica.run_parts([one_image()], "lower25").shape == (1, 10)
        inj.stop()

    def test_stop_unwinds_an_open_drop_window(self, frontend):
        replica = frontend.pool.replicas[1]
        inj = injector_for(
            frontend,
            FaultEvent(0.0, replica_target(1), DROP, duration_s=30.0),
        )
        inj.fire(inj.plan.events[0])
        inj.stop()
        assert replica.run_parts([one_image()], "lower25").shape == (1, 10)


class TestHeartbeatDelay:
    def test_heartbeats_go_dark_while_serving_continues(self, frontend):
        monitor = frontend.pool.monitors[0]
        inj = injector_for(
            frontend,
            FaultEvent(0.0, replica_target(0), HEARTBEAT_DELAY, duration_s=30.0),
        )
        inj.fire(inj.plan.events[0])
        assert monitor.ping_fn() is False
        # The replica itself is fine — only its heartbeat view is dark.
        assert frontend.pool.replicas[0].alive
        inj.stop()
        assert monitor.ping_fn() is True

    def test_restore_never_clobbers_a_rebound_monitor(self, frontend):
        monitor = frontend.pool.monitors[0]
        inj = injector_for(
            frontend,
            FaultEvent(0.0, replica_target(0), HEARTBEAT_DELAY, duration_s=30.0),
        )
        inj.fire(inj.plan.events[0])
        # A supervisor respawn rebinds the monitor inside the window ...
        fresh_ping = lambda: True  # noqa: E731
        monitor.rebind(fresh_ping)
        inj.stop()
        # ... and stop() must leave that rebinding alone.
        assert monitor.ping_fn is fresh_ping


class TestShmAttachFail:
    def test_poisons_exactly_count_spawn_attempts_for_the_target(self, frontend):
        pool = frontend.pool
        inj = injector_for(
            frontend,
            FaultEvent(0.0, replica_target(0), SHM_ATTACH_FAIL, count=2),
        )
        inj.fire(inj.plan.events[0])
        for _ in range(2):
            with pytest.raises(RuntimeError, match="shm attach failed"):
                pool.spawn_replica(0)
        # Other slots are unaffected even while the budget is live.
        assert pool.spawn_replica(1) is pool.replicas[1]
        # Budget spent: the target spawns fine again.
        assert pool.spawn_replica(0) is pool.replicas[0]
        inj.stop()


class TestLifecycle:
    def test_start_twice_raises(self, frontend):
        inj = injector_for(frontend)
        inj.start()
        with pytest.raises(RuntimeError):
            inj.start()
        inj.stop()

    def test_timer_path_fires_scripted_events(self, frontend):
        inj = injector_for(frontend, FaultEvent(0.0, replica_target(0), CRASH))
        inj.start()
        deadline = time.monotonic() + 5.0
        while frontend.pool.replicas[0].alive and time.monotonic() < deadline:
            time.sleep(0.005)
        assert not frontend.pool.replicas[0].alive
        inj.stop()

    def test_stop_cancels_pending_events(self, frontend):
        inj = injector_for(frontend, FaultEvent(30.0, replica_target(0), CRASH))
        inj.start()
        inj.stop()
        time.sleep(0.02)
        assert frontend.pool.replicas[0].alive

    def test_context_manager_arms_and_unwinds(self, frontend):
        event = FaultEvent(30.0, replica_target(0), CRASH)
        with injector_for(frontend, event):
            pass  # exit cancels the pending timer
        time.sleep(0.02)
        assert frontend.pool.replicas[0].alive
