"""Degradation policies: retry backoff arithmetic, brown-out hysteresis."""

import pytest

from repro.faults.policy import (
    BrownoutController,
    BrownoutPolicy,
    BrownoutShed,
    RetryExhausted,
    RetryPolicy,
)
from repro.scheduler.admission import CRITICAL_PRIORITY, AdmissionRejected
from repro.scheduler.pool import ReplicaUnavailable
from repro.scheduler.telemetry import MetricsRegistry


class TestExceptionHierarchy:
    def test_retry_exhausted_is_replica_unavailable(self):
        assert issubclass(RetryExhausted, ReplicaUnavailable)

    def test_brownout_shed_is_admission_rejected(self):
        assert issubclass(BrownoutShed, AdmissionRejected)


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(backoff_base_s=0.01, backoff_factor=2.0, backoff_max_s=0.03)
        assert policy.backoff_s(1) == pytest.approx(0.01)
        assert policy.backoff_s(2) == pytest.approx(0.02)
        assert policy.backoff_s(3) == pytest.approx(0.03)  # capped
        assert policy.backoff_s(10) == pytest.approx(0.03)

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_s(0)

    def test_gives_up_past_max_retries(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.delay_for(2, remaining_s=10.0) is not None
        assert policy.delay_for(3, remaining_s=10.0) is None

    def test_gives_up_with_no_deadline_budget(self):
        assert RetryPolicy().delay_for(1, remaining_s=0.0) is None
        assert RetryPolicy().delay_for(1, remaining_s=-1.0) is None

    def test_delay_never_exceeds_remaining_budget(self):
        policy = RetryPolicy(backoff_base_s=0.05, backoff_max_s=0.05)
        assert policy.delay_for(1, remaining_s=0.01) == pytest.approx(0.01)

    def test_critical_never_gives_up_but_still_backs_off(self):
        policy = RetryPolicy(max_retries=0, backoff_base_s=0.01)
        assert policy.delay_for(5, remaining_s=-1.0, critical=True) == pytest.approx(
            policy.backoff_s(5)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


class TestBrownoutPolicy:
    def test_exit_thresholds_must_sit_below_enter(self):
        with pytest.raises(ValueError):
            BrownoutPolicy(enter_queue_depth=8, exit_queue_depth=9)
        with pytest.raises(ValueError):
            BrownoutPolicy(enter_miss_rate=0.3, exit_miss_rate=0.4)
        with pytest.raises(ValueError):
            BrownoutPolicy(min_dwell_s=-1.0)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def controller(**policy_kwargs):
    clock = FakeClock()
    policy = BrownoutPolicy(
        enter_queue_depth=10, enter_miss_rate=0.5,
        exit_queue_depth=2, exit_miss_rate=0.1, min_dwell_s=1.0,
        **policy_kwargs,
    )
    return BrownoutController(policy, metrics=MetricsRegistry(), clock=clock), clock


class TestBrownoutController:
    def test_enters_on_queue_depth(self):
        ctl, _ = controller()
        assert not ctl.update(9, 0.0)
        assert ctl.update(10, 0.0)
        assert ctl.engaged

    def test_enters_on_miss_rate_alone(self):
        ctl, _ = controller()
        assert ctl.update(0, 0.5)

    def test_none_miss_rate_reads_as_zero(self):
        ctl, _ = controller()
        assert not ctl.update(0, None)

    def test_exit_needs_both_signals_low_and_dwell(self):
        ctl, clock = controller()
        assert ctl.update(10, 0.0)
        clock.now = 2.0  # dwell satisfied
        assert ctl.update(3, 0.0)   # depth still above exit threshold
        assert ctl.update(2, 0.2)   # miss still above exit threshold
        assert not ctl.update(2, 0.1)  # both low: disengage

    def test_exit_waits_out_the_dwell(self):
        ctl, clock = controller()
        ctl.update(10, 0.0)
        clock.now = 0.5  # below min_dwell_s=1.0
        assert ctl.update(0, 0.0)
        clock.now = 1.0
        assert not ctl.update(0, 0.0)

    def test_transitions_count_once(self):
        ctl, clock = controller()
        ctl.update(10, 0.0)
        ctl.update(10, 0.0)  # still engaged: no second enter
        clock.now = 2.0
        ctl.update(0, 0.0)
        status = ctl.status()
        assert status["enters"] == 1 and status["exits"] == 1
        assert not status["engaged"]

    def test_should_shed_spares_critical(self):
        ctl, _ = controller()
        ctl.update(10, 0.0)
        assert ctl.should_shed(0)
        assert not ctl.should_shed(CRITICAL_PRIORITY)

    def test_disengaged_never_sheds(self):
        ctl, _ = controller()
        assert not ctl.should_shed(0)

    def test_status_shape(self):
        ctl, _ = controller()
        assert set(ctl.status()) == {"engaged", "enters", "exits", "sheds", "clamps"}
