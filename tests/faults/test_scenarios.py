"""Faulty scenario zoo + fault-aware simulation/replay round trips."""

import pytest

from repro.faults.plan import CRASH, FaultEvent, FaultPlan, single_fault
from repro.faults.scenarios import (
    FAULTY_REPLICAS,
    FAULTY_SCENARIOS,
    faulty_replayer,
    get_faulty,
)
from repro.models import build_model
from repro.scheduler.frontend import SchedulerConfig
from repro.trace.recorder import FAULTS_META_KEY, LOST, TraceRecorder
from repro.trace.scenarios import (
    EXTRA_SCENARIOS,
    SCENARIOS,
    TraceSpec,
    get_scenario,
    register_scenario,
)
from repro.trace.replay import TraceReplayer
from repro.utils import make_rng


@pytest.fixture(scope="module")
def model():
    return build_model("fluid", rng=make_rng(0))


class TestRegistry:
    def test_faulty_variants_register_outside_the_pinned_zoo(self):
        for name in FAULTY_SCENARIOS:
            assert name in EXTRA_SCENARIOS
            assert name not in SCENARIOS  # pinned corpus is untouched
            assert get_scenario(name) is EXTRA_SCENARIOS[name]

    def test_register_scenario_rejects_pinned_names(self):
        pinned = next(iter(SCENARIOS))
        with pytest.raises(ValueError, match="pinned"):
            register_scenario(TraceSpec(pinned, "bursts", seed=99))

    def test_register_scenario_is_idempotent_for_equal_specs(self):
        spec = EXTRA_SCENARIOS["bursts_faulty"]
        register_scenario(spec)  # no-op, no error
        with pytest.raises(ValueError):
            register_scenario(TraceSpec("bursts_faulty", "bursts", seed=77))

    def test_get_faulty_unknown_name(self):
        with pytest.raises(KeyError, match="unknown faulty scenario"):
            get_faulty("nope")

    def test_faulty_seeds_are_distinct_from_the_pinned_generators(self):
        for scenario in FAULTY_SCENARIOS.values():
            base = SCENARIOS[scenario.trace.generator]
            assert scenario.trace.seed != base.seed

    def test_meta_carries_the_plan_and_replica_count(self):
        scenario = get_faulty("bursts_faulty")
        meta = scenario.meta()
        assert meta["replicas"] == FAULTY_REPLICAS
        plan = FaultPlan.from_json(meta["faults"])
        assert plan.events == scenario.faults.events


class TestReplayerPlumbing:
    def test_faulty_replayer_attaches_the_plan(self):
        replayer = faulty_replayer("bursts_faulty")
        assert replayer.faults is get_faulty("bursts_faulty").faults
        assert replayer.meta[FAULTS_META_KEY] == replayer.faults.to_json()

    def test_plan_is_recovered_from_artifact_meta(self):
        plan = single_fault("replica:1", at_s=0.2)
        replayer = TraceReplayer(
            [], name="t", duration_s=1.0, meta={FAULTS_META_KEY: plan.to_json()}
        )
        assert replayer.faults is not None
        assert replayer.faults.events == plan.events

    def test_explicit_plan_wins_over_meta(self):
        meta_plan = single_fault("replica:1")
        arg_plan = single_fault("replica:0")
        replayer = TraceReplayer(
            [], name="t", duration_s=1.0,
            meta={FAULTS_META_KEY: meta_plan.to_json()}, faults=arg_plan,
        )
        assert replayer.faults is arg_plan


class TestFaultySimulation:
    def test_sim_with_faults_is_byte_deterministic(self, model):
        outputs = []
        for _ in range(2):
            replayer = faulty_replayer("bursts_faulty")
            recorder = TraceRecorder(kind="simulated", meta=replayer.meta)
            replayer.simulate(
                model,
                SchedulerConfig(replicas=FAULTY_REPLICAS, warmup=False),
                recorder=recorder,
            )
            outputs.append(recorder.dumps())
        assert outputs[0] == outputs[1]

    def test_acceptance_incident_loses_zero_requests_in_sim(self, model):
        replayer = faulty_replayer("bursts_faulty")
        result = replayer.simulate(
            model, SchedulerConfig(replicas=FAULTY_REPLICAS, warmup=False)
        )
        assert result["lost"] == 0
        assert result["params"]["faults"] == replayer.faults.to_json()

    def test_sim_records_the_plan_into_artifact_meta(self, model):
        replayer = faulty_replayer("multi_tenant_faulty")
        recorder = TraceRecorder(kind="simulated")
        replayer.simulate(
            model,
            SchedulerConfig(replicas=FAULTY_REPLICAS, warmup=False),
            recorder=recorder,
        )
        assert recorder.meta[FAULTS_META_KEY] == replayer.faults.to_json()

    def test_crash_reduces_goodput_versus_clean_run(self, model):
        """A crash takes capacity: the faulty run can't beat the clean one."""
        config = SchedulerConfig(replicas=2, warmup=False)
        clean = faulty_replayer("bursts_faulty")
        clean.faults = None
        base = clean.simulate(model, config)
        faulty = faulty_replayer("bursts_faulty").simulate(
            model, config, fault_plan=single_fault("replica:0", at_s=0.1)
        )
        assert (
            faulty["outcomes"]["ok"] <= base["outcomes"]["ok"]
        )

    def test_non_replica_targets_are_ignored_by_the_sim(self, model):
        plan = FaultPlan([FaultEvent(0.1, "device:0", CRASH)])
        replayer = faulty_replayer("bursts_faulty")
        result = replayer.simulate(
            model,
            SchedulerConfig(replicas=FAULTY_REPLICAS, warmup=False),
            fault_plan=plan,
        )
        assert result["lost"] == 0

    def test_fault_free_sim_is_unchanged_by_the_fault_machinery(self, model):
        """Pinned-corpus protection: no plan means bit-identical behaviour."""
        spec = SCENARIOS["diurnal"]
        config = SchedulerConfig(replicas=2, warmup=False)
        a = TraceReplayer.from_scenario(spec).simulate(model, config)
        b = TraceReplayer.from_scenario(spec).simulate(model, config)
        assert a["records"] == b["records"]
        assert a["params"]["faults"] is None
