"""Replica supervisor: respawn, backoff, restart budget, warmup hygiene.

``poll()`` is driven directly with a fake clock so nothing here depends
on the supervision thread's timing; one end-to-end test runs the real
loop against a supervised frontend.
"""

import time

import pytest

from repro.faults.supervisor import ReplicaSupervisor
from repro.models import build_model
from repro.scheduler import SLA, SchedulerConfig, ServingFrontend
from repro.utils import make_rng
from repro.utils.config import Config


@pytest.fixture(scope="module")
def model():
    return build_model("fluid", rng=make_rng(0))


@pytest.fixture
def frontend(model):
    with ServingFrontend(model, SchedulerConfig(replicas=2, warmup=False)) as fe:
        yield fe


def one_image(seed=1):
    return make_rng(seed).standard_normal((1, 1, 28, 28))


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def eject(frontend, index):
    replica = frontend.pool.replicas[index]
    replica.kill()
    frontend.pool.report_failure(replica)
    assert frontend.pool.monitors[index].declared_dead


class TestRespawn:
    def test_poll_revives_an_ejected_replica(self, frontend):
        sup = ReplicaSupervisor(frontend, clock=FakeClock())
        eject(frontend, 0)
        assert [r.index for r in frontend.pool.healthy()] == [1]
        sup.poll()
        assert [r.index for r in frontend.pool.healthy()] == [0, 1]
        assert frontend.pool.replicas[0].alive
        assert not frontend.pool.monitors[0].declared_dead
        assert frontend.metrics.counter("supervisor.respawns").value == 1
        assert sup.status()["down"] == []

    def test_healthy_pool_is_left_alone(self, frontend):
        sup = ReplicaSupervisor(frontend, clock=FakeClock())
        sup.poll()
        assert frontend.metrics.counter("supervisor.respawns").value == 0

    def test_respawned_replica_serves_again(self, frontend):
        sup = ReplicaSupervisor(frontend, clock=FakeClock())
        eject(frontend, 0)
        sup.poll()
        out = frontend.pool.replicas[0].run(one_image(), "lower25")
        assert out.shape == (1, 10)

    def test_untimed_warmup_never_feeds_the_width_ewmas(self, frontend):
        """Satellite acceptance: a revived replica re-enters routing with
        sane EWMAs — a fresh worker's cold forwards must not be observed
        into the width policy's latency calibration."""
        before = {
            w: s["observed_ewma_s"]
            for w, s in frontend.policy.calibration_snapshot().items()
        }
        sup = ReplicaSupervisor(frontend, clock=FakeClock(), warmup=True)
        eject(frontend, 1)
        sup.poll()
        after = {
            w: s["observed_ewma_s"]
            for w, s in frontend.policy.calibration_snapshot().items()
        }
        assert after == before

    def test_trace_event_emitted_per_respawn(self, model):
        from repro.trace import Tracer
        from repro.trace.tracer import EVENT_RESPAWN

        tracer = Tracer(sampling=1.0)
        with ServingFrontend(
            model, SchedulerConfig(replicas=2, warmup=False), tracer=tracer
        ) as fe:
            sup = ReplicaSupervisor(fe, clock=FakeClock())
            eject(fe, 0)
            sup.poll()
            events = [e for e in tracer.events() if e.kind == EVENT_RESPAWN]
        assert len(events) == 1 and events[0].data["replica"] == 0


class TestBackoff:
    def test_failed_respawn_backs_off_before_retrying(self, frontend):
        clock = FakeClock()
        sup = ReplicaSupervisor(
            frontend, clock=clock, backoff_base_s=0.5, backoff_max_s=2.0, jitter=0.0
        )
        eject(frontend, 0)
        boom = lambda index: (_ for _ in ()).throw(RuntimeError("attach failed"))  # noqa: E731
        frontend.pool.spawn_replica = boom
        sup.poll()
        assert frontend.metrics.counter("supervisor.respawn_failures").value == 1
        sup.poll()  # clock unchanged: still inside the backoff window
        assert frontend.metrics.counter("supervisor.respawn_failures").value == 1
        clock.now = 0.6  # past base backoff: second attempt fires
        sup.poll()
        assert frontend.metrics.counter("supervisor.respawn_failures").value == 2
        del frontend.pool.spawn_replica  # restore the bound method
        clock.now = 5.0
        sup.poll()
        assert frontend.metrics.counter("supervisor.respawns").value == 1
        assert frontend.pool.replicas[0].alive

    def test_jitter_is_seed_deterministic(self, frontend):
        a = ReplicaSupervisor(frontend, seed=3)
        b = ReplicaSupervisor(frontend, seed=3)
        assert [float(a._rng.random()) for _ in range(4)] == [
            float(b._rng.random()) for _ in range(4)
        ]

    def test_knob_validation(self, frontend):
        with pytest.raises(ValueError):
            ReplicaSupervisor(frontend, backoff_base_s=-1.0)
        with pytest.raises(ValueError):
            ReplicaSupervisor(frontend, backoff_factor=0.5)
        with pytest.raises(ValueError):
            ReplicaSupervisor(frontend, jitter=1.0)
        with pytest.raises(ValueError):
            ReplicaSupervisor(frontend, restart_budget=0)


class TestRestartBudget:
    def test_flapping_replica_trips_the_circuit_breaker(self, frontend):
        clock = FakeClock()
        sup = ReplicaSupervisor(
            frontend, clock=clock, restart_budget=1, budget_window_s=100.0
        )
        eject(frontend, 0)
        sup.poll()  # first death: respawned
        assert frontend.pool.replicas[0].alive
        clock.now = 1.0
        eject(frontend, 0)
        sup.poll()  # second death inside the window: budget exhausted
        assert not frontend.pool.replicas[0].alive
        assert sup.status()["gave_up"] == [0]
        assert frontend.metrics.counter("supervisor.gave_up").value == 1
        clock.now = 2.0
        sup.poll()  # gave-up slots are never retried
        assert not frontend.pool.replicas[0].alive
        assert frontend.metrics.counter("supervisor.respawns").value == 1

    def test_deaths_outside_the_window_are_forgiven(self, frontend):
        clock = FakeClock()
        sup = ReplicaSupervisor(
            frontend, clock=clock, restart_budget=1, budget_window_s=10.0
        )
        eject(frontend, 0)
        sup.poll()
        clock.now = 50.0  # first death ages out of the sliding window
        eject(frontend, 0)
        sup.poll()
        assert frontend.pool.replicas[0].alive
        assert sup.status()["gave_up"] == []
        assert frontend.metrics.counter("supervisor.respawns").value == 2


class TestLifecycle:
    def test_start_twice_raises_and_close_is_idempotent(self, frontend):
        sup = ReplicaSupervisor(frontend)
        sup.start()
        with pytest.raises(RuntimeError):
            sup.start()
        sup.close()
        sup.close()

    def test_status_shape(self, frontend):
        sup = ReplicaSupervisor(frontend)
        assert set(sup.status()) == {"respawns", "respawn_failures", "gave_up", "down"}


class TestSupervisedFrontend:
    def test_supervised_frontend_heals_and_keeps_serving(self, model):
        frontend = ServingFrontend(
            model,
            SchedulerConfig(replicas=2, warmup=False, supervise=True),
            heartbeat_config=Config({"heartbeat_interval_s": 0.005}),
        )
        try:
            assert frontend.supervisor is not None
            frontend.pool.replicas[0].kill()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if (
                    len(frontend.pool.healthy()) == 2
                    and frontend.pool.replicas[0].alive
                ):
                    break
                time.sleep(0.005)
            assert len(frontend.pool.healthy()) == 2
            assert frontend.metrics.counter("supervisor.respawns").value >= 1
            out = frontend.submit(one_image(), SLA(deadline_s=5.0)).result(timeout=10.0)
            assert out.shape == (1, 10)
            report = frontend.report()
            assert report["supervisor"]["respawns"] >= 1
        finally:
            frontend.close()

    def test_unsupervised_frontend_has_no_supervisor(self, frontend):
        assert frontend.supervisor is None
        assert "supervisor" not in frontend.report()
