"""Frontend degradation paths: brown-out, bounded retries, failure causes."""

import pytest

from repro.faults.policy import BrownoutPolicy, BrownoutShed, RetryExhausted, RetryPolicy
from repro.models import build_model
from repro.scheduler import SLA, SchedulerConfig, ServingFrontend
from repro.scheduler.admission import CRITICAL_PRIORITY
from repro.utils import make_rng


@pytest.fixture(scope="module")
def model():
    return build_model("fluid", rng=make_rng(0))


def one_image(seed=1):
    return make_rng(seed).standard_normal((1, 1, 28, 28))


def make_frontend(model, **overrides):
    defaults = dict(replicas=2, warmup=False)
    defaults.update(overrides)
    return ServingFrontend(model, SchedulerConfig(**defaults))


def always_on_brownout(**overrides):
    """A policy that engages on the very first submit (depth 0 >= 0)."""
    defaults = dict(
        enter_queue_depth=0, exit_queue_depth=0,
        enter_miss_rate=0.5, exit_miss_rate=0.2,
        min_dwell_s=1000.0,
    )
    defaults.update(overrides)
    return BrownoutPolicy(**defaults)


class TestBrownout:
    def test_low_priority_admissions_are_shed(self, model):
        with make_frontend(model, brownout=always_on_brownout()) as frontend:
            future = frontend.submit(one_image(), SLA(deadline_s=5.0))
            with pytest.raises(BrownoutShed):
                future.result(timeout=5.0)
            counters = frontend.metrics.snapshot()["counters"]
            assert counters["frontend.brownout_sheds"] == 1
            assert counters["frontend.brownout_enters"] == 1
            assert counters["frontend.failures.brownout_shed"] == 1
            assert counters.get("frontend.completed", 0) == 0

    def test_critical_priority_is_served_with_clamped_width(self, model):
        with make_frontend(model, brownout=always_on_brownout()) as frontend:
            sla = SLA(deadline_s=5.0, priority=CRITICAL_PRIORITY)
            out = frontend.submit(one_image(), sla).result(timeout=10.0)
            assert out.shape == (1, 10)
            counters = frontend.metrics.snapshot()["counters"]
            assert counters["frontend.brownout_clamped"] == 1
            # The clamp serves the narrowest certified slice.
            assert counters["frontend.width.lower25"] == 1

    def test_clamp_respects_the_sla_width_floor(self, model):
        with make_frontend(model, brownout=always_on_brownout()) as frontend:
            sla = SLA(
                deadline_s=5.0, priority=CRITICAL_PRIORITY, min_width="lower75"
            )
            frontend.submit(one_image(), sla).result(timeout=10.0)
            counters = frontend.metrics.snapshot()["counters"]
            assert counters["frontend.width.lower75"] == 1

    def test_clamping_can_be_disabled(self, model):
        policy = always_on_brownout(clamp_width=False)
        with make_frontend(model, brownout=policy) as frontend:
            sla = SLA(deadline_s=60.0, priority=CRITICAL_PRIORITY)
            frontend.submit(one_image(), sla).result(timeout=10.0)
            counters = frontend.metrics.snapshot()["counters"]
            assert counters.get("frontend.brownout_clamped", 0) == 0
            assert counters["frontend.width.lower100"] == 1

    def test_shed_never_feeds_the_miss_ewma(self, model):
        """Shedding must not keep brown-out engaged via its own signal."""
        with make_frontend(model, brownout=always_on_brownout()) as frontend:
            for i in range(5):
                with pytest.raises(BrownoutShed):
                    frontend.submit(one_image(i), SLA(deadline_s=5.0)).result(5.0)
            assert frontend.metrics.ewma("frontend.miss_rate").value is None

    def test_report_has_a_brownout_section(self, model):
        with make_frontend(model, brownout=always_on_brownout()) as frontend:
            with pytest.raises(BrownoutShed):
                frontend.submit(one_image(), SLA(deadline_s=5.0)).result(5.0)
            status = frontend.report()["brownout"]
            assert status["engaged"] and status["sheds"] == 1

    def test_no_brownout_by_default(self, model):
        with make_frontend(model) as frontend:
            assert frontend.brownout is None
            assert "brownout" not in frontend.report()


class TestRetryPolicyIntegration:
    def test_exhausted_retries_fail_with_retry_exhausted(self, model):
        """Both replicas dark + zero retry budget: the reroute gives up."""
        with make_frontend(
            model, retry_policy=RetryPolicy(max_retries=0)
        ) as frontend:
            for replica in frontend.pool.replicas:
                replica.kill()
            future = frontend.submit(one_image(), SLA(deadline_s=5.0))
            with pytest.raises(RetryExhausted):
                future.result(timeout=10.0)
            counters = frontend.metrics.snapshot()["counters"]
            assert counters["frontend.failures.retry_exhausted"] == 1
            assert counters.get("frontend.retries", 0) == 0

    def test_bounded_retry_still_reroutes_within_budget(self, model):
        with make_frontend(
            model, retry_policy=RetryPolicy(max_retries=3, backoff_base_s=0.001)
        ) as frontend:
            # Pin routing to the dead replica: the survivor looks loaded.
            frontend.pool.replicas[0].kill()
            frontend.pool.replicas[1].begin()
            future = frontend.submit(one_image(), SLA(deadline_s=30.0))
            frontend.pool.replicas[1].finish()
            assert future.result(timeout=30.0).shape == (1, 10)
            counters = frontend.metrics.snapshot()["counters"]
            assert counters["frontend.retries"] >= 1
            assert counters["frontend.reroutes"] >= 1

    def test_critical_requests_survive_a_zero_retry_budget(self, model):
        with make_frontend(
            model, retry_policy=RetryPolicy(max_retries=0, backoff_base_s=0.001)
        ) as frontend:
            frontend.pool.replicas[0].kill()
            frontend.pool.replicas[1].begin()
            sla = SLA(deadline_s=30.0, priority=CRITICAL_PRIORITY)
            future = frontend.submit(one_image(), sla)
            frontend.pool.replicas[1].finish()
            assert future.result(timeout=30.0).shape == (1, 10)

    def test_deadline_expiry_during_reroute_is_a_miss_not_a_loss(self, model):
        """When the retry clock runs out *because the deadline passed*,
        the request is a deadline miss (REJECTED), never RetryExhausted."""
        from repro.runtime.batching import DeadlineExceeded
        from repro.utils.config import Config

        config = SchedulerConfig(
            replicas=2,
            warmup=False,
            enable_admission=False,
            enable_hedging=False,  # a hedge leg would race the retry timer
            retry_policy=RetryPolicy(
                max_retries=100, backoff_base_s=0.3, backoff_max_s=0.3
            ),
        )
        # Slow heartbeats: ejection must come from report_failure so the
        # reroute leg reaches the dead replica instead of route() raising.
        with ServingFrontend(
            model, config, heartbeat_config=Config({"heartbeat_interval_s": 60.0})
        ) as frontend:
            for replica in frontend.pool.replicas:
                replica.kill()
            # The first reroute backs off min(0.3, remaining) — i.e. until
            # the deadline — so the second failure lands with no budget.
            future = frontend.submit(one_image(), SLA(deadline_s=0.2))
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=10.0)
            counters = frontend.metrics.snapshot()["counters"]
            assert counters["frontend.failures.deadline_expired"] == 1
            assert counters.get("frontend.failures.retry_exhausted", 0) == 0

    def test_default_config_keeps_unlimited_reroute(self, model):
        with make_frontend(model) as frontend:
            assert frontend.config.retry_policy is None
            frontend.pool.replicas[0].kill()
            frontend.pool.replicas[1].begin()
            future = frontend.submit(one_image(), SLA(deadline_s=30.0))
            frontend.pool.replicas[1].finish()
            assert future.result(timeout=30.0).shape == (1, 10)
            counters = frontend.metrics.snapshot()["counters"]
            assert counters.get("frontend.retries", 0) == 0  # no policy: no counter


class TestFailureCauses:
    def test_admission_rejection_lands_in_its_own_counter(self, model):
        with make_frontend(model) as frontend:
            for spec in frontend.policy.candidates:
                frontend.policy.observe(spec.name, 10.0)
            future = frontend.submit(one_image(), SLA(deadline_s=0.001))
            with pytest.raises(Exception):
                future.result(timeout=5.0)
            counters = frontend.metrics.snapshot()["counters"]
            assert counters["frontend.failures.admission_rejected"] == 1

    def test_report_groups_failures_by_cause(self, model):
        with make_frontend(model, brownout=always_on_brownout()) as frontend:
            with pytest.raises(BrownoutShed):
                frontend.submit(one_image(), SLA(deadline_s=5.0)).result(5.0)
            report = frontend.report()
            assert report["failures"] == {"brownout_shed": 1}

    def test_no_failures_no_section(self, model):
        with make_frontend(model) as frontend:
            frontend.submit(one_image(), SLA(deadline_s=5.0)).result(timeout=10.0)
            assert "failures" not in frontend.report()
