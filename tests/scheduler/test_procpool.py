"""Process-pool replicas: parity, fault injection, telemetry, cleanup."""

import os
import signal
import time
from concurrent.futures import wait

import numpy as np
import pytest

from repro.engine.session import InferenceSession
from repro.models import build_model
from repro.nn.shm import list_segments, unlink_created_segments
from repro.scheduler.admission import SLA
from repro.scheduler.frontend import SchedulerConfig, ServingFrontend
from repro.scheduler.pool import ReplicaPool, ReplicaUnavailable, wait_for_ejection
from repro.scheduler.procpool import (
    ProcessReplica,
    make_process_replicas,
    partition_thread_budget,
    pin_blas_threads,
)
from repro.scheduler.telemetry import MetricsRegistry
from repro.utils import make_rng
from repro.utils.config import Config


@pytest.fixture(scope="module")
def model():
    return build_model("fluid", rng=make_rng(0))


def one_batch(rows=3, seed=1):
    return make_rng(seed).standard_normal((rows, 1, 28, 28))


@pytest.fixture
def replica(model):
    replicas = make_process_replicas(model, 1, plan_options={"batch_rows": 8})
    yield replicas[0]
    replicas[0].close()


class TestProcessReplica:
    def test_run_matches_parent_session_bitwise(self, model, replica):
        x = one_batch()
        out = replica.run(x, "lower50")
        assert np.array_equal(out, InferenceSession(model, "lower50").run(x))

    def test_run_parts_matches_parent_session(self, model, replica):
        parts = [one_batch(2, seed=2), one_batch(1, seed=3)]
        out = replica.run_parts(parts, "lower100")
        assert np.array_equal(
            out, InferenceSession(model, "lower100").run_parts(parts)
        )

    def test_oversized_batch_falls_back_to_inline_arrays(self, model):
        # A ring too small for the batch forces the inline-arrays path.
        replicas = make_process_replicas(
            model, 1, plan_options={"batch_rows": 8}, ring_bytes=1024
        )
        try:
            x = one_batch(4, seed=4)
            out = replicas[0].run(x, "lower25")
            assert np.array_equal(out, InferenceSession(model, "lower25").run(x))
        finally:
            replicas[0].close()

    def test_parent_version_bump_triggers_worker_repack(self, model):
        metrics = MetricsRegistry()
        replicas = make_process_replicas(
            model, 1, plan_options={"batch_rows": 8}, metrics=metrics
        )
        try:
            x = one_batch(seed=5)
            replicas[0].run(x, "lower50")
            before = metrics.counter("worker.0.repacks").value
            param = next(iter(model.net.parameters()))
            param.data *= 1.0 + 1e-9
            param.bump_version()
            out = replicas[0].run(x, "lower50")
            assert metrics.counter("worker.0.repacks").value > before
            assert np.array_equal(out, InferenceSession(model, "lower50").run(x))
        finally:
            replicas[0].close()

    def test_sigkill_is_detected_and_run_raises(self, model, replica):
        replica.run(one_batch(), "lower25")
        os.kill(replica._proc.pid, signal.SIGKILL)
        deadline = time.monotonic() + 2.0
        while replica.ping() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not replica.ping()
        with pytest.raises(ReplicaUnavailable):
            replica.run(one_batch(), "lower25")

    def test_revive_is_refused(self, replica):
        with pytest.raises(RuntimeError):
            replica.revive()

    def test_telemetry_counters_are_worker_labelled(self, model):
        metrics = MetricsRegistry()
        replicas = make_process_replicas(
            model, 2, plan_options={"batch_rows": 8}, metrics=metrics
        )
        try:
            replicas[0].run(one_batch(3), "lower50")
            replicas[1].run(one_batch(2), "lower50")
            counters = metrics.snapshot()["counters"]
            assert counters["worker.0.rows"] == 3
            assert counters["worker.1.rows"] == 2
            assert counters["worker.0.batches"] == 1
            assert metrics.ewma("worker.0.rows_per_s").value > 0
        finally:
            for r in replicas:
                r.close()


class TestPoolIntegration:
    def test_pool_backend_process_shares_one_weight_segment(self, model):
        weight_before = len(list_segments("w"))
        rings_before = len(list_segments("r"))
        pool = ReplicaPool(model, 2, backend="process")
        try:
            out, served_by = pool.execute(one_batch(), "lower50")
            assert out.shape == (3, 10)
            assert isinstance(served_by, ProcessReplica)
            # The weight store was created once (or reused): never per worker.
            assert len(list_segments("w")) - weight_before <= 1
            assert len(list_segments("r")) == rings_before + 2  # one ring each
        finally:
            pool.close()
        assert len(list_segments("r")) == rings_before

    def test_pool_rejects_unknown_backend(self, model):
        with pytest.raises(ValueError):
            ReplicaPool(model, 1, backend="fiber")

    def test_heartbeat_ejects_sigkilled_worker(self, model):
        pool = ReplicaPool(
            model,
            2,
            backend="process",
            config=Config({"heartbeat_interval_s": 0.001, "heartbeat_threshold": 2}),
        )
        try:
            os.kill(pool.replicas[1]._proc.pid, signal.SIGKILL)
            ejected = wait_for_ejection(pool, timeout_s=5.0)
            assert [r.index for r in ejected] == [1]
            assert [r.index for r in pool.healthy()] == [0]
        finally:
            pool.close()

    def test_execute_reroutes_around_sigkilled_worker(self, model):
        pool = ReplicaPool(model, 2, backend="process")
        try:
            pool.replicas[0].kill()  # SIGKILL twin of the thread-replica kill
            out, served_by = pool.execute(one_batch(), "lower25")
            assert out.shape == (3, 10)
            assert served_by.index == 1
        finally:
            pool.close()


class TestFrontendFaults:
    """The process-backend twin of the PR-3 replica-kill trace."""

    def _frontend(self, model, **overrides):
        config = SchedulerConfig(
            replicas=2,
            default_sla=SLA(deadline_s=5.0),
            enable_admission=False,
            max_batch=8,
            replica_backend="process",
            **overrides,
        )
        return ServingFrontend(
            model,
            config,
            heartbeat_config=Config({"heartbeat_interval_s": 0.005}),
        )

    def test_sigkill_mid_burst_loses_zero_requests(self, model):
        frontend = self._frontend(model)
        victim = frontend.pool.replicas[0]
        try:
            futures = []
            for i in range(60):
                futures.append(frontend.submit(one_batch(1, seed=i)))
                if i == 20:
                    os.kill(victim._proc.pid, signal.SIGKILL)
            done, not_done = wait(futures, timeout=60.0)
            assert not not_done, f"{len(not_done)} requests never resolved"
            lost = [f for f in futures if f.exception() is not None]
            assert lost == [], f"lost {len(lost)}: {lost[0].exception()!r}"
            for future in futures:
                assert future.result().shape == (1, 10)
            # The dead worker was ejected through the heartbeat machinery...
            assert frontend.pool.monitors[0].declared_dead
            # ...and the survivor served everything that was in flight.
            report = frontend.report()
            workers = {w["worker"]: w for w in report["workers"]}
            assert not workers[0]["alive"] and workers[1]["alive"]
            assert workers[1]["rows"] > 0
        finally:
            frontend.close()

    def test_report_surfaces_worker_stats(self, model):
        frontend = self._frontend(model)
        try:
            frontend.submit(one_batch(1)).result(timeout=30.0)
            report = frontend.report()
            assert {w["worker"] for w in report["workers"]} == {0, 1}
            for stats in report["workers"]:
                assert set(stats) == {
                    "worker", "alive", "rows", "batches", "repacks", "rows_per_s",
                }
        finally:
            frontend.close()

    def test_frontend_close_unlinks_every_ring(self, model):
        rings_before = list_segments("r")
        frontend = self._frontend(model)
        try:
            frontend.submit(one_batch(1)).result(timeout=30.0)
            assert len(list_segments("r")) == len(rings_before) + 2
        finally:
            frontend.close()
        assert list_segments("r") == rings_before


class TestCloseEscalation:
    def test_close_with_wedged_transport_escalates_and_unlinks(self, model):
        """close() must return within its bound even when the transport
        lock never frees (a worker wedged mid-batch): SIGTERM -> SIGKILL,
        and the ring segment is still unlinked — no /dev/shm leak."""
        rings_before = list_segments("r")
        replicas = make_process_replicas(model, 1, plan_options={"batch_rows": 8})
        replica = replicas[0]
        pid = replica._proc.pid
        assert replica._transport_lock.acquire()  # simulate a stuck batch
        try:
            started = time.monotonic()
            replica.close(timeout=0.3)
            assert time.monotonic() - started < 10.0  # bounded, not hung
        finally:
            replica._transport_lock.release()
        # close() joined: the worker is signalled, dead, and reaped.
        with pytest.raises(OSError):
            os.kill(pid, 0)
        assert list_segments("r") == rings_before

    def test_close_after_sigkill_reaps_and_unlinks(self, model):
        rings_before = list_segments("r")
        replicas = make_process_replicas(model, 1, plan_options={"batch_rows": 8})
        replica = replicas[0]
        pid = replica._proc.pid
        replica.kill()
        replica.close(timeout=1.0)
        with pytest.raises(OSError):
            os.kill(pid, 0)
        assert list_segments("r") == rings_before

    def test_close_is_idempotent(self, model):
        replicas = make_process_replicas(model, 1, plan_options={"batch_rows": 8})
        replica = replicas[0]
        replica.close()
        replica.close()  # second call: early-out, no crash
        assert not replica.ping()


class TestThreadBudget:
    def test_partition_splits_evenly_with_floor_one(self):
        assert partition_thread_budget(2, total=8) == 4
        assert partition_thread_budget(3, total=8) == 2
        assert partition_thread_budget(16, total=8) == 1

    def test_pin_blas_threads_sets_environment(self, monkeypatch):
        monkeypatch.delenv("OMP_NUM_THREADS", raising=False)
        pin_blas_threads(2)
        assert os.environ["OMP_NUM_THREADS"] == "2"
        assert os.environ["OPENBLAS_NUM_THREADS"] == "2"
        pin_blas_threads(1)  # restore the single-thread default for CI


def test_module_cleanup_leaves_no_rings(model):
    """Regression: the whole module's worker churn leaks zero /dev/shm rings."""
    assert list_segments("r") == []
    unlink_created_segments()
