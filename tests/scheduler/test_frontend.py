"""Serving frontend: admission -> width -> pool -> micro-batching, end to end.

Includes the PR acceptance property: a replica killed mid-stream is
absorbed with zero lost requests (every future resolves with a result).
"""

import time

import numpy as np
import pytest

from repro.models import build_model
from repro.runtime.batching import DeadlineExceeded
from repro.scheduler import (
    SLA,
    AdmissionRejected,
    SchedulerConfig,
    ServingFrontend,
)
from repro.utils import make_rng


@pytest.fixture(scope="module")
def model():
    return build_model("fluid", rng=make_rng(0))


def one_image(seed=1):
    return make_rng(seed).standard_normal((1, 1, 28, 28))


def make_frontend(model, **overrides):
    defaults = dict(replicas=2, warmup=False)
    defaults.update(overrides)
    return ServingFrontend(model, SchedulerConfig(**defaults))


class TestBasicServing:
    def test_roundtrip_single_request(self, model):
        with make_frontend(model) as frontend:
            out = frontend.submit(one_image(), SLA(deadline_s=5.0)).result(timeout=10.0)
            assert out.shape == (1, 10)

    def test_many_requests_all_complete(self, model):
        with make_frontend(model) as frontend:
            futures = [
                frontend.submit(one_image(i), SLA(deadline_s=5.0)) for i in range(40)
            ]
            for future in futures:
                assert future.result(timeout=10.0).shape == (1, 10)
            counters = frontend.metrics.snapshot()["counters"]
            assert counters["frontend.completed"] == 40

    def test_output_matches_direct_session(self, model):
        """Scheduling must not change the computation, only route/batch it."""
        from repro.engine.session import InferenceSession

        x = one_image(7)
        with make_frontend(model) as frontend:
            # Pin the width so the comparison is like-for-like.
            sla = SLA(deadline_s=5.0, min_width="lower100", max_width="lower100")
            served = frontend.submit(x, sla).result(timeout=10.0)
        direct = InferenceSession(model, "lower100").run(x)
        np.testing.assert_allclose(served, direct, rtol=1e-9, atol=1e-9)

    def test_submit_after_close_raises(self, model):
        frontend = make_frontend(model)
        frontend.close()
        with pytest.raises(RuntimeError):
            frontend.submit(one_image(), SLA(deadline_s=1.0))


class TestCompiledPlans:
    def test_frontend_compiles_one_plan_per_candidate(self, model):
        with make_frontend(model) as frontend:
            widths = {spec.name for spec in frontend.policy.candidates}
            assert set(frontend.plans) == widths
            caches = {id(plan.cache) for plan in frontend.plans.values()}
            assert len(caches) == 1  # one shared packed-weight cache
            for plan in frontend.plans.values():
                assert plan.batch_rows == frontend.config.max_batch

    def test_plan_frontend_serves_bitwise_equal_to_eager_frontend(self, model):
        x = one_image(11)
        sla = SLA(deadline_s=5.0, min_width="lower50", max_width="lower50")
        with make_frontend(model) as frontend:
            with_plans = frontend.submit(x, sla).result(timeout=10.0)
        with make_frontend(model, compile_plans=False) as frontend:
            assert frontend.plans == {}
            eager = frontend.submit(x, sla).result(timeout=10.0)
        np.testing.assert_array_equal(with_plans, eager)

    def test_width_policy_seeded_from_plan_flops(self, model):
        with make_frontend(model) as frontend:
            snapshot = frontend.policy.calibration_snapshot()
            for width, plan in frontend.plans.items():
                assert snapshot[width]["model_s"] > 0
                assert plan.flops_per_image() > 0


class TestAdmission:
    def test_infeasible_deadline_fails_fast(self, model):
        with make_frontend(model) as frontend:
            # Make every width look slower than the budget.
            for spec in frontend.policy.candidates:
                frontend.policy.observe(spec.name, 10.0)
            future = frontend.submit(one_image(), SLA(deadline_s=0.001))
            with pytest.raises(AdmissionRejected):
                future.result(timeout=5.0)
            counters = frontend.metrics.snapshot()["counters"]
            assert counters["frontend.rejected"] == 1
            # Fail-fast means no compute happened for the rejected request.
            assert counters.get("frontend.completed", 0) == 0

    def test_rejection_is_deadline_exceeded(self, model):
        with make_frontend(model) as frontend:
            for spec in frontend.policy.candidates:
                frontend.policy.observe(spec.name, 10.0)
            future = frontend.submit(one_image(), SLA(deadline_s=0.001))
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=5.0)

    def test_critical_priority_is_served_anyway(self, model):
        with make_frontend(model) as frontend:
            for spec in frontend.policy.candidates:
                frontend.policy.observe(spec.name, 10.0)
            future = frontend.submit(one_image(), SLA(deadline_s=0.001, priority=1))
            assert future.result(timeout=30.0).shape == (1, 10)

    def test_admission_disabled_serves_everything(self, model):
        """Without admission, even an infeasible-*looking* request is served.

        Predictions say 10s per request vs a 5s deadline (admission would
        reject), but the deadline itself is far enough out that the leg's
        fail-fast check cannot race the dispatch on a slow CI machine.
        """
        with make_frontend(model, enable_admission=False) as frontend:
            for spec in frontend.policy.candidates:
                frontend.policy.observe(spec.name, 10.0)
            future = frontend.submit(one_image(), SLA(deadline_s=5.0))
            assert future.result(timeout=30.0).shape == (1, 10)


class TestWidthSelection:
    def test_tight_budget_narrows_width(self, model):
        with make_frontend(model) as frontend:
            # Calibrate: only the narrowest width fits a 20ms budget.
            times = {"lower100": 0.5, "lower75": 0.3, "lower50": 0.1, "lower25": 0.001}
            for name, t in times.items():
                frontend.policy.observe(name, t)
            frontend.submit(one_image(), SLA(deadline_s=0.02)).result(timeout=10.0)
            counters = frontend.metrics.snapshot()["counters"]
            assert counters["frontend.width.lower25"] == 1

    def test_loose_budget_keeps_widest(self, model):
        with make_frontend(model) as frontend:
            frontend.submit(one_image(), SLA(deadline_s=60.0)).result(timeout=10.0)
            counters = frontend.metrics.snapshot()["counters"]
            assert counters["frontend.width.lower100"] == 1

    def test_sla_width_bounds_are_respected(self, model):
        with make_frontend(model) as frontend:
            sla = SLA(deadline_s=60.0, max_width="lower50")
            frontend.submit(one_image(), sla).result(timeout=10.0)
            counters = frontend.metrics.snapshot()["counters"]
            assert counters["frontend.width.lower50"] == 1


class TestFailureAbsorption:
    def test_replica_kill_mid_stream_loses_zero_requests(self, model):
        """The acceptance property: mid-run kill => rerouted, zero lost."""
        with make_frontend(model, replicas=2, max_delay_s=0.005) as frontend:
            futures = []
            for i in range(60):
                futures.append(frontend.submit(one_image(i), SLA(deadline_s=30.0)))
                if i == 20:
                    frontend.pool.replicas[0].kill()
            results = [f.result(timeout=30.0) for f in futures]
            assert len(results) == 60
            assert all(r.shape == (1, 10) for r in results)
            counters = frontend.metrics.snapshot()["counters"]
            assert counters["frontend.completed"] == 60
            assert counters.get("frontend.failed", 0) == 0
            # The dead replica was ejected through its heartbeat monitor.
            assert frontend.pool.monitors[0].declared_dead
            assert [r.index for r in frontend.pool.healthy()] == [1]

    def test_whole_pool_dead_fails_futures_not_hangs(self, model):
        with make_frontend(model, replicas=2) as frontend:
            for replica in frontend.pool.replicas:
                replica.kill()
                frontend.pool.report_failure(replica)
            future = frontend.submit(one_image(), SLA(deadline_s=1.0))
            with pytest.raises(Exception):
                future.result(timeout=10.0)

    def test_health_loop_ejects_without_traffic(self, model):
        from repro.utils.config import Config

        frontend = ServingFrontend(
            model,
            SchedulerConfig(replicas=2, warmup=False),
            heartbeat_config=Config({"heartbeat_interval_s": 0.005}),
        )
        try:
            frontend.pool.replicas[1].kill()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if frontend.pool.monitors[1].declared_dead:
                    break
                time.sleep(0.005)
            assert frontend.pool.monitors[1].declared_dead
        finally:
            frontend.close()


class TestHedging:
    """The watchdog's firing *schedule* is wall-clock driven (covered by the
    bench, where hedges fire under real backlog); these tests drive the
    hedge callback directly so CI never depends on thread timing."""

    def _straggler(self, frontend, width="lower100"):
        from repro.scheduler.frontend import _Entry

        entry = _Entry(one_image(0), SLA(deadline_s=5.0), time.monotonic())
        entry.width = width
        entry.primary_replica = 0
        return entry

    def test_hedge_runs_narrower_on_another_replica(self, model):
        with make_frontend(model, hedge_ratio=1.0) as frontend:
            frontend.metrics.counter("frontend.requests").inc(10)  # budget base
            entry = self._straggler(frontend)
            frontend._hedge(entry)
            assert entry.future.result(timeout=10.0).shape == (1, 10)
            counters = frontend.metrics.snapshot()["counters"]
            assert counters["frontend.hedges"] == 1
            # One width narrower than the straggler, off its replica (0).
            assert (1, "lower75") in frontend._queues

    def test_hedge_is_one_shot_per_request(self, model):
        with make_frontend(model, hedge_ratio=1.0) as frontend:
            frontend.metrics.counter("frontend.requests").inc(10)
            entry = self._straggler(frontend)
            frontend._hedge(entry)
            frontend._hedge(entry)  # second fire: entry.hedged blocks it
            counters = frontend.metrics.snapshot()["counters"]
            assert counters["frontend.hedges"] == 1

    def test_done_requests_are_never_hedged(self, model):
        with make_frontend(model, hedge_ratio=1.0) as frontend:
            frontend.metrics.counter("frontend.requests").inc(10)
            entry = self._straggler(frontend)
            entry.future.set_result(np.zeros((1, 10)))
            frontend._hedge(entry)
            counters = frontend.metrics.snapshot()["counters"]
            assert counters.get("frontend.hedges", 0) == 0

    def test_hedge_budget_suppresses_storms(self, model):
        with make_frontend(model, hedge_ratio=0.0) as frontend:
            frontend.metrics.counter("frontend.requests").inc(100)
            entry = self._straggler(frontend)
            frontend._hedge(entry)
            counters = frontend.metrics.snapshot()["counters"]
            assert counters.get("frontend.hedges", 0) == 0
            assert counters["frontend.hedges_suppressed"] == 1
            assert not entry.future.done()  # primary leg still owns it

    def test_min_width_floor_bounds_the_hedge(self, model):
        with make_frontend(model, hedge_ratio=1.0) as frontend:
            frontend.metrics.counter("frontend.requests").inc(10)
            entry = self._straggler(frontend, width="lower25")
            entry.sla = SLA(deadline_s=5.0, min_width="lower25")
            frontend._hedge(entry)
            assert entry.future.result(timeout=10.0).shape == (1, 10)
            # No narrower candidate exists: the hedge reuses the floor width.
            assert (1, "lower25") in frontend._queues


class TestHedgeWatchdog:
    """arm/close ordering on the watchdog thread itself (no frontend)."""

    def test_fires_in_deadline_order_not_arm_order(self):
        from repro.scheduler.frontend import _HedgeWatchdog

        fired = []
        done = __import__("threading").Event()

        def _fire(entry):
            fired.append(entry)
            if len(fired) == 2:
                done.set()

        watchdog = _HedgeWatchdog(_fire)
        try:
            now = time.monotonic()
            watchdog.arm(now + 0.05, "late")
            watchdog.arm(now + 0.01, "early")
            assert done.wait(timeout=5.0)
            assert fired == ["early", "late"]
        finally:
            watchdog.close()

    def test_arm_after_close_never_fires(self):
        from repro.scheduler.frontend import _HedgeWatchdog

        fired = []
        watchdog = _HedgeWatchdog(fired.append)
        watchdog.close()
        watchdog.arm(time.monotonic() - 1.0, "dropped")  # no-op, no crash
        time.sleep(0.05)
        assert fired == []
        assert not watchdog._thread.is_alive()

    def test_close_with_pending_entries_does_not_fire_them(self):
        from repro.scheduler.frontend import _HedgeWatchdog

        fired = []
        watchdog = _HedgeWatchdog(fired.append)
        watchdog.arm(time.monotonic() + 30.0, "pending")
        watchdog.close()
        assert fired == []
        assert not watchdog._thread.is_alive()

    def test_close_is_idempotent(self):
        from repro.scheduler.frontend import _HedgeWatchdog

        watchdog = _HedgeWatchdog(lambda entry: None)
        watchdog.close()
        watchdog.close()


class TestCandidateSelection:
    def test_fluid_candidates_are_certified_lowers(self, model):
        with make_frontend(model) as frontend:
            assert {s.name for s in frontend.policy.candidates} == {
                "lower25", "lower50", "lower75", "lower100",
            }

    def test_static_model_never_downgrades_width(self):
        """A family with no standalone-certified subnets serves full width only:
        narrower slices it never trained standalone must not be picked under
        load (they would return garbage)."""
        static = build_model("static", rng=make_rng(0))
        with ServingFrontend(
            static, SchedulerConfig(replicas=1, warmup=False)
        ) as frontend:
            assert [s.name for s in frontend.policy.candidates] == ["lower100"]
            # Even a hopeless budget stays at full width.
            spec, _ = frontend.policy.choose(1e-9)
            assert spec.name == "lower100"

    def test_bare_net_uses_full_lower_family(self, model):
        with ServingFrontend(
            model.net, SchedulerConfig(replicas=1, warmup=False)
        ) as frontend:
            assert len(frontend.policy.candidates) == 4


class TestReport:
    def test_report_shape(self, model):
        with make_frontend(model) as frontend:
            frontend.submit(one_image(), SLA(deadline_s=5.0)).result(timeout=10.0)
            report = frontend.report()
            assert set(report) == {"metrics", "calibration", "replicas", "batching"}
            assert len(report["replicas"]) == 2
            assert "lower100" in report["calibration"]

    def test_report_before_any_traffic(self, model):
        """Zero-traffic report: well-formed, no fake-zero latency stats."""
        with make_frontend(model) as frontend:
            report = frontend.report()
            assert set(report) == {"metrics", "calibration", "replicas", "batching"}
            assert report["batching"] == {}  # queues are created lazily
            assert report["metrics"]["counters"] == {}
            for summary in report["metrics"]["histograms"].values():
                # An unobserved histogram must say so, not report p99 == 0.
                assert summary == {"count": 0}
            assert all(r["alive"] for r in report["replicas"])

    def test_report_after_traffic_has_batching_stats(self, model):
        with make_frontend(model) as frontend:
            for i in range(8):
                frontend.submit(one_image(i), SLA(deadline_s=5.0)).result(timeout=10.0)
            report = frontend.report()
            assert report["batching"], "served traffic must surface queue stats"
            for key, stats in report["batching"].items():
                replica, width = key.split(":")
                assert replica.isdigit() and width.startswith("lower")
                assert stats["requests"] >= 1
                assert stats["batches"] >= 1
            total = sum(s["requests"] for s in report["batching"].values())
            assert total == 8
            service = report["metrics"]["histograms"]["frontend.batch_service_s"]
            assert service["count"] >= 1 and service["p99_s"] > 0

    def test_report_after_replica_ejection(self, model):
        with make_frontend(model, max_delay_s=0.005) as frontend:
            futures = []
            for i in range(20):
                futures.append(frontend.submit(one_image(i), SLA(deadline_s=30.0)))
                if i == 5:
                    frontend.pool.replicas[0].kill()
            for f in futures:
                f.result(timeout=30.0)
            report = frontend.report()
            assert [r["alive"] for r in report["replicas"]] == [False, True]
            assert report["metrics"]["counters"]["pool.ejections"] >= 1
            # Queues on the dead replica keep their (pre-death) stats.
            assert any(key.startswith("1:") for key in report["batching"])

    def test_report_includes_trace_stats_when_tracing(self, model):
        from repro.trace import Tracer

        tracer = Tracer(sampling=1.0)
        with ServingFrontend(
            model, SchedulerConfig(replicas=2, warmup=False), tracer=tracer
        ) as frontend:
            frontend.submit(one_image(), SLA(deadline_s=5.0)).result(timeout=10.0)
            report = frontend.report()
            assert "trace" in report
            assert report["trace"]["emitted"] > 0
            assert report["trace"]["in_flight_requests"] == 0  # taken at resolve

    def test_warmup_primes_every_width(self, model):
        with ServingFrontend(model, SchedulerConfig(replicas=1)) as frontend:
            for spec in frontend.policy.candidates:
                assert frontend.policy.calibration_snapshot()[spec.name][
                    "observed_ewma_s"
                ] is not None


class TestConvBackendAndLadderConfig:
    def test_frontend_compiles_ladders_when_configured(self, model):
        from repro.nn.plan import PlanLadder

        with make_frontend(model, rows_ladder=(1, 4), max_batch=8) as frontend:
            for ladder in frontend.plans.values():
                assert isinstance(ladder, PlanLadder)
                assert [p.batch_rows for p in ladder.rungs] == [1, 4, 8]
            caches = {id(ladder.cache) for ladder in frontend.plans.values()}
            assert len(caches) == 1
            out = frontend.submit(one_image(21), SLA(deadline_s=5.0)).result(timeout=10.0)
            assert out.shape == (1, 10)

    def test_single_request_lands_on_smallest_rung(self, model):
        sla = SLA(deadline_s=5.0, min_width="lower50", max_width="lower50")
        with make_frontend(
            model, rows_ladder=(1, 4), max_batch=8, max_delay_s=0.0
        ) as frontend:
            ladder = frontend.plans["lower50"]
            small = ladder.rungs[0]
            before = small.workspaces.checkouts
            frontend.submit(one_image(22), sla).result(timeout=10.0)
            assert small.workspaces.checkouts == before + 1

    def test_shifted_backend_serves_within_tolerance(self, model):
        from repro.engine.session import InferenceSession
        from repro.nn import functional as F

        x = one_image(23)
        sla = SLA(deadline_s=5.0, min_width="lower100", max_width="lower100")
        with make_frontend(model, conv_backend="shifted-gemm") as frontend:
            assert all(not plan.exact for plan in frontend.plans.values())
            served = frontend.submit(x, sla).result(timeout=10.0)
        direct = InferenceSession(model, "lower100").run(x)
        np.testing.assert_allclose(
            served, direct, **F.shifted_gemm_tolerance(served.dtype)
        )

    def test_invalid_backend_and_ladder_rejected(self):
        with pytest.raises(ValueError, match="unknown conv backend"):
            SchedulerConfig(conv_backend="winograd")
        with pytest.raises(ValueError, match="rows_ladder"):
            SchedulerConfig(rows_ladder=())
        with pytest.raises(ValueError, match="rows_ladder"):
            SchedulerConfig(rows_ladder=(0, 4))

    def test_per_rung_backend_config_compiles_mixed_ladders(self, model):
        """The tuner's derived dimension round-trips into serving plans."""
        with make_frontend(
            model,
            rows_ladder=(1, 8),
            max_batch=8,
            conv_backend_per_rung=((1, "im2col"), (8, "shifted-gemm")),
        ) as frontend:
            for ladder in frontend.plans.values():
                assert [p.conv_backend for p in ladder.rungs] == [
                    "im2col", "shifted-gemm",
                ]
            out = frontend.submit(one_image(24), SLA(deadline_s=5.0)).result(
                timeout=10.0
            )
            assert out.shape == (1, 10)

    def test_per_rung_backend_requires_ladder(self):
        with pytest.raises(ValueError, match="rows_ladder"):
            SchedulerConfig(conv_backend_per_rung=((1, "im2col"),))
        with pytest.raises(ValueError, match="unknown conv backend"):
            SchedulerConfig(
                rows_ladder=(1, 8), conv_backend_per_rung=((1, "winograd"),)
            )
