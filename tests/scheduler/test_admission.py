"""Admission control: fail-fast feasibility decisions per SLA."""

import pytest

from repro.runtime.batching import DeadlineExceeded
from repro.scheduler.admission import (
    CRITICAL_PRIORITY,
    SLA,
    AdmissionController,
    AdmissionRejected,
)
from repro.scheduler.telemetry import MetricsRegistry


class TestSLA:
    def test_defaults(self):
        sla = SLA(deadline_s=0.05)
        assert sla.priority == 0
        assert sla.min_width is None and sla.max_width is None

    def test_validation(self):
        with pytest.raises(ValueError):
            SLA(deadline_s=0.0)
        with pytest.raises(ValueError):
            SLA(deadline_s=0.05, priority=-1)


class TestAdmissionDecisions:
    def test_feasible_request_is_admitted(self):
        ctl = AdmissionController()
        decision = ctl.decide(
            SLA(deadline_s=0.05), queue_wait_s=0.01, service_floor_s=0.01
        )
        assert decision.admitted
        decision.raise_if_rejected()  # no-op when admitted

    def test_infeasible_request_is_rejected_with_reason(self):
        ctl = AdmissionController()
        decision = ctl.decide(
            SLA(deadline_s=0.02), queue_wait_s=0.05, service_floor_s=0.01
        )
        assert not decision.admitted
        assert "infeasible" in decision.reason
        with pytest.raises(AdmissionRejected):
            decision.raise_if_rejected()

    def test_rejection_is_a_deadline_exceeded(self):
        """Callers catching DeadlineExceeded see both fail-fast paths."""
        assert issubclass(AdmissionRejected, DeadlineExceeded)

    def test_expired_budget_is_rejected_even_for_critical(self):
        ctl = AdmissionController()
        decision = ctl.decide_remaining(
            SLA(deadline_s=0.05, priority=CRITICAL_PRIORITY),
            remaining_s=-0.001,
            queue_wait_s=0.0,
            service_floor_s=0.001,
        )
        assert not decision.admitted
        assert "expired" in decision.reason

    def test_critical_priority_bypasses_feasibility(self):
        ctl = AdmissionController()
        decision = ctl.decide(
            SLA(deadline_s=0.02, priority=CRITICAL_PRIORITY),
            queue_wait_s=1.0,
            service_floor_s=1.0,
        )
        assert decision.admitted

    def test_headroom_scales_the_budget(self):
        # estimated 30ms vs budget 20ms: rejected at headroom 1, admitted at 2.
        sla = SLA(deadline_s=0.02)
        strict = AdmissionController(headroom=1.0)
        lax = AdmissionController(headroom=2.0)
        assert not strict.decide(sla, queue_wait_s=0.02, service_floor_s=0.01).admitted
        assert lax.decide(sla, queue_wait_s=0.02, service_floor_s=0.01).admitted

    def test_estimate_is_reported(self):
        decision = AdmissionController().decide(
            SLA(deadline_s=1.0), queue_wait_s=0.2, service_floor_s=0.1
        )
        assert decision.estimated_s == pytest.approx(0.3)

    def test_invalid_headroom(self):
        with pytest.raises(ValueError):
            AdmissionController(headroom=0.0)


class TestAdmissionMetrics:
    def test_counters_track_outcomes(self):
        metrics = MetricsRegistry()
        ctl = AdmissionController(metrics=metrics)
        ctl.decide(SLA(deadline_s=1.0), queue_wait_s=0.0, service_floor_s=0.0)
        ctl.decide(SLA(deadline_s=0.01), queue_wait_s=5.0, service_floor_s=5.0)
        ctl.decide_remaining(
            SLA(deadline_s=1.0), remaining_s=0.0, queue_wait_s=0.0, service_floor_s=0.0
        )
        counters = metrics.snapshot()["counters"]
        assert counters["admission.admitted"] == 1
        assert counters["admission.rejected_infeasible"] == 1
        assert counters["admission.rejected_expired"] == 1
