"""Width policy: cost-model ordering, EWMA calibration, deadline fit."""

import pytest

from repro.scheduler.width_policy import WidthPolicy
from repro.slimmable import SlimmableConvNet, paper_width_spec
from repro.utils import make_rng


@pytest.fixture(scope="module")
def net():
    return SlimmableConvNet(paper_width_spec(), rng=make_rng(0))


@pytest.fixture
def policy(net):
    return WidthPolicy(net, net.width_spec.lower_family())


class TestOrderingAndPrediction:
    def test_candidates_sorted_widest_first(self, policy):
        assert [s.name for s in policy.candidates] == [
            "lower100", "lower75", "lower50", "lower25",
        ]

    def test_model_costs_decrease_with_width(self, policy):
        predictions = [policy.predict(s.name) for s in policy.candidates]
        assert predictions == sorted(predictions, reverse=True)
        assert predictions[-1] > 0

    def test_observation_overrides_model(self, policy):
        policy.observe("lower100", 0.123)
        assert policy.predict("lower100") == pytest.approx(0.123)

    def test_calibration_transfers_to_unobserved_widths(self, policy):
        """Observing one width rescales the model cost of the others."""
        base_full = policy.predict("lower100")
        base_quarter = policy.predict("lower25")
        policy.observe("lower100", base_full * 10.0)  # this process is 10x slower
        assert policy.predict("lower25") == pytest.approx(base_quarter * 10.0)

    def test_unknown_width_raises(self, policy):
        with pytest.raises(KeyError):
            policy.predict("nope")
        with pytest.raises(KeyError):
            policy.observe("nope", 0.1)

    def test_negative_observation_raises(self, policy):
        with pytest.raises(ValueError):
            policy.observe("lower100", -1.0)


class TestChoose:
    def _calibrate(self, policy, times):
        for name, t in times.items():
            policy.observe(name, t)

    def test_picks_widest_that_fits(self, policy):
        self._calibrate(
            policy,
            {"lower100": 0.040, "lower75": 0.030, "lower50": 0.020, "lower25": 0.010},
        )
        spec, predicted = policy.choose(0.025)
        assert spec.name == "lower50"
        assert predicted == pytest.approx(0.020)

    def test_huge_budget_picks_widest(self, policy):
        spec, _ = policy.choose(1e9)
        assert spec.name == "lower100"

    def test_impossible_budget_falls_back_to_narrowest(self, policy):
        self._calibrate(policy, {"lower25": 0.010})
        spec, predicted = policy.choose(0.001)
        assert spec.name == "lower25"
        assert predicted == pytest.approx(0.010)  # honest, even though over budget

    def test_respects_min_and_max_width(self, policy):
        self._calibrate(
            policy,
            {"lower100": 0.040, "lower75": 0.030, "lower50": 0.020, "lower25": 0.010},
        )
        spec, _ = policy.choose(1e9, max_width="lower75")
        assert spec.name == "lower75"
        spec, _ = policy.choose(0.001, min_width="lower50")
        assert spec.name == "lower50"

    def test_min_wider_than_max_raises(self, policy):
        with pytest.raises(ValueError):
            policy.allowed(min_width="lower100", max_width="lower25")


class TestNeighbours:
    def test_narrower_than(self, policy):
        assert policy.narrower_than("lower100").name == "lower75"
        assert policy.narrower_than("lower25") is None

    def test_narrower_than_respects_floor(self, policy):
        assert policy.narrower_than("lower50", min_width="lower50") is None

    def test_narrowest(self, policy):
        assert policy.narrowest().name == "lower25"
        assert policy.narrowest(min_width="lower75").name == "lower75"


class TestSnapshot:
    def test_calibration_snapshot_shape(self, policy):
        policy.observe("lower50", 0.02)
        snap = policy.calibration_snapshot()
        assert set(snap) == {"lower100", "lower75", "lower50", "lower25"}
        assert snap["lower50"]["observed_ewma_s"] == pytest.approx(0.02)
        assert snap["lower100"]["observed_ewma_s"] is None
        assert snap["lower100"]["predicted_s"] > 0


def test_empty_candidates_rejected(net):
    with pytest.raises(ValueError):
        WidthPolicy(net, [])
