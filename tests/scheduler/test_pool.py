"""Replica pool: least-loaded routing, heartbeat ejection, rerouting."""

import numpy as np
import pytest

from repro.models import build_model
from repro.runtime.monitor import HeartbeatMonitor
from repro.scheduler.pool import ReplicaPool, ReplicaUnavailable, wait_for_ejection
from repro.utils import make_rng
from repro.utils.config import Config


@pytest.fixture(scope="module")
def model():
    return build_model("fluid", rng=make_rng(0))


@pytest.fixture
def pool(model):
    return ReplicaPool(model, 3, config=Config({"heartbeat_interval_s": 0.001}))


def one_image(seed=1):
    return make_rng(seed).standard_normal((1, 1, 28, 28))


class TestRouting:
    def test_route_picks_least_pending(self, pool):
        pool.replicas[0].begin()
        pool.replicas[0].begin()
        pool.replicas[1].begin()
        choice = pool.route()
        assert choice.index == 2  # untouched replica
        choice.finish()

    def test_route_excludes_indices(self, pool):
        choice = pool.route(exclude=(0, 1))
        assert choice.index == 2
        choice.finish()

    def test_route_with_everything_excluded_falls_back_to_healthy(self, pool):
        choice = pool.route(exclude=(0, 1, 2))
        assert choice.index in (0, 1, 2)
        choice.finish()

    def test_route_raises_when_pool_dead(self, pool):
        for replica in pool.replicas:
            replica.kill()
            pool.report_failure(replica)
        with pytest.raises(ReplicaUnavailable):
            pool.route()


class TestServing:
    def test_execute_runs_on_a_replica(self, pool):
        out, replica = pool.execute(one_image(), "lower50")
        assert out.shape == (1, 10)
        assert replica.pending == 0  # released after completion

    def test_sessions_share_weights_zero_copy(self, pool):
        ids = None
        for replica in pool.replicas:
            session = replica.session("lower100")
            current = [id(p.data) for p in session.parameters()]
            assert ids is None or current == ids
            ids = current

    def test_dead_replica_raises(self, model):
        pool = ReplicaPool(model, 1)
        pool.replicas[0].kill()
        with pytest.raises(ReplicaUnavailable):
            pool.replicas[0].run(one_image(), "lower25")

    def test_execute_reroutes_around_dead_replica(self, pool):
        pool.replicas[0].kill()
        # Force routing to consider the dead replica first.
        pool.replicas[1].begin()
        pool.replicas[2].begin()
        out, replica = pool.execute(one_image(), "lower25")
        assert out.shape == (1, 10)
        assert replica.index != 0
        assert pool.metrics.counter("pool.reroutes").value >= 1
        # The failure was reported through the heartbeat state machine.
        assert pool.monitors[0].declared_dead

    def test_execute_raises_when_all_replicas_dead(self, pool):
        for replica in pool.replicas:
            replica.kill()
        with pytest.raises(ReplicaUnavailable):
            pool.execute(one_image(), "lower25")


class TestHealth:
    def test_check_health_ejects_after_threshold(self, model):
        pool = ReplicaPool(
            model, 2, config=Config({"heartbeat_threshold": 2})
        )
        pool.replicas[1].kill()
        assert pool.check_health() == []  # one miss: not declared yet
        assert pool.check_health() == [pool.replicas[1]]  # threshold reached
        assert [r.index for r in pool.healthy()] == [0]
        assert pool.metrics.counter("pool.ejections").value == 1

    def test_heartbeat_config_keys_are_honoured(self, model):
        pool = ReplicaPool(
            model,
            1,
            config=Config({"heartbeat_threshold": 5, "heartbeat_interval_s": 0.25}),
        )
        assert all(m.threshold == 5 for m in pool.monitors)
        assert pool.heartbeat_interval_s == 0.25

    def test_monitors_are_the_shared_heartbeat_monitor(self, pool):
        assert all(isinstance(m, HeartbeatMonitor) for m in pool.monitors)

    def test_wait_for_ejection_observes_kill(self, pool):
        pool.replicas[2].kill()
        ejected = wait_for_ejection(pool, timeout_s=2.0)
        assert [r.index for r in ejected] == [2]

    def test_report_failure_is_idempotent(self, pool):
        pool.replicas[0].kill()
        pool.report_failure(pool.replicas[0])
        pool.report_failure(pool.replicas[0])
        assert pool.metrics.counter("pool.ejections").value == 1

    def test_total_pending_counts_only_healthy(self, pool):
        pool.replicas[0].begin()
        pool.replicas[1].begin()
        pool.replicas[1].kill()
        pool.report_failure(pool.replicas[1])
        assert pool.total_pending() == 1


class TestRespawn:
    """The pool half of self-healing: spawn_replica + adopt re-entry."""

    def test_thread_spawn_revives_in_place(self, pool):
        pool.replicas[1].kill()
        fresh = pool.spawn_replica(1)
        assert fresh is pool.replicas[1]
        assert fresh.alive

    def test_adopt_returns_the_replica_to_routing(self, pool):
        pool.replicas[2].kill()
        ejected = wait_for_ejection(pool, timeout_s=2.0)
        assert [r.index for r in ejected] == [2]
        fresh = pool.spawn_replica(2)
        replaced = pool.adopt(2, fresh)
        assert replaced is fresh  # thread backend: same object, revived
        assert [r.index for r in pool.healthy()] == [0, 1, 2]
        assert not pool.monitors[2].declared_dead

    def test_adopted_replica_serves_and_routes(self, pool):
        pool.replicas[0].kill()
        pool.report_failure(pool.replicas[0])
        pool.adopt(0, pool.spawn_replica(0))
        # Make slot 0 the clear least-loaded choice again.
        pool.replicas[1].begin()
        pool.replicas[2].begin()
        out, replica = pool.execute(one_image(), "lower25")
        assert out.shape == (1, 10)
        assert replica.index == 0

    def test_adopted_replica_starts_with_zero_pending(self, pool):
        pool.replicas[0].begin()
        pool.replicas[0].begin()
        pool.replicas[0].kill()
        pool.report_failure(pool.replicas[0])
        adopted = pool.adopt(0, pool.spawn_replica(0))
        # Thread revive keeps the object; what matters is that routing
        # sees it healthy and its load converges as requests finish.
        assert adopted.alive
        assert pool.replicas[0] in pool.healthy()

    def test_stale_failure_report_after_adopt_is_ignored(self, model):
        """A late failure report for a replaced replica must not eject
        the fresh one behind the same monitor slot."""
        pool = ReplicaPool(model, 2)
        old = pool.replicas[0]
        old.kill()
        pool.report_failure(old)
        fresh = type(old)(0, model)
        pool.adopt(0, fresh)
        pool.report_failure(old)  # stale: `old` no longer occupies slot 0
        assert not pool.monitors[0].declared_dead
        assert pool.replicas[0] is fresh


def test_pool_validates_replica_count(model):
    with pytest.raises(ValueError):
        ReplicaPool(model, 0)
