"""Telemetry registry: counters, EWMAs, windowed latency histograms."""

import threading

import pytest

from repro.scheduler.telemetry import (
    Counter,
    EWMA,
    LatencyHistogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_concurrent_increments_are_lossless(self):
        c = Counter()

        def bump():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestEWMA:
    def test_none_before_first_observation(self):
        assert EWMA().value is None

    def test_first_observation_sets_value(self):
        e = EWMA(alpha=0.5)
        e.observe(10.0)
        assert e.value == 10.0
        assert e.count == 1

    def test_exponential_update(self):
        e = EWMA(alpha=0.5)
        e.observe(10.0)
        e.observe(20.0)
        assert e.value == pytest.approx(15.0)

    def test_alpha_one_tracks_last(self):
        e = EWMA(alpha=1.0)
        for x in (1.0, 2.0, 9.0):
            e.observe(x)
        assert e.value == 9.0

    def test_invalid_alpha(self):
        for alpha in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                EWMA(alpha=alpha)


class TestLatencyHistogram:
    def test_percentiles_nearest_rank(self):
        h = LatencyHistogram()
        for ms in range(1, 101):  # 1..100 ms
            h.observe(ms / 1000.0)
        assert h.percentile(50) == pytest.approx(0.050)
        assert h.percentile(95) == pytest.approx(0.095)
        assert h.percentile(99) == pytest.approx(0.099)
        assert h.percentile(100) == pytest.approx(0.100)

    def test_empty_percentile_is_none(self):
        # "No observations" must be distinguishable from a true 0.0 latency.
        assert LatencyHistogram().percentile(99) is None

    def test_empty_mean_is_none(self):
        assert LatencyHistogram().mean() is None

    def test_empty_summary_is_count_only(self):
        assert LatencyHistogram().summary() == {"count": 0}

    def test_window_bounds_memory_but_totals_exact(self):
        h = LatencyHistogram(window=4)
        for x in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
            h.observe(x)
        assert h.count == 6
        assert h.mean() == pytest.approx(21.0 / 6)
        # Window holds only the last 4 samples: the median moved up.
        assert h.percentile(50) >= 4.0

    def test_summary_keys(self):
        h = LatencyHistogram()
        h.observe(0.01)
        summary = h.summary()
        assert set(summary) == {"count", "mean_s", "p50_s", "p95_s", "p99_s", "max_s"}
        assert summary["count"] == 1

    def test_rejects_bad_inputs(self):
        h = LatencyHistogram()
        with pytest.raises(ValueError):
            h.observe(-0.1)
        with pytest.raises(ValueError):
            h.percentile(0)
        with pytest.raises(ValueError):
            LatencyHistogram(window=0)

    def test_empty_percentile_still_validates_range(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(101)


class TestTimer:
    def test_observes_elapsed_into_histogram(self):
        reg = MetricsRegistry()
        with reg.timer("op_s") as timer:
            pass
        assert timer.elapsed is not None and timer.elapsed >= 0.0
        hist = reg.histogram("op_s")
        assert hist.count == 1
        assert hist.percentile(50) == pytest.approx(timer.elapsed)

    def test_does_not_observe_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.timer("op_s") as timer:
                raise RuntimeError("boom")
        # elapsed is still measured (callers may want it), but a failed
        # operation's duration is not a service-time observation.
        assert timer.elapsed is not None
        assert reg.histogram("op_s").count == 0

    def test_each_call_is_a_fresh_timer(self):
        reg = MetricsRegistry()
        assert reg.timer("op_s") is not reg.timer("op_s")
        with reg.timer("op_s"):
            pass
        with reg.timer("op_s"):
            pass
        assert reg.histogram("op_s").count == 2


class TestMetricsRegistry:
    def test_same_name_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.ewma("e") is reg.ewma("e")

    def test_snapshot_is_json_friendly(self):
        import json

        reg = MetricsRegistry()
        reg.counter("served").inc(3)
        reg.histogram("lat").observe(0.02)
        reg.ewma("rate").observe(1.5)
        snap = reg.snapshot()
        assert snap["counters"]["served"] == 3
        assert snap["histograms"]["lat"]["count"] == 1
        assert snap["ewmas"]["rate"]["value"] == 1.5
        json.dumps(snap)  # must not raise
