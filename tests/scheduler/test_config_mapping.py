"""The SchedulerConfig flat-mapping wire format (to_mapping/from_mapping).

The contract the tuner artifact and ``--config FILE`` both rest on:
``from_mapping(to_mapping(cfg)) == cfg`` for *any* valid config, the
mapping is stable-sorted and JSON-round-trippable byte-for-byte, and
unknown keys / newer versions are rejected rather than ignored.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import BrownoutPolicy, RetryPolicy
from repro.nn.functional import CONV_BACKENDS
from repro.scheduler import CONFIG_MAPPING_VERSION, SLA, SchedulerConfig

# Floats drawn from JSON-exact values (repr round-trips losslessly, and
# hypothesis never produces NaN/inf here), so dataclass equality after a
# JSON round-trip is exact equality.
pos_float = st.floats(0.001, 10.0, allow_nan=False, allow_infinity=False)
small_float = st.floats(0.0, 0.05, allow_nan=False, allow_infinity=False)


@st.composite
def ladders(draw):
    """(rows_ladder, conv_backend_per_rung) — per-rung map covers a subset."""
    rungs = draw(
        st.one_of(
            st.none(),
            st.lists(st.integers(1, 64), min_size=1, max_size=4, unique=True).map(
                lambda rs: tuple(sorted(rs))
            ),
        )
    )
    if rungs is None:
        return None, None
    per_rung = draw(
        st.one_of(
            st.none(),
            st.tuples(
                *[
                    st.one_of(st.none(), st.sampled_from(CONV_BACKENDS))
                    for _ in rungs
                ]
            ).map(
                lambda backends: tuple(
                    (rows, backend)
                    for rows, backend in zip(rungs, backends)
                    if backend is not None
                )
                or None
            ),
        )
    )
    return rungs, per_rung


@st.composite
def brownouts(draw):
    enter_depth = draw(st.integers(8, 128))
    enter_miss = draw(st.floats(0.2, 0.9, allow_nan=False))
    return BrownoutPolicy(
        enter_queue_depth=enter_depth,
        enter_miss_rate=enter_miss,
        exit_queue_depth=draw(st.integers(1, enter_depth)),
        exit_miss_rate=draw(st.floats(0.0, enter_miss, allow_nan=False)),
        min_dwell_s=draw(small_float),
        shed_below_priority=draw(st.integers(0, 200)),
        clamp_width=draw(st.booleans()),
    )


@st.composite
def configs(draw):
    rungs, per_rung = draw(ladders())
    return SchedulerConfig(
        replicas=draw(st.integers(1, 8)),
        default_sla=SLA(
            deadline_s=draw(pos_float),
            priority=draw(st.integers(0, 100)),
            min_width=draw(st.one_of(st.none(), st.sampled_from(["lower25", "lower50"]))),
            max_width=draw(st.one_of(st.none(), st.sampled_from(["lower75", "lower100"]))),
        ),
        admission_headroom=draw(st.floats(0.5, 3.0, allow_nan=False)),
        enable_admission=draw(st.booleans()),
        enable_hedging=draw(st.booleans()),
        hedge_factor=draw(st.floats(1.5, 10.0, allow_nan=False)),
        hedge_min_s=draw(small_float),
        hedge_ratio=draw(st.floats(0.0, 1.0, allow_nan=False)),
        warmup=draw(st.booleans()),
        max_batch=draw(st.integers(1, 64)),
        max_delay_s=draw(small_float),
        compile_plans=draw(st.booleans()),
        plan_workspaces=draw(st.integers(1, 4)),
        conv_backend=draw(st.sampled_from(CONV_BACKENDS)),
        rows_ladder=rungs,
        conv_backend_per_rung=per_rung,
        replica_backend=draw(st.sampled_from(["thread", "process"])),
        supervise=draw(st.booleans()),
        restart_backoff_s=draw(small_float),
        restart_backoff_max_s=draw(pos_float),
        restart_budget=draw(st.integers(1, 5)),
        restart_window_s=draw(pos_float),
        retry_policy=draw(
            st.one_of(
                st.none(),
                st.builds(
                    RetryPolicy,
                    max_retries=st.integers(0, 10),
                    backoff_base_s=small_float,
                    backoff_factor=st.floats(1.0, 4.0, allow_nan=False),
                    backoff_max_s=small_float,
                ),
            )
        ),
        brownout=draw(st.one_of(st.none(), brownouts())),
    )


class TestRoundTrip:
    @given(config=configs())
    @settings(max_examples=80, deadline=None)
    def test_from_mapping_inverts_to_mapping(self, config):
        assert SchedulerConfig.from_mapping(config.to_mapping()) == config

    @given(config=configs())
    @settings(max_examples=40, deadline=None)
    def test_mapping_survives_json(self, config):
        wire = json.dumps(config.to_mapping(), sort_keys=True)
        assert SchedulerConfig.from_mapping(json.loads(wire)) == config

    @given(config=configs())
    @settings(max_examples=40, deadline=None)
    def test_mapping_is_stable_sorted_and_byte_stable(self, config):
        mapping = config.to_mapping()
        assert list(mapping) == sorted(mapping)
        assert json.dumps(mapping, sort_keys=True) == json.dumps(
            config.to_mapping(), sort_keys=True
        )

    def test_default_config_round_trips(self):
        config = SchedulerConfig()
        assert SchedulerConfig.from_mapping(config.to_mapping()) == config

    def test_empty_mapping_is_the_default_config(self):
        assert SchedulerConfig.from_mapping({}) == SchedulerConfig()


class TestPartialMappings:
    def test_partial_mapping_overrides_only_named_keys(self):
        config = SchedulerConfig.from_mapping({"replicas": 5, "max_batch": 8})
        assert config.replicas == 5
        assert config.max_batch == 8
        assert config.max_delay_s == SchedulerConfig().max_delay_s

    def test_dotted_sla_override(self):
        config = SchedulerConfig.from_mapping({"sla.deadline_s": 0.2})
        assert config.default_sla.deadline_s == 0.2
        assert config.default_sla.priority == 0

    def test_retry_knobs_imply_retry(self):
        config = SchedulerConfig.from_mapping({"retry.max_retries": 5})
        assert config.retry_policy is not None
        assert config.retry_policy.max_retries == 5

    def test_bare_retry_flag_uses_default_policy(self):
        config = SchedulerConfig.from_mapping({"retry": True})
        assert config.retry_policy == RetryPolicy()

    def test_brownout_knobs_imply_brownout(self):
        config = SchedulerConfig.from_mapping({"brownout.enter_queue_depth": 32})
        assert config.brownout is not None
        assert config.brownout.enter_queue_depth == 32

    def test_rows_ladder_list_becomes_tuple(self):
        config = SchedulerConfig.from_mapping(
            {"rows_ladder": [1, 8], "conv_backend_per_rung": [[1, "im2col"]]}
        )
        assert config.rows_ladder == (1, 8)
        assert config.conv_backend_per_rung == ((1, "im2col"),)


class TestRejection:
    def test_unknown_keys_rejected_with_names(self):
        with pytest.raises(ValueError, match=r"unknown config keys: \['replcas'\]"):
            SchedulerConfig.from_mapping({"replcas": 3})

    def test_unknown_dotted_knob_rejected(self):
        with pytest.raises(ValueError, match="retry.backof_base_s"):
            SchedulerConfig.from_mapping({"retry.backof_base_s": 0.01})

    def test_newer_version_rejected(self):
        with pytest.raises(ValueError, match="newer"):
            SchedulerConfig.from_mapping({"version": CONFIG_MAPPING_VERSION + 1})

    def test_non_int_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            SchedulerConfig.from_mapping({"version": "1"})
        with pytest.raises(ValueError, match="version"):
            SchedulerConfig.from_mapping({"version": True})

    def test_current_version_accepted(self):
        config = SchedulerConfig.from_mapping({"version": CONFIG_MAPPING_VERSION})
        assert config == SchedulerConfig()

    def test_disabled_retry_with_knobs_rejected(self):
        with pytest.raises(ValueError, match="retry is disabled"):
            SchedulerConfig.from_mapping({"retry": False, "retry.max_retries": 2})

    def test_disabled_brownout_with_knobs_rejected(self):
        with pytest.raises(ValueError, match="brownout is disabled"):
            SchedulerConfig.from_mapping(
                {"brownout": False, "brownout.enter_queue_depth": 8}
            )

    def test_invalid_values_still_validated(self):
        with pytest.raises(ValueError):
            SchedulerConfig.from_mapping({"replicas": 0})
        with pytest.raises(ValueError):
            SchedulerConfig.from_mapping({"conv_backend": "winograd"})
