"""Tests for dataset persistence and caching."""

import os

import numpy as np
import pytest

from repro.data import SynthMNISTConfig
from repro.data.io import load_dataset, load_synth_mnist_cached, save_dataset
from repro.data.dataset import ArrayDataset


class TestSaveLoad:
    def test_roundtrip(self, tmp_path, rng):
        ds = ArrayDataset(rng.standard_normal((5, 1, 8, 8)), rng.integers(0, 3, 5))
        path = str(tmp_path / "ds.npz")
        save_dataset(path, ds)
        loaded = load_dataset(path)
        np.testing.assert_array_equal(loaded.images, ds.images)
        np.testing.assert_array_equal(loaded.labels, ds.labels)

    def test_creates_directories(self, tmp_path, rng):
        ds = ArrayDataset(rng.standard_normal((2, 1, 4, 4)), rng.integers(0, 2, 2))
        path = str(tmp_path / "a" / "b" / "ds.npz")
        save_dataset(path, ds)
        assert len(load_dataset(path)) == 2


class TestCachedLoading:
    def test_cache_hit_is_identical(self, tmp_path):
        cfg = SynthMNISTConfig(num_train=30, num_test=10, seed=5)
        cache = str(tmp_path / "cache")
        train1, test1 = load_synth_mnist_cached(cfg, cache_dir=cache)
        files_after_first = set(os.listdir(cache))
        train2, test2 = load_synth_mnist_cached(cfg, cache_dir=cache)
        assert set(os.listdir(cache)) == files_after_first  # no regeneration
        np.testing.assert_array_equal(train1.images, train2.images)
        np.testing.assert_array_equal(test1.labels, test2.labels)

    def test_different_configs_get_different_cache_entries(self, tmp_path):
        cache = str(tmp_path / "cache")
        load_synth_mnist_cached(SynthMNISTConfig(num_train=20, num_test=10, seed=1), cache_dir=cache)
        load_synth_mnist_cached(SynthMNISTConfig(num_train=20, num_test=10, seed=2), cache_dir=cache)
        assert len(os.listdir(cache)) == 4  # 2 configs x (train, test)

    def test_cached_matches_uncached(self, tmp_path):
        from repro.data import load_synth_mnist

        cfg = SynthMNISTConfig(num_train=25, num_test=10, seed=9)
        cached_train, _ = load_synth_mnist_cached(cfg, cache_dir=str(tmp_path))
        direct_train, _ = load_synth_mnist(cfg)
        np.testing.assert_array_equal(cached_train.images, direct_train.images)
