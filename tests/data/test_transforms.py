"""Tests for image transforms."""

import numpy as np
import pytest

from repro.data.transforms import (
    AdditiveNoise,
    Compose,
    ContrastJitter,
    ElasticDistortion,
    GaussianBlur,
    RandomAffine,
    default_augmentation,
)
from repro.utils import make_rng


def sample_image(rng) -> np.ndarray:
    img = np.zeros((28, 28))
    img[8:20, 10:18] = 1.0
    return img


class TestRandomAffine:
    def test_shape_preserved(self, rng):
        out = RandomAffine()(sample_image(rng), rng)
        assert out.shape == (28, 28)

    def test_identity_limit(self, rng):
        t = RandomAffine(max_rotation_deg=0, scale_range=(1.0, 1.0), max_shift=0)
        img = sample_image(rng)
        np.testing.assert_allclose(t(img, rng), img, atol=1e-8)

    def test_deterministic_per_seed(self):
        img = sample_image(make_rng(0))
        t = RandomAffine()
        out1 = t(img, make_rng(5))
        out2 = t(img, make_rng(5))
        np.testing.assert_array_equal(out1, out2)

    def test_ink_roughly_preserved(self, rng):
        t = RandomAffine(max_rotation_deg=10, scale_range=(0.95, 1.05), max_shift=1.5)
        img = sample_image(rng)
        out = t(img, rng)
        assert 0.7 * img.sum() < out.sum() < 1.3 * img.sum()

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomAffine(max_rotation_deg=-1)
        with pytest.raises(ValueError):
            RandomAffine(scale_range=(0.0, 1.0))


class TestNoiseAndBlur:
    def test_noise_keeps_range(self, rng):
        out = AdditiveNoise(std=0.3)(sample_image(rng), rng)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_noise_zero_std_identity(self, rng):
        img = sample_image(rng)
        np.testing.assert_array_equal(AdditiveNoise(std=0.0)(img, rng), img)

    def test_blur_smooths(self, rng):
        img = sample_image(rng)
        out = GaussianBlur(sigma_range=(1.0, 1.0))(img, rng)
        # Total variation shrinks under smoothing.
        tv = lambda a: np.abs(np.diff(a, axis=0)).sum() + np.abs(np.diff(a, axis=1)).sum()
        assert tv(out) < tv(img)

    def test_blur_preserves_mass_approximately(self, rng):
        img = sample_image(rng)
        out = GaussianBlur(sigma_range=(0.8, 0.8))(img, rng)
        assert out.sum() == pytest.approx(img.sum(), rel=0.05)


class TestElasticAndContrast:
    def test_elastic_shape_and_range(self, rng):
        out = ElasticDistortion(alpha=4.0)(sample_image(rng), rng)
        assert out.shape == (28, 28)
        assert np.isfinite(out).all()

    def test_elastic_alpha_zero_identity(self, rng):
        img = sample_image(rng)
        np.testing.assert_array_equal(ElasticDistortion(alpha=0.0)(img, rng), img)

    def test_contrast_preserves_extremes(self, rng):
        img = sample_image(rng)
        out = ContrastJitter()(img, rng)
        # 0 -> 0 and 1 -> 1 under gamma mapping.
        assert out.min() == pytest.approx(0.0)
        assert out.max() == pytest.approx(1.0)


class TestCompose:
    def test_applies_in_order(self, rng):
        calls = []

        def t1(img, r):
            calls.append(1)
            return img

        def t2(img, r):
            calls.append(2)
            return img

        Compose([t1, t2])(sample_image(rng), rng)
        assert calls == [1, 2]

    def test_default_augmentation_runs(self, rng):
        out = default_augmentation()(sample_image(rng), rng)
        assert out.shape == (28, 28)
        assert np.isfinite(out).all()
