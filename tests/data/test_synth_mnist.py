"""Tests for the synthetic MNIST generator."""

import numpy as np
import pytest

from repro.data import SynthMNISTConfig, generate_images, load_synth_mnist, render_digit
from repro.utils import make_rng


class TestRenderDigit:
    def test_shape_and_range(self, rng):
        img = render_digit(3, rng)
        assert img.shape == (28, 28)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_has_ink(self, rng):
        assert render_digit(8, rng).sum() > 5.0

    def test_variability(self):
        rng = make_rng(0)
        a = render_digit(5, rng)
        b = render_digit(5, rng)
        assert not np.array_equal(a, b)


class TestGenerateImages:
    def test_shapes(self, rng):
        images, labels = generate_images(30, rng)
        assert images.shape == (30, 1, 28, 28)
        assert labels.shape == (30,)
        assert labels.dtype == np.int64

    def test_labels_in_range(self, rng):
        _, labels = generate_images(100, rng)
        assert labels.min() >= 0 and labels.max() <= 9

    def test_deterministic_per_seed(self):
        im1, l1 = generate_images(10, make_rng(7))
        im2, l2 = generate_images(10, make_rng(7))
        np.testing.assert_array_equal(im1, im2)
        np.testing.assert_array_equal(l1, l2)

    def test_invalid_num(self, rng):
        with pytest.raises(ValueError):
            generate_images(0, rng)


class TestLoadSynthMnist:
    def test_sizes_and_determinism(self):
        cfg = SynthMNISTConfig(num_train=50, num_test=20, seed=3)
        train1, test1 = load_synth_mnist(cfg)
        train2, test2 = load_synth_mnist(cfg)
        assert len(train1) == 50 and len(test1) == 20
        np.testing.assert_array_equal(train1.images, train2.images)
        np.testing.assert_array_equal(test1.labels, test2.labels)

    def test_train_test_disjoint_streams(self):
        cfg = SynthMNISTConfig(num_train=30, num_test=30, seed=3)
        train, test = load_synth_mnist(cfg)
        assert not np.array_equal(train.images[:10], test.images[:10])

    def test_different_seeds_differ(self):
        a, _ = load_synth_mnist(SynthMNISTConfig(num_train=10, num_test=10, seed=1))
        b, _ = load_synth_mnist(SynthMNISTConfig(num_train=10, num_test=10, seed=2))
        assert not np.array_equal(a.images, b.images)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SynthMNISTConfig(num_train=0)
        with pytest.raises(ValueError):
            SynthMNISTConfig(image_size=10)

    def test_classes_are_separable_by_template_matching(self):
        """The dataset must be learnable: nearest-mean-template classification
        on clean-ish data should beat chance by a wide margin."""
        train, test = load_synth_mnist(SynthMNISTConfig(num_train=400, num_test=100, seed=0))
        templates = np.stack(
            [train.images[train.labels == d].mean(axis=0)[0] for d in range(10)]
        )
        correct = 0
        for i in range(len(test)):
            dists = ((templates - test.images[i, 0]) ** 2).sum(axis=(1, 2))
            correct += int(dists.argmin() == test.labels[i])
        assert correct / len(test) > 0.5  # chance is 0.1
