"""Tests for dataset container and batch loader."""

import numpy as np
import pytest

from repro.data import ArrayDataset, DataLoader
from repro.utils import make_rng


def toy_dataset(n=20) -> ArrayDataset:
    images = np.arange(n, dtype=float).reshape(n, 1, 1, 1)
    labels = np.arange(n) % 3
    return ArrayDataset(images, labels)


class TestArrayDataset:
    def test_len_and_getitem(self):
        ds = toy_dataset(10)
        assert len(ds) == 10
        x, y = ds[np.array([1, 3])]
        np.testing.assert_array_equal(x[:, 0, 0, 0], [1.0, 3.0])
        np.testing.assert_array_equal(y, [1, 0])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 1, 2)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 1, 2, 2)), np.zeros(4, dtype=int))

    def test_split_partitions_everything(self, rng):
        ds = toy_dataset(20)
        a, b = ds.split(0.7, rng)
        assert len(a) == 14 and len(b) == 6
        together = sorted(np.concatenate([a.images, b.images]).ravel().tolist())
        assert together == sorted(ds.images.ravel().tolist())

    def test_split_fraction_bounds(self, rng):
        with pytest.raises(ValueError):
            toy_dataset().split(0.0, rng)
        with pytest.raises(ValueError):
            toy_dataset().split(1.0, rng)

    def test_split_requires_rng(self):
        with pytest.raises(TypeError):
            toy_dataset().split(0.5, 42)

    def test_class_counts(self):
        counts = toy_dataset(9).class_counts()
        np.testing.assert_array_equal(counts, [3, 3, 3])

    def test_subset(self):
        ds = toy_dataset(10)
        sub = ds.subset(np.array([0, 5]))
        assert len(sub) == 2
        np.testing.assert_array_equal(sub.images[:, 0, 0, 0], [0.0, 5.0])


class TestDataLoader:
    def test_batch_shapes(self):
        loader = DataLoader(toy_dataset(10), batch_size=4)
        sizes = [len(y) for _, y in loader]
        assert sizes == [4, 4, 2]
        assert len(loader) == 3

    def test_drop_last(self):
        loader = DataLoader(toy_dataset(10), batch_size=4, drop_last=True)
        sizes = [len(y) for _, y in loader]
        assert sizes == [4, 4]
        assert len(loader) == 2

    def test_no_shuffle_preserves_order(self):
        loader = DataLoader(toy_dataset(6), batch_size=3)
        first_batch = next(iter(loader))[0]
        np.testing.assert_array_equal(first_batch[:, 0, 0, 0], [0, 1, 2])

    def test_shuffle_covers_everything(self, rng):
        loader = DataLoader(toy_dataset(12), batch_size=5, shuffle=True, rng=rng)
        seen = np.concatenate([x[:, 0, 0, 0] for x, _ in loader])
        assert sorted(seen.tolist()) == list(range(12))

    def test_shuffle_differs_across_epochs(self):
        loader = DataLoader(toy_dataset(32), batch_size=32, shuffle=True, rng=make_rng(0))
        epoch1 = next(iter(loader))[0].ravel().copy()
        epoch2 = next(iter(loader))[0].ravel().copy()
        assert not np.array_equal(epoch1, epoch2)

    def test_shuffle_without_rng_rejected(self):
        with pytest.raises(TypeError):
            DataLoader(toy_dataset(), batch_size=2, shuffle=True)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(toy_dataset(), batch_size=0)
