"""Tests for the digit glyph artwork."""

import numpy as np
import pytest

from repro.data.glyphs import GLYPH_HEIGHT, GLYPH_WIDTH, NUM_CLASSES, all_glyphs, glyph, upsample


class TestGlyphs:
    def test_all_digits_present(self):
        stack = all_glyphs()
        assert stack.shape == (NUM_CLASSES, GLYPH_HEIGHT, GLYPH_WIDTH)

    def test_binary_values(self):
        stack = all_glyphs()
        assert set(np.unique(stack)) <= {0.0, 1.0}

    def test_every_glyph_has_ink(self):
        for d in range(10):
            assert glyph(d).sum() >= 7, f"digit {d} too sparse"

    def test_glyphs_are_distinct(self):
        stack = all_glyphs()
        for a in range(10):
            for b in range(a + 1, 10):
                assert not np.array_equal(stack[a], stack[b]), f"{a} == {b}"

    def test_invalid_digit_rejected(self):
        with pytest.raises(ValueError):
            glyph(10)
        with pytest.raises(ValueError):
            glyph(-1)

    def test_upsample(self):
        up = upsample(glyph(1), 3)
        assert up.shape == (21, 15)
        # Ink mass scales with factor^2.
        assert up.sum() == glyph(1).sum() * 9

    def test_upsample_invalid_factor(self):
        with pytest.raises(ValueError):
            upsample(glyph(0), 0)
