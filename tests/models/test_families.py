"""Tests for the three model families' certification semantics."""

import numpy as np
import pytest

from repro.models import DynamicDNN, FluidDyDNN, ModelFamily, StaticDNN, build_model
from repro.slimmable import paper_width_spec
from repro.utils import make_rng


class TestCertifications:
    def test_static(self):
        model = StaticDNN.create(rng=make_rng(0))
        assert model.certified_standalone == ()
        assert model.certified_combined == ("lower100",)

    def test_dynamic(self):
        model = DynamicDNN.create(rng=make_rng(0))
        assert model.certified_standalone == ("lower25", "lower50", "lower75", "lower100")
        assert "upper50" not in model.certified_standalone

    def test_fluid(self):
        model = FluidDyDNN.create(rng=make_rng(0))
        assert "upper25" in model.certified_standalone
        assert "upper50" in model.certified_standalone
        assert set(model.certified_combined) == {"lower25", "lower50", "lower75", "lower100"}

    def test_is_certified_helpers(self):
        model = FluidDyDNN.create(rng=make_rng(0))
        assert model.is_standalone_certified("upper50")
        assert not StaticDNN.create(rng=make_rng(0)).is_standalone_certified("lower50")

    def test_fluid_independent_pair(self):
        model = FluidDyDNN.create(rng=make_rng(0))
        assert model.independent_pair() == ("lower50", "upper50")


class TestBuildModel:
    def test_families(self):
        for family, cls in [("static", StaticDNN), ("dynamic", DynamicDNN), ("fluid", FluidDyDNN)]:
            model = build_model(family, rng=make_rng(1))
            assert isinstance(model, cls)
            assert model.family_name == family

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            build_model("quantum", rng=make_rng(0))

    def test_rng_required(self):
        with pytest.raises(TypeError):
            build_model("fluid", rng=7)

    def test_custom_width_spec(self, small_spec):
        model = build_model("fluid", small_spec, rng=make_rng(0))
        assert model.width_spec.max_width == 8


class TestEvaluation:
    def test_evaluate_matches_manual(self, trained_models, tiny_data):
        _, test = tiny_data
        model = trained_models["fluid"]
        view = model.view("lower50")
        view.train(False)
        logits = view(test.images)
        manual = float((logits.argmax(axis=1) == test.labels).mean())
        assert model.evaluate("lower50", test) == pytest.approx(manual)

    def test_evaluate_all_covers_family(self, trained_models, tiny_data):
        _, test = tiny_data
        accs = trained_models["fluid"].evaluate_all(test)
        assert set(accs) == {
            "lower25", "lower50", "lower75", "lower100", "upper25", "upper50",
        }
        assert all(0.0 <= v <= 1.0 for v in accs.values())

    def test_batching_invariance(self, trained_models, tiny_data):
        _, test = tiny_data
        model = trained_models["static"]
        assert model.evaluate("lower100", test, batch_size=32) == pytest.approx(
            model.evaluate("lower100", test, batch_size=1000)
        )

    def test_state_dict_roundtrip(self, trained_models, tiny_data):
        _, test = tiny_data
        source = trained_models["fluid"]
        clone = FluidDyDNN.create(rng=make_rng(99))
        clone.load_state_dict(source.state_dict())
        assert clone.evaluate("upper50", test) == pytest.approx(
            source.evaluate("upper50", test)
        )

    def test_unknown_certification_rejected(self):
        net_model = build_model("fluid", rng=make_rng(0))
        with pytest.raises(ValueError):
            ModelFamily(net_model.net, certified_standalone=("lower33",), certified_combined=())
