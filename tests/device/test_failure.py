"""Tests for failure schedules and crash counters."""

import pytest

from repro.device import (
    CrashCounter,
    FailureEvent,
    FailureSchedule,
    no_failures,
    single_failure,
)


class TestFailureEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            FailureEvent(-1.0, "master")
        with pytest.raises(ValueError):
            FailureEvent(1.0, "master", kind="explode")


class TestFailureSchedule:
    def test_alive_before_crash(self):
        sched = single_failure("worker", at_s=5.0)
        assert sched.is_alive("worker", 4.9)
        assert not sched.is_alive("worker", 5.0)
        assert sched.is_alive("master", 100.0)

    def test_recovery(self):
        sched = FailureSchedule(
            [FailureEvent(2.0, "worker", "crash"), FailureEvent(8.0, "worker", "recover")]
        )
        assert sched.is_alive("worker", 1.0)
        assert not sched.is_alive("worker", 5.0)
        assert sched.is_alive("worker", 9.0)

    def test_events_sorted_on_construction(self):
        sched = FailureSchedule(
            [FailureEvent(8.0, "a", "recover"), FailureEvent(2.0, "a", "crash")]
        )
        assert [e.time_s for e in sched.events] == [2.0, 8.0]

    def test_add_keeps_order(self):
        sched = no_failures()
        sched.add(FailureEvent(5.0, "a"))
        sched.add(FailureEvent(1.0, "b"))
        assert [e.time_s for e in sched.events] == [1.0, 5.0]

    def test_crash_time(self):
        sched = single_failure("worker", 3.0)
        assert sched.crash_time("worker") == 3.0
        assert sched.crash_time("master") is None

    def test_no_failures(self):
        sched = no_failures()
        assert sched.is_alive("anything", 1e9)


class TestCrashCounter:
    def test_never_crashes_by_default(self):
        counter = CrashCounter()
        assert not any(counter.record_request() for _ in range(100))

    def test_crashes_after_n(self):
        counter = CrashCounter(crash_after_requests=2)
        assert not counter.record_request()
        assert not counter.record_request()
        assert counter.record_request()

    def test_crash_after_zero_is_immediate(self):
        assert CrashCounter(0).record_request()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CrashCounter(-1)
