"""Tests for the emulated edge device."""

import numpy as np
import pytest

from repro.device import CrashCounter, DeviceFailed, EmulatedDevice, jetson_nx_master
from repro.utils import make_rng


@pytest.fixture
def device(paper_net):
    return EmulatedDevice(jetson_nx_master(), paper_net)


class TestExecution:
    def test_execute_returns_logits(self, device, rng):
        spec = device.net.width_spec.find("lower50")
        x = rng.standard_normal((3, 1, 28, 28))
        logits = device.execute_subnet(spec, x)
        assert logits.shape == (3, 10)
        assert device.requests_served == 1

    def test_busy_time_accumulates(self, device, rng):
        spec = device.net.width_spec.find("lower50")
        x = rng.standard_normal((2, 1, 28, 28))
        device.execute_subnet(spec, x)
        first = device.busy_time_s
        assert first > 0
        device.execute_subnet(spec, x)
        assert device.busy_time_s == pytest.approx(2 * first)

    def test_estimated_latency_matches_profile(self, device):
        spec = device.net.width_spec.find("lower50")
        assert 1.0 / device.estimated_latency(spec) == pytest.approx(14.4, rel=0.005)

    def test_execution_matches_direct_view(self, device, rng):
        spec = device.net.width_spec.find("upper50")
        x = rng.standard_normal((2, 1, 28, 28))
        view = device.net.view(spec)
        view.train(False)
        np.testing.assert_array_equal(device.execute_subnet(spec, x), view(x))


class TestFailures:
    def test_crashed_device_refuses_work(self, device, rng):
        device.crash()
        spec = device.net.width_spec.find("lower50")
        with pytest.raises(DeviceFailed):
            device.execute_subnet(spec, rng.standard_normal((1, 1, 28, 28)))

    def test_recover(self, device, rng):
        device.crash()
        device.recover()
        spec = device.net.width_spec.find("lower50")
        device.execute_subnet(spec, rng.standard_normal((1, 1, 28, 28)))

    def test_crash_counter_mid_stream(self, paper_net, rng):
        device = EmulatedDevice(
            jetson_nx_master(), paper_net, crash_counter=CrashCounter(1)
        )
        spec = device.net.width_spec.find("lower25")
        x = rng.standard_normal((1, 1, 28, 28))
        device.execute_subnet(spec, x)
        with pytest.raises(DeviceFailed):
            device.execute_subnet(spec, x)
        assert not device.alive


class TestCapacity:
    def test_can_host_respects_capacity(self, device):
        ws = device.net.width_spec
        assert device.can_host(ws.find("lower50"))
        assert not device.can_host(ws.find("lower100"))
