"""Tests for device profiles and the latency model."""

import pytest

from repro.device import DeviceProfile, jetson_nx_master, jetson_nx_worker


class TestDeviceProfile:
    def test_compute_time_formula(self):
        p = DeviceProfile("d", flops_per_sec=1e6, layer_overhead_s=0.01, memory_capacity_params=100)
        assert p.compute_time(1e6, 4) == pytest.approx(1.0 + 0.04)

    def test_zero_flops_gives_overhead_only(self):
        p = DeviceProfile("d", 1e6, 0.01, 100)
        assert p.compute_time(0, 3) == pytest.approx(0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceProfile("d", 0, 0.01, 100)
        with pytest.raises(ValueError):
            DeviceProfile("d", 1e6, -0.1, 100)
        with pytest.raises(ValueError):
            DeviceProfile("d", 1e6, 0.1, 0)
        p = DeviceProfile("d", 1e6, 0.1, 10)
        with pytest.raises(ValueError):
            p.compute_time(-1, 0)

    def test_scaled(self):
        p = DeviceProfile("d", 1e6, 0.02, 100)
        fast = p.scaled(2.0)
        assert fast.flops_per_sec == 2e6
        assert fast.layer_overhead_s == 0.01
        # Scaling halves every latency.
        assert fast.compute_time(1e6, 4) == pytest.approx(p.compute_time(1e6, 4) / 2)


class TestCalibratedProfiles:
    def test_paper_lone_master_operating_point(self):
        # Lone 50% model: 402,976 FLOP over 4 layers -> 14.4 image/s.
        t = jetson_nx_master().compute_time(402976, 4)
        assert 1.0 / t == pytest.approx(14.4, rel=0.005)

    def test_paper_lone_worker_operating_point(self):
        t = jetson_nx_worker().compute_time(402976, 4)
        assert 1.0 / t == pytest.approx(13.9, rel=0.005)

    def test_capacity_excludes_full_model(self):
        # The paper's premise: a single device cannot host the 100% model
        # (12,650 parameters) but can host the 50% one (5,178).
        for profile in (jetson_nx_master(), jetson_nx_worker()):
            assert profile.memory_capacity_params < 12650
            assert profile.memory_capacity_params > 5178
