"""Tests for per-layer cost accounting."""

import pytest

from repro.device import (
    input_image_bytes,
    partitioned_device_costs,
    subnet_flops,
    subnet_layer_costs,
    subnet_num_layers,
    subnet_param_count,
)


class TestLayerCosts:
    def test_paper_full_model_flops(self, paper_net):
        spec = paper_net.width_spec.full()
        # conv1: 2*28*28*16*1*9; conv2: 2*14*14*16*16*9; conv3: 2*7*7*16*16*9; fc: 2*784*10
        expected = 225792 + 903168 + 225792 + 15680
        assert subnet_flops(paper_net, spec) == expected

    def test_paper_half_model_flops(self, paper_net):
        spec = paper_net.width_spec.find("lower50")
        expected = 112896 + 225792 + 56448 + 7840
        assert subnet_flops(paper_net, spec) == expected
        assert expected == 402976  # the calibration constant

    def test_upper50_flops_equal_lower50(self, paper_net):
        ws = paper_net.width_spec
        assert subnet_flops(paper_net, ws.find("upper50")) == subnet_flops(
            paper_net, ws.find("lower50")
        )

    def test_layer_costs_structure(self, paper_net):
        costs = subnet_layer_costs(paper_net, paper_net.width_spec.full())
        assert [c.name for c in costs] == ["conv0", "conv1", "conv2", "fc"]
        # Pooled spatial sizes: 14x14, 7x7, 7x7, then 10 logits.
        assert [c.out_spatial for c in costs] == [196, 49, 49, 1]
        assert costs[0].activation_bytes == 16 * 196 * 4

    def test_num_layers(self, paper_net):
        assert subnet_num_layers(paper_net) == 4


class TestPartitionedCosts:
    def test_halves_sum_to_total(self, paper_net):
        spec = paper_net.width_spec.full()
        total = subnet_flops(paper_net, spec)
        master, worker, _ = partitioned_device_costs(paper_net, spec, 8)
        assert sum(c.flops for c in master) + sum(c.flops for c in worker) == total

    def test_even_split_gives_equal_halves(self, paper_net):
        spec = paper_net.width_spec.full()
        master, worker, _ = partitioned_device_costs(paper_net, spec, 8)
        assert sum(c.flops for c in master) == sum(c.flops for c in worker) == 685216

    def test_exchange_sizes(self, paper_net):
        spec = paper_net.width_spec.full()
        _, _, exchanges = partitioned_device_costs(paper_net, spec, 8)
        # Pooled half-activations: 8*14*14*4, 8*7*7*4, 8*7*7*4, then 10 logits.
        assert exchanges == [6272, 1568, 1568, 40]

    def test_uneven_split(self, paper_net):
        spec = paper_net.width_spec.full()
        master, worker, exchanges = partitioned_device_costs(paper_net, spec, 4)
        assert master[0].out_channels == 4
        assert worker[0].out_channels == 12
        # Exchange bounded by the larger half.
        assert exchanges[0] == 12 * 196 * 4

    def test_split_outside_spec_rejected(self, paper_net):
        spec = paper_net.width_spec.find("lower50")  # channels [0, 8)
        with pytest.raises(ValueError):
            partitioned_device_costs(paper_net, spec, 8)


class TestParamCount:
    def test_lower50_count(self, paper_net):
        spec = paper_net.width_spec.find("lower50")
        # conv1: 8*1*9+8; conv2/3: 8*8*9+8; fc: 10*(392+1)
        assert subnet_param_count(paper_net, spec) == 80 + 584 + 584 + 3930

    def test_full_count_matches_module(self, paper_net):
        spec = paper_net.width_spec.full()
        assert subnet_param_count(paper_net, spec) == paper_net.num_parameters()

    def test_upper_equals_lower_at_same_width(self, paper_net):
        ws = paper_net.width_spec
        assert subnet_param_count(paper_net, ws.find("upper50")) == subnet_param_count(
            paper_net, ws.find("lower50")
        )


class TestInputBytes:
    def test_image_bytes(self, paper_net):
        assert input_image_bytes(paper_net) == 28 * 28 * 4
