"""Tests for the energy model extension."""

import pytest

from repro.comm import CommLatencyModel
from repro.device import EnergyModel, PowerProfile, jetson_nx_master, jetson_nx_power, jetson_nx_worker
from repro.distributed import MASTER, SystemThroughputModel, ThroughputBreakdown


@pytest.fixture
def energy():
    return EnergyModel(jetson_nx_power(), jetson_nx_power())


@pytest.fixture
def tm(paper_net):
    return SystemThroughputModel(
        paper_net, jetson_nx_master(), jetson_nx_worker(), CommLatencyModel()
    )


class TestPowerProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            PowerProfile("p", idle_w=-1, active_w=5, comm_w=1)
        with pytest.raises(ValueError):
            PowerProfile("p", idle_w=5, active_w=4, comm_w=1)
        with pytest.raises(ValueError):
            PowerProfile("p", idle_w=1, active_w=0, comm_w=1)


class TestEnergyModel:
    def test_failed_deployment_draws_nothing(self, energy):
        dead = ThroughputBreakdown("failed", 0, 0, 0, 0)
        assert energy.joules_per_image(dead) == 0.0

    def test_ht_is_most_efficient_two_device_mode(self, energy, tm, paper_net):
        """The extension's headline: Fluid HT uses both devices' active time
        productively, so it costs the least energy per image of any
        two-device deployment."""
        ws = paper_net.width_spec
        ha = energy.joules_per_image(tm.ha_throughput(ws.full()))
        ht = energy.joules_per_image(
            tm.ht_throughput(ws.find("lower50"), ws.find("upper50"))
        )
        parked = energy.joules_per_image(
            tm.standalone_throughput(MASTER, ws.find("lower50")), devices_online=2
        )
        assert ht < parked < ha

    def test_ht_matches_lone_device_per_image(self, energy, tm, paper_net):
        """Two saturated devices cost about the same per image as one."""
        ws = paper_net.width_spec
        ht = energy.joules_per_image(
            tm.ht_throughput(ws.find("lower50"), ws.find("upper50"))
        )
        solo = energy.joules_per_image(
            tm.standalone_throughput(MASTER, ws.find("lower50")), devices_online=1
        )
        assert ht == pytest.approx(solo, rel=0.05)

    def test_ha_breakdown_components(self, energy, tm, paper_net):
        ha = energy.for_breakdown(tm.ha_throughput(paper_net.width_spec.full()))
        assert ha.compute_j > 0
        assert ha.comm_j > 0
        assert ha.idle_j >= 0
        assert ha.total_j == pytest.approx(ha.compute_j + ha.comm_j + ha.idle_j)

    def test_dead_worker_saves_idle_power(self, energy, tm, paper_net):
        solo = tm.standalone_throughput(MASTER, paper_net.width_spec.find("lower50"))
        one = energy.joules_per_image(solo, devices_online=1)
        two = energy.joules_per_image(solo, devices_online=2)
        assert one < two

    def test_efficiency_inverse_of_joules(self, energy, tm, paper_net):
        ha = tm.ha_throughput(paper_net.width_spec.full())
        assert energy.efficiency_images_per_joule(ha) == pytest.approx(
            1.0 / energy.joules_per_image(ha)
        )
