"""Smoke tests: the fast example scripts must run end to end.

The training-heavy examples (quickstart, tcp_cluster_demo, fig2_report)
are exercised manually / in benchmarks; here we run the second-scale ones
as subprocesses exactly as a user would.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
SRC_DIR = os.path.join(os.path.dirname(__file__), "..", "src")


def run_example(name: str, *args: str) -> str:
    # Examples must run from a plain checkout: put src/ on the child's path
    # whether or not the package is installed.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.abspath(SRC_DIR), env.get("PYTHONPATH")) if p
    )
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name), *args],
        capture_output=True,
        text=True,
        timeout=240,
        env=env,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestFastExamples:
    def test_failover_demo(self):
        out = run_example("failover_demo.py")
        assert "FLUID DNN" in out
        assert "downtime: 0s" in out          # fluid rides everything out
        assert "downtime: 30s" in out         # static is down for both failures

    def test_modes_demo(self):
        out = run_example("modes_demo.py")
        assert "HT/HA throughput ratio: 2.55x" in out
        assert "28.3" in out and "11.1" in out

    def test_scaling_energy_demo(self):
        out = run_example("scaling_energy_demo.py")
        assert "J/img" in out
        assert "k=1:" in out  # reliability decay table rendered


class TestExampleHygiene:
    def test_all_examples_have_docstrings_and_main(self):
        for name in os.listdir(EXAMPLES_DIR):
            if not name.endswith(".py"):
                continue
            source = open(os.path.join(EXAMPLES_DIR, name)).read()
            assert source.startswith('"""'), f"{name} missing module docstring"
            assert '__name__ == "__main__"' in source, f"{name} missing main guard"
