"""Search-space enumeration and the histogram-derived dimensions."""

import pytest

from repro.tuning import (
    SHIFTED_GEMM_MIN_ROWS,
    SearchSpace,
    backends_for_rungs,
    rungs_from_histogram,
)


class TestSearchSpace:
    def test_coarse_candidates_cover_the_grid(self):
        space = SearchSpace.small()
        candidates = space.coarse_candidates()
        assert len(candidates) == (
            len(space.replicas)
            * len(space.max_batch)
            * len(space.max_delay_s)
            * len(space.admission_headroom)
            * len(space.brownout_enter_depth)
        )
        # Deterministic order: same space, same list.
        assert candidates == SearchSpace.small().coarse_candidates()

    def test_brownout_depth_expands_to_policy_keys(self):
        space = SearchSpace(brownout_enter_depth=(32,))
        for mapping in space.coarse_candidates():
            assert mapping["brownout"] is True
            assert mapping["brownout.enter_queue_depth"] == 32
            assert mapping["brownout.exit_queue_depth"] == 8

    def test_no_brownout_leaves_keys_absent(self):
        space = SearchSpace(brownout_enter_depth=(None,))
        for mapping in space.coarse_candidates():
            assert "brownout" not in mapping

    def test_refine_variants_vary_only_carried_knobs(self):
        space = SearchSpace.small()
        base = {"replicas": 2, "max_batch": 16}
        variants = space.refine_variants(base)
        assert len(variants) == 1  # small() pins each carried dim
        space = SearchSpace(hedge_ratio=(0.1, 0.2), retry=(True, False))
        variants = space.refine_variants(base)
        assert len(variants) == 2 * 2 * len(space.restart_backoff_s)
        for variant in variants:
            assert variant["replicas"] == 2 and variant["max_batch"] == 16
            assert {"hedge_ratio", "retry", "restart_backoff_s"} <= set(variant)

    def test_empty_dimension_rejected(self):
        with pytest.raises(ValueError, match="replicas"):
            SearchSpace(replicas=())

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace(replicas=(0,))
        with pytest.raises(ValueError):
            SearchSpace(max_batch=(-1,))
        with pytest.raises(ValueError):
            SearchSpace(max_delay_s=(-0.001,))


class TestDerivedDimensions:
    def test_rungs_from_percentiles(self):
        # p50 lands on 1, p90 on 8: ladder is (1, 8, max_batch).
        histogram = {1: 60, 8: 35, 16: 5}
        assert rungs_from_histogram(histogram, 32) == (1, 8, 32)

    def test_empty_histogram_means_no_ladder(self):
        assert rungs_from_histogram({}, 32) is None

    def test_all_at_ceiling_means_no_ladder(self):
        assert rungs_from_histogram({32: 100}, 32) is None

    def test_rungs_clamped_to_max_batch(self):
        # Percentiles above the ceiling clamp to it (and then dedupe away).
        assert rungs_from_histogram({64: 100}, 32) is None
        assert rungs_from_histogram({1: 60, 64: 40}, 32) == (1, 32)

    def test_backends_split_at_the_bench_plan_rule(self):
        backends = dict(backends_for_rungs((1, 4, 8, 32)))
        for rows, backend in backends.items():
            expected = "im2col" if rows < SHIFTED_GEMM_MIN_ROWS else "shifted-gemm"
            assert backend == expected
