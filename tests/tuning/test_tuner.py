"""The offline autotuner: determinism, improvement, parallel parity, artifact."""

import json

import pytest

from repro.faults import faulty_replayer
from repro.models import build_model
from repro.scheduler import SchedulerConfig
from repro.trace import TraceReplayer
from repro.tuning import (
    SearchSpace,
    dumps,
    load_config_mapping,
    load_scheduler_config,
    read_tuned_config,
    tune,
    write_tuned_config,
)
from repro.utils import make_rng


@pytest.fixture(scope="module")
def model():
    return build_model("fluid", rng=make_rng(0))


def small_tune(model, scenario="multi_tenant", **overrides):
    kwargs = dict(
        seed=0, space=SearchSpace.small(), workers=1, validate=False
    )
    kwargs.update(overrides)
    return tune(TraceReplayer.from_scenario(scenario), model, **kwargs)


class TestTune:
    def test_tuned_beats_default_on_saturating_trace(self, model):
        result = small_tune(model)
        assert result.improved
        assert result.tuned.miss_rate < result.baseline.miss_rate
        # The leaderboard is sorted best-first and the winner heads it.
        scores = [e.score for e in result.leaderboard]
        assert scores == sorted(scores)

    def test_deterministic_for_fixed_seed(self, model):
        first = small_tune(model)
        second = small_tune(model)
        assert dumps(first) == dumps(second)

    def test_serial_equals_parallel(self, model):
        serial = small_tune(model, workers=1)
        parallel = small_tune(model, workers=2)
        assert dumps(serial) == dumps(parallel)

    def test_validation_reranks_near_ties_by_zoo(self, model):
        result = small_tune(model, validate=True)
        if result.validation is not None:
            zoo_miss = result.validation["zoo_mean_miss"]
            winner_key = str(result.validation["winner_index"])
            assert zoo_miss[winner_key] == min(zoo_miss.values())
            assert result.evaluations > result.stages["refine"]

    def test_faults_require_a_fault_plan(self, model):
        with pytest.raises(ValueError, match="use_faults"):
            small_tune(model, use_faults=True)

    def test_chaos_tuning_enables_the_live_fault_plane(self, model):
        replayer = faulty_replayer("bursts_faulty")
        result = tune(
            replayer, model,
            seed=0, space=SearchSpace.small(), workers=1,
            validate=False, use_faults=True,
        )
        assert result.faults
        assert result.config.supervise
        assert result.config.retry_policy is not None

    def test_empty_trace_rejected(self, model):
        empty = TraceReplayer((), name="empty", duration_s=1.0)
        with pytest.raises(ValueError, match="empty"):
            tune(empty, model, space=SearchSpace.small())

    def test_derived_ladder_matches_winner_histogram(self, model):
        result = small_tune(model)
        ladder = result.derived["rows_ladder"]
        if ladder is not None:
            assert result.config.rows_ladder == tuple(ladder)
            assert ladder[-1] == result.config.max_batch
            per_rung = result.derived["conv_backend_per_rung"]
            assert [rows for rows, _ in per_rung] == ladder


class TestArtifact:
    def test_write_read_round_trip(self, model, tmp_path):
        result = small_tune(model)
        path = write_tuned_config(tmp_path / "tuned.json", result)
        payload = read_tuned_config(path)
        assert payload["format"] == "repro-tuned-config"
        assert payload["config"] == result.config.to_mapping()
        # The --config loader unwraps the artifact to its config block...
        assert load_config_mapping(path) == result.config.to_mapping()
        # ...and from_mapping rebuilds the exact emitted config.
        assert load_scheduler_config(path) == result.config

    def test_bare_mapping_files_load_too(self, tmp_path):
        path = tmp_path / "cfg.json"
        path.write_text(json.dumps({"replicas": 3}))
        assert load_config_mapping(path) == {"replicas": 3}
        assert load_scheduler_config(path) == SchedulerConfig(replicas=3)

    def test_foreign_format_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "repro-trace", "version": 1}))
        with pytest.raises(ValueError, match="not a repro-tuned-config"):
            load_config_mapping(path)

    def test_newer_version_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            json.dumps({"format": "repro-tuned-config", "version": 99, "config": {}})
        )
        with pytest.raises(ValueError, match="newer"):
            read_tuned_config(path)

    def test_non_object_config_file_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            load_config_mapping(path)
