"""Engine parity against the legacy master/worker runtime.

For every Fig. 2 availability scenario (BOTH, ONLY_MASTER, ONLY_WORKER)
the unified :class:`~repro.engine.engine.ExecutionEngine` must produce the
same logits AND the same emulated-time ledger as the pre-engine two-device
``MasterRuntime`` did.  The legacy runtime no longer exists in the tree, so
:class:`LegacyMasterReference` below re-implements its exact semantics
(taken verbatim from the seed revision) on top of the still-unchanged wire
protocol; both sides drive identically-seeded nets over identically-seeded
inputs.
"""

from __future__ import annotations

import threading
from typing import Optional, Tuple

import numpy as np
import pytest

from repro.comm import CommLatencyModel, InProcChannel, Message, MessageKind
from repro.comm.transport import TransportError
from repro.device import EmulatedDevice, jetson_nx_master, jetson_nx_worker
from repro.device.cost import partitioned_device_costs
from repro.distributed import MasterRuntime, WorkerServer
from repro.distributed.modes import Scenario
from repro.distributed.partitioned import (
    conv_block_half,
    fc_partial,
    feature_slice_for_block,
    flatten_channel_block,
)
from repro.slimmable import SlimmableConvNet, paper_width_spec
from repro.slimmable.spec import ChannelSlice, SubNetSpec
from repro.utils import make_rng

SPLIT = 8
SEED = 0


class LegacyLedger:
    def __init__(self) -> None:
        self.compute_s = 0.0
        self.comm_s = 0.0
        self.images = 0


class LegacyMasterReference:
    """The seed revision's MasterRuntime semantics, preserved for parity.

    Every ledger formula and every float cast below reproduces the deleted
    legacy implementation line-for-line; if the engine and this reference
    ever disagree, the engine regressed.
    """

    def __init__(self, device, transport, *, partition_split, comm_model=None):
        self.device = device
        self.transport = transport
        self.split = partition_split
        self.comm_model = comm_model or CommLatencyModel()
        self.ledger = LegacyLedger()

    def _request(self, message: Message) -> Message:
        self.transport.send(message)
        reply = self.transport.recv(timeout=10.0)
        if reply.kind == MessageKind.ERROR:
            raise AssertionError(f"worker error: {reply.fields.get('reason')}")
        nbytes = max(
            sum(a.nbytes for a in message.arrays.values()),
            sum(a.nbytes for a in reply.arrays.values()),
        )
        self.ledger.comm_s += self.comm_model.transfer_time(int(nbytes))
        return reply

    def run_local(self, spec: SubNetSpec, x: np.ndarray) -> np.ndarray:
        logits = self.device.execute_subnet(spec, x)
        self.ledger.compute_s += self.device.estimated_latency(spec) * x.shape[0]
        self.ledger.images += x.shape[0]
        return logits

    def run_remote(self, spec: SubNetSpec, x: np.ndarray) -> np.ndarray:
        reply = self._request(
            Message(
                MessageKind.RUN_SUBNET,
                fields={"spec": spec.name},
                arrays={"x": x.astype(np.float32)},
            )
        )
        self.ledger.compute_s += float(reply.fields.get("compute_s", 0.0))
        self.ledger.images += x.shape[0]
        return reply.arrays["logits"].astype(np.float64)

    def run_ht(self, master_spec, worker_spec, x_master, x_worker) -> Tuple:
        before_compute = self.ledger.compute_s
        logits_w = self.run_remote(worker_spec, x_worker)
        worker_s = self.ledger.compute_s - before_compute
        logits_m = self.device.execute_subnet(master_spec, x_master)
        master_s = self.device.estimated_latency(master_spec) * x_master.shape[0]
        self.ledger.compute_s = before_compute + max(worker_s, master_s)
        self.ledger.images += x_master.shape[0]
        return logits_m, logits_w

    def run_ha(self, spec: SubNetSpec, x: np.ndarray) -> np.ndarray:
        net = self.device.net
        lower = ChannelSlice(0, self.split)
        master_costs, _, _ = partitioned_device_costs(net, spec, self.split)

        current = x
        in_slice: Optional[ChannelSlice] = None
        master_half: Optional[np.ndarray] = None
        for layer, out_slice in enumerate(spec.conv_slices):
            if layer == 0:
                request = Message(
                    MessageKind.PARTIAL_FORWARD,
                    fields={"op": "layer", "layer": 0, "spec": spec.name},
                    arrays={"input": x.astype(np.float32)},
                )
            else:
                request = Message(
                    MessageKind.PARTIAL_FORWARD,
                    fields={"op": "layer", "layer": layer, "spec": spec.name},
                    arrays={"master_half": master_half.astype(np.float32)},
                )
            master_half = conv_block_half(net, layer, current, lower, in_slice)
            self.device.busy_time_s += self.device.profile.compute_time(
                master_costs[layer].flops * x.shape[0], x.shape[0]
            )
            self.ledger.compute_s += self.device.profile.compute_time(
                master_costs[layer].flops, 1
            ) * x.shape[0]
            reply = self._request(request)
            worker_half = reply.arrays["half"].astype(np.float64)
            current = np.concatenate([master_half, worker_half], axis=1)
            in_slice = out_slice

        feats_m = flatten_channel_block(current[:, : self.split])
        logits_m = fc_partial(
            net, feats_m, feature_slice_for_block(net, lower), include_bias=True
        )
        self.ledger.compute_s += self.device.profile.compute_time(
            master_costs[-1].flops, 1
        ) * x.shape[0]
        reply = self._request(
            Message(MessageKind.PARTIAL_FORWARD, fields={"op": "fc", "spec": spec.name})
        )
        logits = logits_m + reply.arrays["partial_logits"].astype(np.float64)
        self.ledger.images += x.shape[0]
        return logits

    def shutdown(self) -> None:
        try:
            self.transport.send(Message(MessageKind.SHUTDOWN))
        except TransportError:
            pass
        self.transport.close()


def _make_pair():
    """One served worker + master device pair on a freshly-seeded net."""
    net = SlimmableConvNet(paper_width_spec(), rng=make_rng(SEED))
    chan = InProcChannel()
    worker_device = EmulatedDevice(jetson_nx_worker(), net)
    server = WorkerServer(worker_device, chan.b, partition_split=SPLIT)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    master_device = EmulatedDevice(jetson_nx_master(), net)
    return master_device, worker_device, chan.a, thread


@pytest.fixture
def parity_pair():
    """(engine runtime, legacy reference) over identically-seeded worlds."""
    e_master, e_worker, e_chan, e_thread = _make_pair()
    l_master, l_worker, l_chan, l_thread = _make_pair()
    engine = MasterRuntime(e_master, e_chan, partition_split=SPLIT)
    legacy = LegacyMasterReference(l_master, l_chan, partition_split=SPLIT)
    yield engine, legacy, (e_master, e_worker), (l_master, l_worker)
    engine.shutdown_worker()
    legacy.shutdown()
    e_thread.join(timeout=5.0)
    l_thread.join(timeout=5.0)


def _assert_ledgers_match(engine, legacy) -> None:
    assert engine.ledger.compute_s == pytest.approx(legacy.ledger.compute_s, rel=1e-12)
    assert engine.ledger.comm_s == pytest.approx(legacy.ledger.comm_s, rel=1e-12)
    assert engine.ledger.images == legacy.ledger.images


def _batch(n: int = 6) -> np.ndarray:
    return make_rng(42).standard_normal((n, 1, 28, 28))


class TestFig2ScenarioParity:
    """One parity case per Fig. 2 availability scenario (plus HT for BOTH)."""

    def test_only_master_solo(self, parity_pair):
        engine, legacy, (e_master, _), (l_master, _) = parity_pair
        assert Scenario.ONLY_MASTER.alive == frozenset({"master"})
        spec = e_master.net.width_spec.find("lower50")
        x = _batch()
        out_engine = engine.run_local(spec, x)
        out_legacy = legacy.run_local(spec, x)
        np.testing.assert_array_equal(out_engine, out_legacy)
        _assert_ledgers_match(engine, legacy)
        assert engine.ledger.comm_s == 0.0
        assert e_master.busy_time_s == pytest.approx(l_master.busy_time_s, rel=1e-12)

    def test_only_worker_solo(self, parity_pair):
        engine, legacy, (_, e_worker), (_, l_worker) = parity_pair
        assert Scenario.ONLY_WORKER.alive == frozenset({"worker"})
        spec = e_worker.net.width_spec.find("upper50")
        x = _batch()
        out_engine = engine.run_remote(spec, x)
        out_legacy = legacy.run_remote(spec, x)
        np.testing.assert_array_equal(out_engine, out_legacy)
        _assert_ledgers_match(engine, legacy)
        assert engine.ledger.comm_s > 0.0
        assert e_worker.busy_time_s == pytest.approx(l_worker.busy_time_s, rel=1e-12)

    def test_both_high_accuracy(self, parity_pair):
        engine, legacy, (e_master, e_worker), (l_master, l_worker) = parity_pair
        assert Scenario.BOTH.alive == frozenset({"master", "worker"})
        spec = e_master.net.width_spec.find("lower100")
        x = _batch()
        out_engine = engine.run_ha(spec, x)
        out_legacy = legacy.run_ha(spec, x)
        np.testing.assert_array_equal(out_engine, out_legacy)
        _assert_ledgers_match(engine, legacy)
        assert engine.ledger.comm_s > 0.0
        assert e_master.busy_time_s == pytest.approx(l_master.busy_time_s, rel=1e-12)
        assert e_worker.busy_time_s == pytest.approx(l_worker.busy_time_s, rel=1e-12)

    def test_both_high_throughput(self, parity_pair):
        engine, legacy, (e_master, _), _ = parity_pair
        spec_m = e_master.net.width_spec.find("lower50")
        spec_w = e_master.net.width_spec.find("upper50")
        x_m = _batch()
        x_w = make_rng(43).standard_normal((6, 1, 28, 28))
        em, ew = engine.run_ht(spec_m, spec_w, x_m, x_w)
        lm, lw = legacy.run_ht(spec_m, spec_w, x_m, x_w)
        np.testing.assert_array_equal(em, lm)
        np.testing.assert_array_equal(ew, lw)
        _assert_ledgers_match(engine, legacy)
