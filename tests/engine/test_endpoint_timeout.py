"""TransportEndpoint timeout classification: worker slow vs worker dead.

A recv timeout alone is ambiguous: the peer may be computing a long batch
(keep waiting / hedge) or it may be gone (eject immediately).  The
endpoint disambiguates with an ``alive_probe`` — an OS-level liveness
oracle independent of the transport.  Without a probe the legacy
behaviour (every failure is :class:`EndpointUnavailable`) is preserved.
"""

import threading

import numpy as np
import pytest

from repro.comm.message import Message, MessageKind, result_message
from repro.comm.transport import InProcChannel
from repro.engine.endpoints import (
    EndpointTimeout,
    EndpointUnavailable,
    TransportEndpoint,
)


def _endpoint(channel, probe=None, timeout=0.05):
    return TransportEndpoint(
        "w0", channel.a, request_timeout=timeout, alive_probe=probe
    )


class TestSlowVsDead:
    def test_timeout_with_live_probe_is_slow(self):
        channel = InProcChannel()
        endpoint = _endpoint(channel, probe=lambda: True)
        with pytest.raises(EndpointTimeout):
            endpoint.run_parts("lower50", {"rows": 1})
        # The transport survived the timeout: the reply can still arrive.
        assert endpoint.available

    def test_timeout_with_dead_probe_is_unavailable(self):
        channel = InProcChannel()
        endpoint = _endpoint(channel, probe=lambda: False)
        with pytest.raises(EndpointUnavailable):
            endpoint.run_parts("lower50", {"rows": 1})

    def test_timeout_without_probe_keeps_legacy_classification(self):
        channel = InProcChannel()
        endpoint = _endpoint(channel, probe=None)
        with pytest.raises(EndpointUnavailable):
            endpoint.run_parts("lower50", {"rows": 1})

    def test_closed_peer_is_unavailable_even_with_live_probe(self):
        channel = InProcChannel()
        endpoint = _endpoint(channel, probe=lambda: True)
        channel.b.close()
        with pytest.raises(EndpointUnavailable):
            endpoint.run_parts("lower50", {"rows": 1})


class TestAwaitReply:
    def test_await_reply_resumes_after_timeout(self):
        """The patience loop: a slow reply is eventually collected in sync."""
        channel = InProcChannel()
        endpoint = _endpoint(channel, probe=lambda: True, timeout=0.02)

        def _slow_worker():
            request = channel.b.recv(timeout=1.0)
            assert request.kind == MessageKind.RUN_PARTS
            import time

            time.sleep(0.08)  # several request timeouts
            channel.b.send(result_message({"out": np.ones((2, 3))}, compute_s=0.08))

        worker = threading.Thread(target=_slow_worker, daemon=True)
        worker.start()
        with pytest.raises(EndpointTimeout):
            endpoint.run_parts("lower50", {"rows": 2})
        for _ in range(50):
            try:
                message, payload = endpoint.await_reply()
                break
            except EndpointTimeout:
                continue
        else:
            pytest.fail("reply never arrived")
        worker.join()
        assert message.kind == MessageKind.RESULT
        assert np.array_equal(message.arrays["out"], np.ones((2, 3)))
        assert payload == message.arrays["out"].nbytes

    def test_error_reply_is_unavailable(self):
        channel = InProcChannel()
        endpoint = _endpoint(channel, probe=lambda: True)
        channel.b.send(Message(MessageKind.ERROR, fields={"reason": "boom"}))
        with pytest.raises(EndpointUnavailable, match="boom"):
            endpoint.run_parts("lower50", {"rows": 1})
