"""Compiled distributed path: bitwise parity, delta halos, and overlap.

The compiled HA path (:mod:`repro.engine.dist_plan`) must be bitwise
identical to the eager per-round kernels at every certified width, under
both dtype policies, over in-process endpoints AND the real wire protocol —
while exchanging strictly fewer bytes (delta halos) and allocating nothing
in steady state (workspace arenas + memoised plans).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.comm import InProcChannel
from repro.device import EmulatedDevice, jetson_nx_master, jetson_nx_worker
from repro.distributed import LocalCluster, MasterRuntime, WorkerServer
from repro.distributed.modes import ExecutionMode
from repro.distributed.multidevice import MultiDeviceRuntime
from repro.distributed.partitioned import partitioned_forward_reference
from repro.distributed.plan import streams_plan
from repro.engine import (
    BlockPartition,
    Endpoint,
    EndpointReply,
    ExecutionEngine,
    ExecutionGraph,
    PartitionLayerOp,
)
from repro.slimmable import SlimmableConvNet, paper_width_spec
from repro.utils import make_rng
from repro.utils.dtypes import DtypePolicy, dtype_policy, set_dtype_policy

SPLIT = 8
SEED = 0

POLICIES = {
    "default": DtypePolicy(),
    "fast_inference": DtypePolicy.fast_inference(),
}


def _net() -> SlimmableConvNet:
    return SlimmableConvNet(paper_width_spec(), rng=make_rng(SEED))


def _batch(n: int = 5) -> np.ndarray:
    return make_rng(42).standard_normal((n, 1, 28, 28))


class _InProcMaster:
    """MasterRuntime + served WorkerServer over an in-process channel."""

    def __init__(self, net: SlimmableConvNet, *, compiled: bool) -> None:
        chan = InProcChannel()
        self.worker_device = EmulatedDevice(jetson_nx_worker(), net)
        self._server = WorkerServer(self.worker_device, chan.b, partition_split=SPLIT)
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()
        self.master_device = EmulatedDevice(jetson_nx_master(), net)
        self.runtime = MasterRuntime(
            self.master_device, chan.a, partition_split=SPLIT, compiled=compiled
        )

    def __enter__(self) -> MasterRuntime:
        return self.runtime

    def __exit__(self, *exc) -> None:
        self.runtime.shutdown_worker()
        self._thread.join(timeout=5.0)


def _multidevice(net: SlimmableConvNet, *, compiled: bool) -> MultiDeviceRuntime:
    return MultiDeviceRuntime(
        net,
        [jetson_nx_master(), jetson_nx_worker()],
        BlockPartition.two_way(SPLIT, net.width_spec.max_width),
        compiled=compiled,
    )


class TestCompiledBitwiseParity:
    """Compiled == eager == single-process reference, bit for bit."""

    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    @pytest.mark.parametrize("spec_name", ["lower75", "lower100"])
    def test_wire_protocol_parity(self, spec_name, policy_name):
        """LocalEndpoint + TransportEndpoint over InProcChannel, every
        certified HA width, both dtype policies."""
        # Process-wide: the worker's server thread must see the policy too.
        old = set_dtype_policy(POLICIES[policy_name])
        try:
            net = _net()
            spec = net.width_spec.find(spec_name)
            x = _batch()
            with _InProcMaster(net, compiled=False) as eager:
                out_eager = eager.run_ha(spec, x)
                eager_ledger = (
                    eager.ledger.compute_s,
                    eager.ledger.comm_s,
                    eager.ledger.images,
                )
                eager_bytes = list(eager.engine.last_exchange_bytes)
            with _InProcMaster(net, compiled=True) as compiled:
                out_compiled = compiled.run_ha(spec, x)
                np.testing.assert_array_equal(out_compiled, out_eager)
                # The single-process reference never round-trips the wire
                # dtype, so it is bitwise only when compute == wire dtype.
                reference, _ = partitioned_forward_reference(net, spec, SPLIT, x)
                if POLICIES[policy_name].inference == POLICIES[policy_name].wire:
                    np.testing.assert_array_equal(out_eager, reference)
                else:
                    np.testing.assert_allclose(out_eager, reference, atol=1e-5)
                # Same emulated world: compute charges match to float noise,
                # wire-level comm charges are identical.
                assert compiled.ledger.compute_s == pytest.approx(
                    eager_ledger[0], rel=1e-12
                )
                assert compiled.ledger.comm_s == pytest.approx(
                    eager_ledger[1], rel=1e-12
                )
                assert compiled.ledger.images == eager_ledger[2]
                assert len(compiled.engine.last_exchange_bytes) == len(eager_bytes)
        finally:
            set_dtype_policy(old)

    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    def test_local_endpoints_parity(self, policy_name):
        """Pure LocalEndpoint fan-out (MultiDeviceRuntime), both policies."""
        with dtype_policy(POLICIES[policy_name]):
            net = _net()
            x = _batch()
            eager = _multidevice(net, compiled=False)
            compiled = _multidevice(net, compiled=True)
            try:
                out_eager = eager.run_ha(x)
                out_compiled = compiled.run_ha(x)
                np.testing.assert_array_equal(out_compiled, out_eager)
                # No wire cast on local endpoints: the single-process
                # reference must agree bit for bit.
                reference, _ = partitioned_forward_reference(
                    net, net.width_spec.full(), SPLIT, x
                )
                np.testing.assert_array_equal(out_eager, reference)
                assert compiled.ledger.compute_s == pytest.approx(
                    eager.ledger.compute_s, rel=1e-12
                )
                assert compiled.ledger.images == eager.ledger.images
            finally:
                eager.engine.shutdown()
                compiled.engine.shutdown()

    def test_repeat_executes_stay_bitwise_stable(self):
        """Arena reuse must not leak state between batches."""
        net = _net()
        rt = _multidevice(net, compiled=True)
        try:
            x = _batch()
            first = rt.run_ha(x)
            for _ in range(3):
                np.testing.assert_array_equal(rt.run_ha(x), first)
            # A different batch through the same arenas, then the first again.
            rt.run_ha(make_rng(7).standard_normal((5, 1, 28, 28)))
            np.testing.assert_array_equal(rt.run_ha(x), first)
        finally:
            rt.engine.shutdown()

    @pytest.mark.slow
    def test_tcp_cluster_parity(self):
        """Compiled == eager over a real subprocess worker on localhost TCP."""
        net = _net()
        x = _batch(3)
        spec = net.width_spec.full()
        with LocalCluster(net, compiled=False) as eager:
            out_eager = eager.master.run_ha(spec, x)
        with LocalCluster(net, compiled=True) as compiled:
            out_compiled = compiled.master.run_ha(spec, x)
        np.testing.assert_array_equal(out_compiled, out_eager)


class TestDeltaHaloExchange:
    """The compiled path ships strictly fewer activation bytes."""

    def test_exchange_bytes_reduced(self):
        net = _net()
        spec = net.width_spec.find("lower100")
        x = _batch()
        with _InProcMaster(net, compiled=False) as eager:
            eager.run_ha(spec, x)
            eager_bytes = list(eager.engine.last_exchange_bytes)
        with _InProcMaster(net, compiled=True) as compiled:
            compiled.run_ha(spec, x)
            compiled_bytes = list(compiled.engine.last_exchange_bytes)
        assert len(compiled_bytes) == len(eager_bytes)
        # Round 0 ships the input either way; every later round drops the
        # full-activation broadcast, and the final conv round ships no
        # halves at all (the fc round carries only the partial logits).
        assert compiled_bytes[0] <= eager_bytes[0]
        for c, e in zip(compiled_bytes[1:], eager_bytes[1:]):
            assert c < e
        assert sum(compiled_bytes) < 0.7 * sum(eager_bytes)
        assert compiled_bytes[-1] == 2 * x.shape[0] * 10 * np.dtype("float32").itemsize

    def test_accounting_uses_wire_itemsize(self):
        """Exchange bytes follow the policy wire dtype, not hardcoded f32."""
        net = _net()
        x = _batch()

        def total(wire: str) -> int:
            with dtype_policy(wire=wire):
                rt = _multidevice(net, compiled=True)
                try:
                    rt.run_ha(x)
                    return sum(rt.engine.last_exchange_bytes)
                finally:
                    rt.engine.shutdown()

        assert total("float64") == 2 * total("float32")


class TestZeroSteadyStateAllocation:
    """After warmup, no new plans and no new arenas — only checkouts."""

    def test_plans_and_arenas_are_reused(self):
        net = _net()
        rt = _multidevice(net, compiled=True)
        try:
            x = _batch()
            for _ in range(2):
                rt.run_ha(x)
            endpoints = list(rt.engine.endpoints.values())
            plans = [ep._plan for ep in endpoints]
            compiled_counts = [len(ep._compiler) for ep in endpoints]
            created = [plan.workspaces.created for plan in plans]
            checkouts = [plan.workspaces.checkouts for plan in plans]
            for _ in range(10):
                rt.run_ha(x)
            for ep, n in zip(endpoints, compiled_counts):
                assert len(ep._compiler) == n  # no recompilation
            for plan, c, k in zip(plans, created, checkouts):
                assert plan.workspaces.created == c  # no new arenas
                assert plan.workspaces.checkouts == k + 10
        finally:
            rt.engine.shutdown()


class _BarrierEndpoint(Endpoint):
    """Blocks in run_subnet until its peer arrives — proves real overlap."""

    def __init__(self, name: str, barrier: threading.Barrier) -> None:
        self.name = name
        self.barrier = barrier
        self.calls = 0

    @property
    def available(self) -> bool:
        return True

    def ping(self, timeout: float = 1.0) -> bool:
        return True

    def run_subnet(self, spec, x) -> EndpointReply:
        self.calls += 1
        # Raises BrokenBarrierError (failing the test) if the engine were
        # to serialise the two stream calls instead of overlapping them.
        self.barrier.wait(timeout=5.0)
        return EndpointReply(
            arrays={"logits": np.zeros((x.shape[0], 10))}, compute_s=0.001
        )

    def shutdown(self) -> None:  # pragma: no cover - nothing to release
        pass


class TestOverlappedDispatch:
    def test_stream_calls_run_concurrently(self):
        barrier = threading.Barrier(2)
        a, b = _BarrierEndpoint("a", barrier), _BarrierEndpoint("b", barrier)
        engine = ExecutionEngine({"a": a, "b": b}, paper_width_spec())
        try:
            plan = streams_plan([("a", "lower50"), ("b", "lower50")])
            result = engine.execute(plan, _batch(4))
            assert result.logits is not None and result.logits.shape == (4, 10)
            assert a.calls == 1 and b.calls == 1
            # Both spans cover the whole round: overlap reads near 1.0
            # (a serial dispatch would deadlock at the barrier instead).
            assert engine.metrics.ewma("stream.overlap").value > 0.5
        finally:
            engine.shutdown()


class TestGraphGuards:
    """Regression tests for the malformed-graph error paths."""

    def _engine(self, net: SlimmableConvNet) -> ExecutionEngine:
        rt = _multidevice(net, compiled=False)
        return rt.engine

    def test_partitioned_graph_without_fc_round(self):
        net = _net()
        rt = _multidevice(net, compiled=False)
        try:
            graph = rt.engine.compile(rt.plan())
            stripped = ExecutionGraph(
                mode=graph.mode,
                subnet=graph.subnet,
                rounds=tuple(
                    op for op in graph.rounds if isinstance(op, PartitionLayerOp)
                ),
            )
            with pytest.raises(ValueError, match="PartitionFcOp"):
                rt.engine._execute_partitioned(stripped, _batch(2))
        finally:
            rt.engine.shutdown()

    def test_stream_graph_without_streams(self):
        net = _net()
        rt = _multidevice(net, compiled=False)
        try:
            empty = ExecutionGraph(mode=ExecutionMode.HIGH_THROUGHPUT, subnet=None)
            with pytest.raises(ValueError, match="no stream ops"):
                rt.engine._execute_streams(empty, _batch(2), None)
        finally:
            rt.engine.shutdown()
