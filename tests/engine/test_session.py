"""Concurrent shared-weight serving: the stateless-context payoff.

Property under test: N threads running inference sessions over ONE shared
model produce bit-identical outputs to serial execution — for static,
slimmable (dynamic), and fluid models, at multiple widths simultaneously —
and the parameter store is never copied or written.
"""

import threading

import numpy as np
import pytest

from repro.engine.session import InferenceSession, serve_concurrent
from repro.models import build_model
from repro.nn import ForwardContext, Linear, ReLU, Sequential
from repro.utils import make_rng

FAMILIES = ("static", "dynamic", "fluid")


def family_subnets(model):
    """Every certified-or-not width in the family's spec (all are runnable)."""
    return [spec.name for spec in model.width_spec.all_specs()]


@pytest.fixture(scope="module")
def models():
    return {family: build_model(family, rng=make_rng(3)) for family in FAMILIES}


@pytest.fixture(scope="module")
def request_batches():
    rng = make_rng(17)
    return [rng.standard_normal((3, 1, 28, 28)) for _ in range(12)]


class TestZeroCopy:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_sessions_alias_one_parameter_store(self, models, family):
        model = models[family]
        sessions = [
            InferenceSession(model, name) for name in family_subnets(model) for _ in range(2)
        ]
        assert len(sessions) >= 4
        base = [id(p.data) for p in sessions[0].parameters()]
        for session in sessions[1:]:
            assert [id(p.data) for p in session.parameters()] == base

    def test_serving_never_writes_parameters(self, models, request_batches):
        model = models["fluid"]
        session = InferenceSession(model, "lower50")
        before = {id(p.data): p.data.copy() for p in session.parameters()}
        ids_before = sorted(before)
        for x in request_batches:
            session.run(x)
        ids_after = sorted(id(p.data) for p in session.parameters())
        assert ids_after == ids_before  # no rebinding / cloning
        for p in session.parameters():
            np.testing.assert_array_equal(p.data, before[id(p.data)])


class TestConcurrentMatchesSerial:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_threads_bitwise_equal_serial_across_widths(
        self, models, family, request_batches
    ):
        """K >= 4 concurrent requests at mixed widths == serial, bit for bit."""
        model = models[family]
        subnets = family_subnets(model)
        # One (session, batch) work item per subnet x batch chunk; >= 4 concurrent.
        work = [
            (InferenceSession(model, name), request_batches[i % len(request_batches)])
            for i, name in enumerate(subnets * 3)
        ]
        assert len(work) >= 4
        expected = [session.run(x) for session, x in work]

        sessions = [w[0] for w in work]
        batches = [w[1] for w in work]
        for _ in range(3):  # repeat to exercise different interleavings
            results = serve_concurrent(sessions, batches)
            for got, want in zip(results, expected):
                np.testing.assert_array_equal(got, want)

    def test_interleaved_widths_on_shared_barrier(self, models):
        """Threads start together on a barrier, each at a different width."""
        model = models["fluid"]
        subnets = family_subnets(model)
        rng = make_rng(23)
        batches = {name: rng.standard_normal((2, 1, 28, 28)) for name in subnets}
        expected = {
            name: InferenceSession(model, name).run(batches[name]) for name in subnets
        }

        barrier = threading.Barrier(len(subnets))
        results = {}
        errors = []

        def _worker(name):
            try:
                session = sessions[name]
                barrier.wait(timeout=10.0)
                for _ in range(5):
                    results[name] = session.run(batches[name])
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        sessions = {name: InferenceSession(model, name) for name in subnets}
        threads = [threading.Thread(target=_worker, args=(n,)) for n in subnets]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for name in subnets:
            np.testing.assert_array_equal(results[name], expected[name])

    def test_container_state_untouched_by_sessions(self, models):
        """Explicit-context serving must not move the net's active spec."""
        model = models["fluid"]
        net = model.net
        net.set_active(net.width_spec.full())
        active_before = net.active_spec
        session = InferenceSession(model, "lower25")
        session.run(make_rng(5).standard_normal((2, 1, 28, 28)))
        assert net.active_spec is active_before


class TestPlainModules:
    def test_sequential_sessions_share_weights(self):
        rng = make_rng(9)
        net = Sequential(Linear(6, 16, rng=rng), ReLU(), Linear(16, 4, rng=rng))
        sessions = [InferenceSession(net) for _ in range(4)]
        batches = [make_rng(30 + i).standard_normal((5, 6)) for i in range(4)]
        expected = [s.run(x) for s, x in zip(sessions, batches)]
        results = serve_concurrent(sessions, batches)
        for got, want in zip(results, expected):
            np.testing.assert_array_equal(got, want)
        base = [id(p.data) for p in sessions[0].parameters()]
        assert all([id(p.data) for p in s.parameters()] == base for s in sessions)

    def test_session_requires_subnet_for_family(self, models):
        with pytest.raises(TypeError):
            InferenceSession(models["fluid"])

    def test_non_recording_context_rejects_backward(self):
        rng = make_rng(11)
        net = Sequential(Linear(4, 4, rng=rng), ReLU())
        ctx = ForwardContext(recording=False)
        y = net.forward(make_rng(12).standard_normal((2, 4)), ctx)
        with pytest.raises(RuntimeError):
            net.backward(np.ones_like(y), ctx)
