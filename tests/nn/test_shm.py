"""Shared-memory arenas: allocation, parameter sharing, rings, cleanup."""

import os

import numpy as np
import pytest

from repro.models import build_model
from repro.nn.shm import (
    RING_SEGMENT_TAG,
    SharedParameterStore,
    ShmArena,
    ShmRing,
    create_segment,
    ensure_shared_parameters,
    list_segments,
    unlink_created_segments,
)
from repro.utils import make_rng


@pytest.fixture(autouse=True)
def _no_leaks():
    """Every test must leave /dev/shm exactly as it found it."""
    before = set(list_segments())
    yield
    unlink_created_segments()
    assert set(list_segments()) <= before, "test leaked shm segments"


class TestArena:
    def test_alloc_returns_segment_backed_views(self):
        arena = ShmArena.create(4096)
        a, off_a = arena.alloc((4, 8), np.float64)
        b, off_b = arena.alloc((16,), np.int64)
        a[:] = 3.5
        b[:] = 7
        assert off_a == 0 and off_b >= a.nbytes
        # Views alias the segment: rebuilding from (offset, shape) sees writes.
        again = arena.view(off_a, (4, 8), np.float64)
        assert np.array_equal(again, a)
        arena.unlink()

    def test_allocations_are_aligned(self):
        arena = ShmArena.create(4096)
        arena.alloc((3,), np.uint8)  # 3 bytes: next alloc must not pack behind it
        _, offset = arena.alloc((2,), np.float64)
        assert offset % 64 == 0
        arena.unlink()

    def test_exhaustion_raises(self):
        arena = ShmArena.create(256)
        with pytest.raises(MemoryError):
            arena.alloc((4096,), np.float64)
        arena.unlink()

    def test_attach_sees_creator_writes(self):
        arena = ShmArena.create(1024)
        view, offset = arena.alloc((8,), np.float64)
        view[:] = np.arange(8)
        attached = ShmArena.attach(arena.name)
        assert np.array_equal(attached.view(offset, (8,), np.float64), np.arange(8))
        attached.segment.close()
        arena.unlink()


class TestSharedParameterStore:
    def test_share_preserves_values_and_moves_storage(self):
        model = build_model("fluid", rng=make_rng(0))
        net = model.net
        before = {n: p.data.copy() for n, p in net.named_parameters()}
        store = ensure_shared_parameters(model)
        for name, param in net.named_parameters():
            assert np.array_equal(param.data, before[name]), name
            assert param.data.base is not None  # a view, not owned storage
        assert store.segment_name in list_segments("w")

    def test_share_is_idempotent(self):
        before = len(list_segments("w"))
        model = build_model("fluid", rng=make_rng(0))
        assert ensure_shared_parameters(model) is ensure_shared_parameters(model)
        assert len(list_segments("w")) == before + 1

    def test_version_slots_live_in_the_segment(self):
        model = build_model("fluid", rng=make_rng(0))
        store = ensure_shared_parameters(model)
        param = next(iter(model.net.parameters()))
        v = param.version
        param.bump_version()
        assert param.version == v + 1
        # The counter is readable straight out of the arena (what a worker
        # process mapping the same segment observes).
        versions = store.arena.view(
            store.versions_offset, (len(store.layout),), np.int64
        )
        assert int(versions[0]) == v + 1

    def test_attach_maps_fresh_module_onto_shared_storage(self):
        model = build_model("fluid", rng=make_rng(0))
        store = ensure_shared_parameters(model)
        twin = build_model("fluid", rng=make_rng(1)).net  # different init
        described = store.describe()
        SharedParameterStore.attach(
            twin,
            described["segment"],
            [tuple(e) for e in described["layout"]],
            described["versions_offset"],
        )
        for (_, p_shared), (_, p_twin) in zip(
            model.net.named_parameters(), twin.named_parameters()
        ):
            assert np.array_equal(p_shared.data, p_twin.data)
        # A creator-side write is visible through the attached module.
        param = next(iter(model.net.parameters()))
        param.data.flat[0] = 123.0
        assert next(iter(twin.parameters())).data.flat[0] == 123.0

    def test_forward_parity_after_sharing(self):
        model = build_model("fluid", rng=make_rng(0))
        from repro.engine.session import InferenceSession

        x = make_rng(2).standard_normal((2, 1, 28, 28))
        before = InferenceSession(model, "lower50").run(x)
        ensure_shared_parameters(model)
        after = InferenceSession(model, "lower50").run(x)
        assert np.array_equal(before, after)


class TestShmRing:
    def _ring(self, nbytes=4096):
        segment = create_segment(RING_SEGMENT_TAG, nbytes)
        return ShmRing(segment, 0, nbytes)

    def test_place_and_view_round_trip(self):
        ring = self._ring()
        x = make_rng(0).standard_normal((4, 7))
        offset = ring.place(x)
        assert np.array_equal(ring.view(offset, (4, 7), x.dtype), x)

    def test_place_wraps_at_capacity(self):
        ring = self._ring(4096)
        x = np.arange(256, dtype=np.float64)  # 2048 bytes
        first = ring.place(x)
        second = ring.place(x)
        third = ring.place(x)  # cannot fit past the tail: wraps to the start
        assert first == 0 and second == 2048 and third == 0

    def test_place_parts_matches_concatenate(self):
        ring = self._ring()
        parts = [
            make_rng(1).standard_normal((2, 3)),
            make_rng(2).standard_normal((1, 3)),
        ]
        offset, rows = ring.place_parts(parts, np.float64)
        assert rows == 3
        stacked = ring.view(offset, (3, 3), np.float64)
        assert np.array_equal(stacked, np.concatenate(parts, axis=0))

    def test_oversized_placement_raises(self):
        ring = self._ring(256)
        with pytest.raises(MemoryError):
            ring.place(np.zeros(4096))


class TestLifecycle:
    def test_unlink_created_segments_is_a_leak_backstop(self):
        before = len(list_segments())
        create_segment(RING_SEGMENT_TAG, 1024)
        create_segment(RING_SEGMENT_TAG, 1024)
        assert len(list_segments()) == before + 2
        assert unlink_created_segments() >= 2
        assert len(list_segments()) == before

    def test_unlink_is_idempotent(self):
        create_segment(RING_SEGMENT_TAG, 1024)
        unlink_created_segments()
        assert unlink_created_segments() == 0

    def test_forked_child_never_unlinks_parent_segments(self):
        segment = create_segment(RING_SEGMENT_TAG, 1024)
        pid = os.fork()
        if pid == 0:  # child: the registry pid-guard must make this a no-op
            unlink_created_segments()
            os._exit(0)
        os.waitpid(pid, 0)
        assert segment.name in list_segments(RING_SEGMENT_TAG)

    def test_sigterm_unlinks_segments_in_a_child(self):
        import signal
        import time

        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:  # child creates a segment, reports it, waits for SIGTERM
            os.close(read_fd)
            from repro.nn import shm

            with shm._registry_lock:
                shm._hooks_installed = False  # fork inherited the parent flag
            segment = create_segment(RING_SEGMENT_TAG, 1024)
            os.write(write_fd, segment.name.encode())
            os.close(write_fd)
            while True:
                time.sleep(0.5)
        os.close(write_fd)
        name = os.read(read_fd, 256).decode()
        os.close(read_fd)
        assert name in list_segments(RING_SEGMENT_TAG)
        os.kill(pid, signal.SIGTERM)
        os.waitpid(pid, 0)
        assert name not in list_segments(RING_SEGMENT_TAG)
