"""Tests for Parameter semantics (grads, masks, copies)."""

import numpy as np
import pytest

from repro.nn.parameter import Parameter


class TestParameter:
    def test_data_is_float64_contiguous(self):
        p = Parameter(np.array([[1, 2], [3, 4]], dtype=np.int32))
        assert p.data.dtype == np.float64
        assert p.data.flags["C_CONTIGUOUS"]

    def test_grad_starts_zero(self):
        p = Parameter(np.ones((2, 3)))
        assert not p.grad.any()
        assert p.grad.shape == (2, 3)

    def test_accumulate_adds(self):
        p = Parameter(np.zeros(3))
        p.accumulate_grad(np.ones(3))
        p.accumulate_grad(np.ones(3))
        np.testing.assert_array_equal(p.grad, [2.0, 2.0, 2.0])

    def test_accumulate_shape_mismatch_raises(self):
        p = Parameter(np.zeros(3))
        with pytest.raises(ValueError):
            p.accumulate_grad(np.ones(4))

    def test_requires_grad_false_ignores(self):
        p = Parameter(np.zeros(2))
        p.requires_grad = False
        p.accumulate_grad(np.ones(2))
        assert not p.grad.any()

    def test_zero_grad(self):
        p = Parameter(np.zeros(2))
        p.accumulate_grad(np.ones(2))
        p.zero_grad()
        assert not p.grad.any()

    def test_non_array_rejected(self):
        with pytest.raises(TypeError):
            Parameter([1, 2, 3])


class TestFreezeMask:
    def test_effective_grad_applies_mask(self):
        p = Parameter(np.zeros(4))
        p.accumulate_grad(np.ones(4))
        p.set_freeze_mask(np.array([1.0, 0.0, 1.0, 0.0]))
        np.testing.assert_array_equal(p.effective_grad(), [1, 0, 1, 0])

    def test_clearing_mask(self):
        p = Parameter(np.zeros(2))
        p.set_freeze_mask(np.zeros(2))
        p.set_freeze_mask(None)
        p.accumulate_grad(np.ones(2))
        np.testing.assert_array_equal(p.effective_grad(), [1, 1])

    def test_mask_shape_mismatch_raises(self):
        p = Parameter(np.zeros(2))
        with pytest.raises(ValueError):
            p.set_freeze_mask(np.zeros(3))


class TestCopy:
    def test_copy_in_place(self):
        a = Parameter(np.zeros(3))
        b = Parameter(np.arange(3, dtype=float))
        storage = a.data
        a.copy_(b)
        assert a.data is storage  # in-place, keeps aliases valid
        np.testing.assert_array_equal(a.data, [0, 1, 2])

    def test_copy_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            Parameter(np.zeros(2)).copy_(Parameter(np.zeros(3)))
