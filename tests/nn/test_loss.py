"""Tests for loss functions, including numerical gradient verification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import MSELoss, SoftmaxCrossEntropy
from repro.nn import functional as F
from repro.utils import make_rng
from tests.nn.gradcheck import numerical_grad_wrt_array


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = SoftmaxCrossEntropy()(logits, np.array([0, 1]))
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_uniform_prediction_log_k(self):
        k = 10
        logits = np.zeros((4, k))
        loss, _ = SoftmaxCrossEntropy()(logits, np.zeros(4, dtype=int))
        assert loss == pytest.approx(np.log(k))

    def test_gradient_matches_numerical(self):
        rng = make_rng(0)
        logits = rng.standard_normal((3, 5))
        labels = np.array([0, 2, 4])
        loss_fn = SoftmaxCrossEntropy()
        _, grad = loss_fn(logits, labels)
        num = numerical_grad_wrt_array(lambda: loss_fn(logits, labels)[0], logits)
        np.testing.assert_allclose(grad, num, atol=1e-7)

    def test_gradient_rows_sum_to_zero(self):
        rng = make_rng(1)
        logits = rng.standard_normal((6, 4))
        _, grad = SoftmaxCrossEntropy()(logits, np.array([0, 1, 2, 3, 0, 1]))
        np.testing.assert_allclose(grad.sum(axis=1), np.zeros(6), atol=1e-12)

    def test_label_out_of_range_raises(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy()(np.zeros((2, 3)), np.array([0, 3]))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy()(np.zeros((2, 3, 1)), np.array([0, 1]))
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy()(np.zeros((2, 3)), np.array([0, 1, 2]))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 8), k=st.integers(2, 12))
    def test_loss_is_negative_log_prob(self, seed, n, k):
        rng = make_rng(seed)
        logits = rng.standard_normal((n, k)) * 3
        labels = rng.integers(0, k, n)
        loss, _ = SoftmaxCrossEntropy()(logits, labels)
        probs = F.softmax(logits, axis=1)
        expected = -np.log(probs[np.arange(n), labels]).mean()
        assert loss == pytest.approx(expected, rel=1e-9)
        assert loss >= 0.0


class TestMSELoss:
    def test_zero_for_identical(self):
        x = make_rng(2).standard_normal((3, 3))
        loss, grad = MSELoss()(x, x.copy())
        assert loss == 0.0
        np.testing.assert_array_equal(grad, np.zeros_like(x))

    def test_gradient_matches_numerical(self):
        rng = make_rng(3)
        pred = rng.standard_normal((2, 4))
        target = rng.standard_normal((2, 4))
        loss_fn = MSELoss()
        _, grad = loss_fn(pred, target)
        num = numerical_grad_wrt_array(lambda: loss_fn(pred, target)[0], pred)
        np.testing.assert_allclose(grad, num, atol=1e-7)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            MSELoss()(np.zeros((2, 2)), np.zeros((2, 3)))
