"""Tests for workspace arenas and the checkout pool."""

import threading

import numpy as np
import pytest

from repro.nn.workspace import BufferSpec, Workspace, WorkspacePool

SPECS = [
    BufferSpec("a", (4, 3), "float32"),
    BufferSpec("pad", (2, 2, 6, 6), "float32", zeroed=True),
]


class TestBufferSpec:
    def test_rejects_bad_shapes_and_names(self):
        with pytest.raises(ValueError):
            BufferSpec("", (2,), "float32")
        with pytest.raises(ValueError):
            BufferSpec("x", (0, 3), "float32")

    def test_nbytes(self):
        assert BufferSpec("x", (4, 3), "float32").nbytes == 48


class TestWorkspace:
    def test_buffers_have_spec_shapes_and_dtypes(self):
        ws = Workspace(SPECS)
        assert ws["a"].shape == (4, 3) and ws["a"].dtype == np.float32
        assert "pad" in ws and "missing" not in ws

    def test_zeroed_buffers_start_zero(self):
        ws = Workspace(SPECS)
        np.testing.assert_array_equal(ws["pad"], np.zeros((2, 2, 6, 6)))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Workspace([BufferSpec("a", (1,), "float64"), BufferSpec("a", (2,), "float64")])


class TestWorkspacePool:
    def test_serial_checkouts_reuse_one_workspace(self):
        pool = WorkspacePool(SPECS, prealloc=1)
        seen = set()
        for _ in range(10):
            with pool.checkout() as ws:
                seen.add(id(ws))
        assert len(seen) == 1
        assert pool.created == 1
        assert pool.checkouts == 10

    def test_grows_only_to_the_concurrency_peak(self):
        pool = WorkspacePool(SPECS, prealloc=1)
        a = pool.acquire()
        b = pool.acquire()  # second concurrent holder -> one new allocation
        assert pool.created == 2
        pool.release(a)
        pool.release(b)
        for _ in range(5):
            with pool.checkout():
                pass
        assert pool.created == 2  # steady state: no further allocations

    def test_concurrent_checkouts_get_distinct_workspaces(self):
        pool = WorkspacePool(SPECS, prealloc=2)
        ids = []
        barrier = threading.Barrier(4)
        lock = threading.Lock()

        def worker():
            barrier.wait()
            with pool.checkout() as ws:
                with lock:
                    ids.append(id(ws))
                barrier.wait()  # hold until everyone checked out

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(ids)) == 4  # no two concurrent holders shared scratch


class TestWorkspaceNbytes:
    def test_pool_reports_per_workspace_footprint(self):
        specs = [
            BufferSpec("a", (4, 8), "float64"),
            BufferSpec("b", (16,), "float32", zeroed=True),
        ]
        pool = WorkspacePool(specs, prealloc=1)
        expected = 4 * 8 * 8 + 16 * 4
        assert pool.workspace_nbytes == expected
        with pool.checkout() as ws:
            assert ws.nbytes == expected
