"""Tests for classification metrics."""

import numpy as np
import pytest

from repro.nn import accuracy, confusion_matrix, per_class_accuracy, top_k_accuracy


class TestAccuracy:
    def test_perfect(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert accuracy(logits, np.array([0, 1])) == 1.0

    def test_half(self):
        logits = np.array([[1.0, 0.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1])) == 0.5

    def test_empty_batch_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros((0, 2)), np.zeros(0, dtype=int))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros((2, 2)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            accuracy(np.zeros(4), np.zeros(4, dtype=int))


class TestTopK:
    def test_top2_counts_second_best(self):
        logits = np.array([[0.5, 1.0, 0.0]])
        assert top_k_accuracy(logits, np.array([0]), k=2) == 1.0
        assert top_k_accuracy(logits, np.array([2]), k=2) == 0.0

    def test_k_equals_classes_is_one(self):
        logits = np.random.default_rng(0).standard_normal((5, 4))
        labels = np.array([0, 1, 2, 3, 0])
        assert top_k_accuracy(logits, labels, k=4) == 1.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((1, 3)), np.array([0]), k=0)
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((1, 3)), np.array([0]), k=4)


class TestConfusionMatrix:
    def test_entries(self):
        logits = np.array([[1, 0], [1, 0], [0, 1]], dtype=float)
        labels = np.array([0, 1, 1])
        cm = confusion_matrix(logits, labels, 2)
        np.testing.assert_array_equal(cm, [[1, 0], [1, 1]])

    def test_total_count(self):
        rng = np.random.default_rng(1)
        logits = rng.standard_normal((50, 10))
        labels = rng.integers(0, 10, 50)
        assert confusion_matrix(logits, labels, 10).sum() == 50

    def test_diagonal_equals_accuracy(self):
        rng = np.random.default_rng(2)
        logits = rng.standard_normal((40, 5))
        labels = rng.integers(0, 5, 40)
        cm = confusion_matrix(logits, labels, 5)
        assert cm.trace() / 40 == pytest.approx(accuracy(logits, labels))


class TestPerClass:
    def test_values(self):
        cm = np.array([[3, 1], [0, 4]])
        per = per_class_accuracy(cm)
        assert per[0] == pytest.approx(0.75)
        assert per[1] == pytest.approx(1.0)

    def test_empty_class_is_nan(self):
        cm = np.array([[2, 0], [0, 0]])
        assert np.isnan(per_class_accuracy(cm)[1])
