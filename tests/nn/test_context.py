"""ForwardContext semantics: tape, bindings, the implicit shim."""

import numpy as np
import pytest

from repro.nn import ForwardContext, Linear, ReLU, Sequential
from repro.utils import make_rng


class TestTape:
    def test_put_and_require(self):
        ctx = ForwardContext()
        marker = object()
        ctx.put(marker, x=1, y=2)
        assert ctx.require(marker) == {"x": 1, "y": 2}

    def test_non_recording_drops_state(self):
        ctx = ForwardContext(recording=False)
        marker = object()
        ctx.put(marker, x=1)
        assert ctx.get(marker) is None
        with pytest.raises(RuntimeError, match="backward called before forward"):
            ctx.require(marker)

    def test_put_overwrites_previous_call(self):
        ctx = ForwardContext()
        marker = object()
        ctx.put(marker, x=1)
        ctx.put(marker, x=2)
        assert ctx.require(marker) == {"x": 2}

    def test_clear(self):
        ctx = ForwardContext()
        marker = object()
        ctx.put(marker, x=1)
        ctx.bind(marker, w=3)
        ctx.clear()
        assert ctx.get(marker) is None
        assert ctx.bound(marker, "w") is None


class TestBindings:
    def test_bind_and_bound(self):
        ctx = ForwardContext()
        marker = object()
        assert ctx.bound(marker, "slice", "default") == "default"
        ctx.bind(marker, slice="a")
        ctx.bind(marker, other="b")  # merges, does not replace
        assert ctx.bound(marker, "slice") == "a"
        assert ctx.bound(marker, "other") == "b"

    def test_bindings_survive_non_recording(self):
        ctx = ForwardContext(recording=False)
        marker = object()
        ctx.bind(marker, slice="a")
        assert ctx.bound(marker, "slice") == "a"


class TestImplicitShim:
    def test_call_then_backward_without_context(self, rng):
        net = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 3, rng=rng))
        x = rng.standard_normal((2, 4))
        y = net(x)
        grad = net.backward(np.ones_like(y))
        assert grad.shape == x.shape

    def test_backward_without_any_forward_raises(self, rng):
        net = Sequential(Linear(4, 3, rng=rng))
        with pytest.raises(RuntimeError, match="backward called before forward"):
            net.backward(np.ones((2, 3)))

    def test_explicit_contexts_are_independent(self, rng):
        """Two interleaved explicit contexts keep separate tapes over one net."""
        net = Sequential(Linear(4, 4, rng=rng), ReLU())
        x_a = rng.standard_normal((2, 4))
        x_b = rng.standard_normal((3, 4))
        ctx_a, ctx_b = ForwardContext(), ForwardContext()
        y_a = net.forward(x_a, ctx_a)
        y_b = net.forward(x_b, ctx_b)  # would clobber x_a under cache-on-self
        net.zero_grad()
        grad_a = net.backward(np.ones_like(y_a), ctx_a)
        grad_b = net.backward(np.ones_like(y_b), ctx_b)
        assert grad_a.shape == x_a.shape
        assert grad_b.shape == x_b.shape

        # Gradient from ctx_a must match a fresh un-interleaved run.
        fresh = ForwardContext()
        net.forward(x_a, fresh)
        net.zero_grad()
        expected = net.backward(np.ones_like(y_a), fresh)
        np.testing.assert_array_equal(grad_a, expected)

    def test_explicit_context_does_not_disturb_implicit(self, rng):
        net = Sequential(Linear(4, 4, rng=rng))
        x = rng.standard_normal((2, 4))
        y = net(x)  # implicit context
        net.forward(rng.standard_normal((5, 4)), ForwardContext())  # explicit
        grad = net.backward(np.ones_like(y))  # resolves the implicit tape
        assert grad.shape == x.shape
