"""Gradient and behaviour tests for the layer catalogue."""

import numpy as np
import pytest

from repro.nn import Conv2d, Dropout, Flatten, GlobalAvgPool2d, Linear, MaxPool2d, ReLU, Tanh
from repro.utils import make_rng
from tests.nn.gradcheck import check_layer_gradients


class TestConv2dLayer:
    def test_output_shape(self, rng):
        conv = Conv2d(3, 5, 3, padding=1, rng=rng)
        assert conv(rng.standard_normal((2, 3, 8, 8))).shape == (2, 5, 8, 8)

    def test_stride_shape(self, rng):
        conv = Conv2d(1, 2, 3, stride=2, rng=rng)
        assert conv(rng.standard_normal((1, 1, 9, 9))).shape == (1, 2, 4, 4)

    def test_gradients(self, rng):
        conv = Conv2d(2, 3, 3, padding=1, rng=rng)
        x = rng.standard_normal((2, 2, 5, 5))
        check_layer_gradients(conv, x, rng)

    def test_backward_before_forward_raises(self, rng):
        conv = Conv2d(1, 1, 3, rng=rng)
        with pytest.raises(RuntimeError):
            conv.backward(np.zeros((1, 1, 3, 3)))

    def test_invalid_args_rejected(self, rng):
        with pytest.raises(ValueError):
            Conv2d(0, 1, 3, rng=rng)
        with pytest.raises(ValueError):
            Conv2d(1, 1, 3, padding=-1, rng=rng)
        with pytest.raises(TypeError):
            Conv2d(1, 1, 3, rng=42)

    def test_flops_per_image(self, rng):
        conv = Conv2d(1, 16, 3, padding=1, rng=rng)
        # 28x28 output, 16 kernels over 1 channel: 2 * 28*28*16*9 MACs.
        assert conv.flops_per_image(28, 28) == 2 * 28 * 28 * 16 * 9


class TestLinearLayer:
    def test_forward_matches_matmul(self, rng):
        lin = Linear(4, 3, rng=rng)
        x = rng.standard_normal((5, 4))
        np.testing.assert_allclose(lin(x), x @ lin.weight.data.T + lin.bias.data)

    def test_gradients(self, rng):
        lin = Linear(4, 3, rng=rng)
        check_layer_gradients(lin, rng.standard_normal((3, 4)), rng)

    def test_wrong_feature_count_raises(self, rng):
        lin = Linear(4, 3, rng=rng)
        with pytest.raises(ValueError):
            lin(rng.standard_normal((2, 5)))

    def test_non_2d_input_raises(self, rng):
        lin = Linear(4, 3, rng=rng)
        with pytest.raises(ValueError):
            lin(rng.standard_normal((2, 4, 1)))


class TestActivations:
    def test_relu_gradients(self, rng):
        check_layer_gradients(ReLU(), rng.standard_normal((3, 4)) + 0.1, rng)

    def test_tanh_gradients(self, rng):
        check_layer_gradients(Tanh(), rng.standard_normal((3, 4)), rng)

    def test_tanh_range(self, rng):
        y = Tanh()(rng.standard_normal((10, 10)) * 5)
        assert np.all(np.abs(y) <= 1.0)


class TestPoolingLayers:
    def test_maxpool_gradients(self, rng):
        # Offset values to avoid ties at the argmax (non-differentiable points).
        x = rng.standard_normal((2, 2, 6, 6)) + np.arange(36).reshape(6, 6) * 0.01
        check_layer_gradients(MaxPool2d(2), x, rng)

    def test_global_avg_pool(self, rng):
        gap = GlobalAvgPool2d()
        x = rng.standard_normal((2, 3, 4, 4))
        np.testing.assert_allclose(gap(x), x.mean(axis=(2, 3)))

    def test_global_avg_pool_gradients(self, rng):
        check_layer_gradients(GlobalAvgPool2d(), rng.standard_normal((2, 3, 4, 4)), rng)


class TestFlatten:
    def test_roundtrip(self, rng):
        flat = Flatten()
        x = rng.standard_normal((2, 3, 4, 4))
        y = flat(x)
        assert y.shape == (2, 48)
        np.testing.assert_array_equal(flat.backward(y), x)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        drop = Dropout(0.5, rng=rng)
        drop.train(False)
        x = rng.standard_normal((4, 8))
        np.testing.assert_array_equal(drop(x), x)

    def test_train_mode_zeroes_and_scales(self):
        drop = Dropout(0.5, rng=make_rng(0))
        drop.train(True)
        x = np.ones((200, 200))
        y = drop(x)
        kept = y != 0
        # Survivors scaled by 1/(1-p) = 2.
        np.testing.assert_allclose(y[kept], 2.0)
        assert 0.4 < kept.mean() < 0.6

    def test_backward_uses_same_mask(self):
        drop = Dropout(0.5, rng=make_rng(1))
        drop.train(True)
        x = np.ones((10, 10))
        y = drop(x)
        g = drop.backward(np.ones_like(x))
        np.testing.assert_array_equal(g != 0, y != 0)

    def test_p_zero_is_identity_in_train(self, rng):
        drop = Dropout(0.0, rng=rng)
        x = rng.standard_normal((3, 3))
        np.testing.assert_array_equal(drop(x), x)

    def test_invalid_p_rejected(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng=rng)
        with pytest.raises(ValueError):
            Dropout(-0.1, rng=rng)
