"""Tests for post-training int8 quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.quantize import (
    QuantizedTensor,
    compression_ratio,
    dequantize_into,
    dequantize_state_dict,
    load_quantized,
    quantization_error,
    quantize_state_dict,
    quantize_tensor,
    save_quantized,
    state_dict_bytes,
)
from repro.utils import make_rng


class TestQuantizeTensor:
    def test_roundtrip_error_bounded(self):
        rng = make_rng(0)
        w = rng.standard_normal((16, 8, 3, 3))
        q = quantize_tensor(w)
        err = np.abs(q.dequantize() - w).max()
        # Max error is half a quantisation step.
        step = np.abs(w).max() / 127
        assert err <= step / 2 + 1e-12

    def test_values_are_int8(self):
        q = quantize_tensor(np.linspace(-1, 1, 100))
        assert q.values.dtype == np.int8
        assert q.values.max() <= 127 and q.values.min() >= -127

    def test_zero_tensor(self):
        q = quantize_tensor(np.zeros((4, 4)))
        np.testing.assert_array_equal(q.dequantize(), np.zeros((4, 4)))

    def test_per_channel_beats_per_tensor_on_skewed_scales(self):
        rng = make_rng(1)
        w = rng.standard_normal((4, 10))
        w[0] *= 100.0  # one loud channel ruins the shared scale
        assert quantization_error(w, per_channel=True) < quantization_error(
            w, per_channel=False
        )

    def test_extremes_preserved(self):
        w = np.array([[-2.0, 0.0, 2.0]])
        deq = quantize_tensor(w).dequantize()
        assert deq[0, 0] == pytest.approx(-2.0)
        assert deq[0, 2] == pytest.approx(2.0)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 500), per_channel=st.booleans())
    def test_idempotent(self, seed, per_channel):
        """Quantising an already-dequantised tensor changes nothing."""
        w = make_rng(seed).standard_normal((3, 5))
        once = quantize_tensor(w, per_channel).dequantize()
        twice = quantize_tensor(once, per_channel).dequantize()
        np.testing.assert_allclose(once, twice, atol=1e-12)

    def test_type_validation(self):
        with pytest.raises(TypeError):
            QuantizedTensor(values=np.zeros(3), scale=np.ones(1))


class TestStateDictQuantization:
    def test_compression_ratio_near_8x(self, paper_net):
        # float64 store -> int8 wire: ~8x minus scale overhead.
        ratio = compression_ratio(paper_net.state_dict())
        assert 6.0 < ratio <= 8.0

    def test_quantized_model_still_works(self, trained_models, tiny_data):
        """Accuracy after int8 round-trip stays within a point."""
        _, test = tiny_data
        model = trained_models["fluid"]
        baseline = model.evaluate("lower100", test)
        state = model.state_dict()
        quantized = quantize_state_dict(state, per_channel=True)
        model.load_state_dict(dequantize_state_dict(quantized))
        try:
            degraded = model.evaluate("lower100", test)
            assert degraded >= baseline - 0.02
        finally:
            model.load_state_dict(state)  # restore for other tests

    def test_dequantize_into_preserves_storage_identity(self, paper_net):
        """Serving cold-start: materialising a quantised checkpoint must
        write the existing shared arrays in place, not rebind them —
        live inference sessions keep aliasing the same storage."""
        state = paper_net.state_dict()
        ids_before = [id(p.data) for p in paper_net.parameters()]
        try:
            dequantize_into(paper_net, quantize_state_dict(state, per_channel=True))
            assert [id(p.data) for p in paper_net.parameters()] == ids_before
            for name, arr in paper_net.state_dict().items():
                np.testing.assert_allclose(arr, state[name], atol=0.05)
        finally:
            paper_net.load_state_dict(state)

    def test_save_load_roundtrip(self, tmp_path, paper_net):
        quantized = quantize_state_dict(paper_net.state_dict())
        path = str(tmp_path / "q.npz")
        save_quantized(path, quantized)
        loaded = load_quantized(path)
        assert set(loaded) == set(quantized)
        for name in quantized:
            np.testing.assert_array_equal(loaded[name].values, quantized[name].values)
            np.testing.assert_array_equal(loaded[name].scale, quantized[name].scale)

    def test_state_dict_bytes(self, paper_net):
        state = paper_net.state_dict()
        assert state_dict_bytes(state) == sum(a.nbytes for a in state.values())
