"""Tests for compiled inference plans and the packed-weight cache.

The load-bearing properties:

* plan outputs are **bitwise identical** to the eager path for every
  model family, every sub-network width and both dtype policies;
* K threads on one plan (distinct workspaces, one shared packed cache)
  interfere with nothing;
* the steady-state hot path stays within a tiny allocation budget
  (tracemalloc-measured);
* packed blocks refresh when an optimizer step bumps the parameter
  version counter.
"""

import threading
import tracemalloc

import numpy as np
import pytest

from repro.engine.session import InferenceSession
from repro.models import build_model
from repro.nn import SGD
from repro.nn.plan import (
    InferencePlan,
    PackedWeightCache,
    PlanLadder,
    compile_plan_ladder,
    compile_width_plans,
    normalize_rows_ladder,
)
from repro.utils import make_rng
from repro.utils.dtypes import DtypePolicy, dtype_policy
from repro.slimmable import paper_width_spec

FAMILIES = ("static", "dynamic", "fluid")
POLICIES = (DtypePolicy(), DtypePolicy.fast_inference())


@pytest.fixture(scope="module")
def models():
    return {fam: build_model(fam, rng=make_rng(11)) for fam in FAMILIES}


class TestEquivalence:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("policy", POLICIES, ids=["float64", "float32"])
    def test_plan_matches_eager_bitwise_all_widths(self, models, family, policy):
        model = models[family]
        rng = make_rng(5)
        with dtype_policy(policy):
            cache = PackedWeightCache()
            for spec in model.width_spec.all_specs():
                session = InferenceSession(model, spec.name)
                plan = InferencePlan.compile(model, spec.name, batch_rows=6, cache=cache)
                for n in (1, 2, 6):
                    x = rng.standard_normal((n, 1, 28, 28))
                    eager = session.run(x)
                    got = plan.run(x)
                    assert got.dtype == eager.dtype
                    np.testing.assert_array_equal(got, eager)

    def test_run_parts_matches_concatenated_eager(self, models):
        model = models["fluid"]
        rng = make_rng(6)
        plan = InferencePlan.compile(model, "lower50", batch_rows=8)
        session = InferenceSession(model, "lower50")
        parts = [rng.standard_normal((k, 1, 28, 28)) for k in (1, 3, 2)]
        np.testing.assert_array_equal(
            plan.run_parts(parts), session.run(np.concatenate(parts))
        )

    def test_session_with_plan_is_transparent(self, models):
        model = models["fluid"]
        rng = make_rng(7)
        plan = InferencePlan.compile(model, "lower75", batch_rows=4)
        with_plan = InferenceSession(model, "lower75", plan=plan)
        eager = InferenceSession(model, "lower75")
        x = rng.standard_normal((3, 1, 28, 28))
        np.testing.assert_array_equal(with_plan.run(x), eager.run(x))
        # Oversized batches fall back to the eager path transparently.
        big = rng.standard_normal((9, 1, 28, 28))
        np.testing.assert_array_equal(with_plan.run(big), eager.run(big))

    def test_plan_refuses_mismatched_session_width(self, models):
        plan = InferencePlan.compile(models["fluid"], "lower50", batch_rows=2)
        with pytest.raises(ValueError):
            InferenceSession(models["fluid"], "lower100", plan=plan)

    def test_policy_switch_falls_back_to_eager(self, models):
        model = models["fluid"]
        x = make_rng(8).standard_normal((2, 1, 28, 28))
        plan = InferencePlan.compile(model, "lower100", batch_rows=4)  # float64 policy
        with dtype_policy(DtypePolicy.fast_inference()):
            assert not plan.accepts(x)
            session = InferenceSession(model, "lower100", plan=plan)
            out = session.run(x)  # eager float32, not the stale float64 plan
            assert out.dtype == np.float32


class TestCompile:
    def test_compile_accepts_view_and_net_and_family(self, models):
        model = models["fluid"]
        x = make_rng(9).standard_normal((2, 1, 28, 28))
        spec = model.width_spec.find("lower50")
        from_family = InferencePlan.compile(model, "lower50", batch_rows=2)
        from_net = InferencePlan.compile(model.net, spec, batch_rows=2)
        from_view = InferencePlan.compile(model.net.view(spec), batch_rows=2)
        a, b, c = from_family.run(x), from_net.run(x), from_view.run(x)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(a, c)

    def test_compile_rejects_unknown_models(self):
        with pytest.raises(TypeError):
            InferencePlan.compile(object(), batch_rows=2)

    def test_flops_match_cost_model(self, models):
        from repro.device.cost import subnet_flops

        model = models["fluid"]
        for spec in model.width_spec.all_specs():
            plan = InferencePlan.compile(model, spec.name, batch_rows=1)
            assert plan.flops_per_image() == subnet_flops(model.net, spec)

    def test_compile_width_plans_shares_one_cache(self, models):
        model = models["fluid"]
        plans = compile_width_plans(model, ["lower25", "lower100"], batch_rows=2)
        assert set(plans) == {"lower25", "lower100"}
        assert plans["lower25"].cache is plans["lower100"].cache

    def test_oversized_request_rejected(self, models):
        plan = InferencePlan.compile(models["fluid"], "lower25", batch_rows=2)
        with pytest.raises(ValueError):
            plan.run(np.zeros((3, 1, 28, 28)))
        with pytest.raises(ValueError):
            plan.run_parts([np.zeros((2, 1, 28, 28)), np.zeros((1, 1, 28, 28))])


class TestConcurrency:
    def test_threads_share_cache_but_not_workspaces(self, models):
        """K threads x M runs over plans sharing one packed cache: results
        must equal the single-threaded eager reference for each thread's
        width — no cross-thread interference through shared scratch."""
        model = models["fluid"]
        widths = ["lower25", "lower50", "lower75", "lower100"]
        cache = PackedWeightCache()
        plans = compile_width_plans(model, widths, batch_rows=4, cache=cache)
        rng = make_rng(12)
        inputs = {w: rng.standard_normal((4, 1, 28, 28)) for w in widths}
        expected = {w: InferenceSession(model, w).run(inputs[w]) for w in widths}

        errors = []
        barrier = threading.Barrier(len(widths) * 2)

        def worker(width):
            try:
                barrier.wait()
                for _ in range(20):
                    got = plans[width].run(inputs[width])
                    if not np.array_equal(got, expected[width]):
                        raise AssertionError(f"mismatch at width {width}")
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(w,)) for w in widths for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[0]
        # Two threads hammered each plan: its pool grew to at most 2 arenas.
        for plan in plans.values():
            assert plan.workspaces.created <= 2


class TestStaleness:
    def test_optimizer_step_refreshes_packed_blocks(self):
        model = build_model("fluid", rng=make_rng(21))
        plan = InferencePlan.compile(model, "lower100", batch_rows=2)
        x = make_rng(22).standard_normal((2, 1, 28, 28))
        before = plan.run(x)
        packs_before = plan.cache.packs

        view = model.net.view(model.width_spec.full())
        view.train(True)
        logits = view(x)
        view.backward(np.ones_like(logits))
        SGD(view.parameters(), lr=0.1).step()
        view.train(False)

        after = plan.run(x)
        assert plan.cache.packs > packs_before  # blocks re-packed lazily
        assert not np.array_equal(before, after)  # ...and the update is visible
        np.testing.assert_array_equal(after, InferenceSession(model, "lower100").run(x))

    def test_load_state_dict_refreshes_packed_blocks(self):
        donor = build_model("fluid", rng=make_rng(23))
        model = build_model("fluid", rng=make_rng(24))
        plan = InferencePlan.compile(model, "lower100", batch_rows=2)
        x = make_rng(25).standard_normal((2, 1, 28, 28))
        plan.run(x)
        model.load_state_dict(donor.state_dict())
        np.testing.assert_array_equal(
            plan.run(x), InferenceSession(donor, "lower100").run(x)
        )

    def test_parameter_version_counter(self):
        from repro.nn import Parameter

        p = Parameter(np.zeros((2, 2)))
        v0 = p.version
        p.bump_version()
        assert p.version == v0 + 1
        q = Parameter(np.ones((2, 2)))
        p.copy_(q)
        assert p.version == v0 + 2


class TestAllocationBudget:
    #: Steady-state per-request allocation ceiling, in bytes.  A compiled
    #: plan's only per-run allocation is the returned logits copy
    #: (rows x classes x itemsize = 8 x 10 x 8 = 640 bytes) plus small
    #: interpreter noise; the eager path allocates hundreds of kilobytes.
    PER_REQUEST_BUDGET = 16 * 1024

    def test_steady_state_allocations_stay_in_budget(self):
        model = build_model("fluid", rng=make_rng(31))
        plan = InferencePlan.compile(model, "lower100", batch_rows=8)
        x = make_rng(32).standard_normal((8, 1, 28, 28))
        plan.run(x)  # warm: arena + packed cache exist now
        runs = 20
        tracemalloc.start()
        for _ in range(runs):
            plan.run(x)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak / runs < self.PER_REQUEST_BUDGET, (
            f"steady-state allocations {peak / runs:.0f} B/request exceed "
            f"{self.PER_REQUEST_BUDGET} B"
        )

    def test_plan_allocates_far_less_than_eager(self):
        model = build_model("fluid", rng=make_rng(33))
        plan = InferencePlan.compile(model, "lower100", batch_rows=8)
        session = InferenceSession(model, "lower100")
        x = make_rng(34).standard_normal((8, 1, 28, 28))
        plan.run(x)
        session.run(x)

        tracemalloc.start()
        plan.run(x)
        _, plan_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        tracemalloc.start()
        session.run(x)
        _, eager_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        assert plan_peak * 10 < eager_peak, (plan_peak, eager_peak)


class TestPlanLadder:
    """Batch-rows ladder: smallest fitting rung, shared cache, zero allocs."""

    @pytest.fixture(scope="class")
    def ladder(self):
        model = build_model("fluid", rng=make_rng(41))
        return model, compile_plan_ladder(model, "lower50", batch_rows=16)

    def test_default_rungs_and_ordering(self, ladder):
        _, lad = ladder
        assert [p.batch_rows for p in lad.rungs] == [1, 4, 16]
        assert lad.batch_rows == 16

    def test_every_batch_lands_on_smallest_fitting_rung(self, ladder):
        _, lad = ladder
        for rows in range(1, 17):
            rung = lad.rung_for(rows)
            expected = min(r.batch_rows for r in lad.rungs if rows <= r.batch_rows)
            assert rung.batch_rows == expected, (rows, rung.batch_rows)
        assert lad.rung_for(17) is None

    def test_run_dispatches_to_matching_rung_arena(self, ladder):
        model, lad = ladder
        rng = make_rng(42)
        for rows, expected in ((1, 1), (2, 4), (4, 4), (5, 16), (16, 16)):
            rung = lad.rung_for(rows)
            before = rung.workspaces.checkouts
            lad.run(rng.standard_normal((rows, 1, 28, 28)))
            assert rung.batch_rows == expected
            assert rung.workspaces.checkouts == before + 1

    def test_outputs_match_eager_on_every_rung(self, ladder):
        model, lad = ladder
        session = InferenceSession(model, "lower50")
        rng = make_rng(43)
        for rows in (1, 3, 16):
            x = rng.standard_normal((rows, 1, 28, 28))
            np.testing.assert_array_equal(lad.run(x), session.run(x))

    def test_run_parts_uses_total_rows(self, ladder):
        _, lad = ladder
        rng = make_rng(44)
        parts = [rng.standard_normal((2, 1, 28, 28)) for _ in range(2)]
        rung = lad.rung_for(4)
        before = rung.workspaces.checkouts
        out = lad.run_parts(parts)
        assert out.shape == (4, 10)
        assert rung.workspaces.checkouts == before + 1

    def test_rungs_share_one_packed_cache(self, ladder):
        _, lad = ladder
        assert all(p.cache is lad.cache for p in lad.rungs)
        # Identical (layer, slices, dtype) keys: N rungs cost zero extra
        # packs over a single plan.
        single = InferencePlan.compile(lad.net, "lower50", batch_rows=4)
        assert len(lad.cache) == len(single.cache)

    def test_oversized_batch_raises(self, ladder):
        _, lad = ladder
        with pytest.raises(ValueError, match="top rung"):
            lad.run(make_rng(45).standard_normal((17, 1, 28, 28)))

    def test_session_falls_back_to_eager_outside_every_rung(self, ladder):
        model, lad = ladder
        session = InferenceSession(model, "lower50", plan=lad)
        x = make_rng(46).standard_normal((17, 1, 28, 28))
        assert not lad.accepts(x)
        checkouts = [r.workspaces.checkouts for r in lad.rungs]
        out = session.run(x)
        assert out.shape == (17, 10)
        assert [r.workspaces.checkouts for r in lad.rungs] == checkouts
        np.testing.assert_array_equal(out, InferenceSession(model, "lower50").run(x))

    def test_small_rung_arenas_are_smaller(self, ladder):
        _, lad = ladder
        sizes = lad.arena_nbytes()
        assert sizes[1] < sizes[4] < sizes[16]

    def test_zero_steady_state_allocations_on_every_rung(self, ladder):
        _, lad = ladder
        rng = make_rng(47)
        inputs = {p.batch_rows: rng.standard_normal((p.batch_rows, 1, 28, 28))
                  for p in lad.rungs}
        for x in inputs.values():
            lad.run(x)  # warm every rung's arena
        runs = 10
        tracemalloc.start()
        for _ in range(runs):
            for x in inputs.values():
                lad.run(x)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        per_request = peak / (runs * len(inputs))
        assert per_request < TestAllocationBudget.PER_REQUEST_BUDGET, per_request

    def test_mixed_rungs_rejected(self, ladder):
        model, lad = ladder
        other_width = InferencePlan.compile(model, "lower25", batch_rows=2)
        with pytest.raises(ValueError, match="share"):
            PlanLadder([lad.rungs[0], other_width])
        dup = InferencePlan.compile(model, "lower50", batch_rows=1)
        with pytest.raises(ValueError, match="distinct"):
            PlanLadder([lad.rungs[0], dup])
        with pytest.raises(ValueError, match="at least one"):
            PlanLadder([])

    def test_mixed_conv_backends_allowed(self, ladder):
        """Rungs may differ in conv lowering (the per-rung tuning target)."""
        model, lad = ladder
        other_backend = InferencePlan.compile(
            model, "lower50", batch_rows=2, conv_backend="shifted-gemm"
        )
        mixed = PlanLadder([lad.rungs[0], other_backend])
        assert "im2col/shifted-gemm" in repr(mixed)

    def test_normalize_rows_ladder(self):
        assert normalize_rows_ladder((1, 4, 16), 8) == (1, 4, 8)
        assert normalize_rows_ladder((4, 1, 4), 16) == (1, 4, 16)
        assert normalize_rows_ladder((32,), 8) == (8,)
        assert normalize_rows_ladder((), 3) == (3,)
        with pytest.raises(ValueError):
            normalize_rows_ladder((1, 2), 0)

    def test_compile_width_plans_builds_ladders_on_request(self, ladder):
        model, _ = ladder
        plans = compile_width_plans(
            model, ["lower25", "lower50"], batch_rows=8, rows_ladder=(1, 4)
        )
        assert set(plans) == {"lower25", "lower50"}
        for lad in plans.values():
            assert isinstance(lad, PlanLadder)
            assert [p.batch_rows for p in lad.rungs] == [1, 4, 8]
        # All widths' rungs share one cache.
        caches = {id(lad.cache) for lad in plans.values()}
        assert len(caches) == 1


class TestPerRungBackends:
    """conv_backend_per_rung: each rung compiles its own conv lowering."""

    @pytest.fixture(scope="class")
    def model(self):
        return build_model("fluid", rng=make_rng(48))

    def test_ladder_compiles_mapped_backends(self, model):
        lad = compile_plan_ladder(
            model, "lower50", batch_rows=16, rows_ladder=(1, 4, 16),
            conv_backend_per_rung={1: "im2col", 16: "shifted-gemm"},
        )
        backends = {p.batch_rows: p.conv_backend for p in lad.rungs}
        assert backends == {1: "im2col", 4: "im2col", 16: "shifted-gemm"}

    def test_pair_sequence_accepted(self, model):
        lad = compile_plan_ladder(
            model, "lower50", batch_rows=16, rows_ladder=(1, 16),
            conv_backend_per_rung=[(16, "shifted-gemm")],
        )
        assert [p.conv_backend for p in lad.rungs] == ["im2col", "shifted-gemm"]

    def test_unknown_rung_key_rejected(self, model):
        with pytest.raises(ValueError, match="rung"):
            compile_plan_ladder(
                model, "lower50", batch_rows=16, rows_ladder=(1, 16),
                conv_backend_per_rung={8: "shifted-gemm"},
            )

    def test_outputs_match_eager_across_mixed_rungs(self, model):
        lad = compile_plan_ladder(
            model, "lower50", batch_rows=16, rows_ladder=(1, 16),
            conv_backend_per_rung={16: "shifted-gemm"},
        )
        session = InferenceSession(model, "lower50")
        rng = make_rng(49)
        for rows in (1, 16):
            x = rng.standard_normal((rows, 1, 28, 28))
            np.testing.assert_allclose(
                lad.run(x), session.run(x), rtol=1e-10, atol=1e-12
            )

    def test_width_plans_thread_the_per_rung_map(self, model):
        plans = compile_width_plans(
            model, ["lower25", "lower50"], batch_rows=16, rows_ladder=(1, 16),
            conv_backend_per_rung={1: "im2col", 16: "shifted-gemm"},
        )
        for lad in plans.values():
            assert [p.conv_backend for p in lad.rungs] == ["im2col", "shifted-gemm"]

    def test_per_rung_without_ladder_rejected(self, model):
        with pytest.raises(ValueError, match="rows_ladder"):
            compile_width_plans(
                model, ["lower50"], batch_rows=16,
                conv_backend_per_rung={16: "shifted-gemm"},
            )
