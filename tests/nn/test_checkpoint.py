"""Tests for npz checkpoint I/O."""

import numpy as np
import pytest

from repro.nn import Linear, ReLU, Sequential, load_model, load_state, save_model, save_state
from repro.utils import make_rng


class TestStateIO:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        state = {"a": np.arange(6, dtype=float).reshape(2, 3), "b": np.ones(4)}
        save_state(path, state)
        loaded = load_state(path)
        assert set(loaded) == {"a", "b"}
        np.testing.assert_array_equal(loaded["a"], state["a"])

    def test_creates_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "ckpt.npz")
        save_state(path, {"x": np.zeros(2)})
        assert load_state(path)["x"].shape == (2,)

    def test_loaded_arrays_are_owned_copies(self, tmp_path):
        path = str(tmp_path / "c.npz")
        save_state(path, {"x": np.zeros(3)})
        loaded = load_state(path)
        loaded["x"][0] = 5  # must not raise (writable copy)
        assert loaded["x"][0] == 5


class TestModelIO:
    def test_model_roundtrip(self, tmp_path):
        rng = make_rng(0)
        model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
        path = str(tmp_path / "model.npz")
        save_model(path, model)

        fresh = Sequential(Linear(4, 8, rng=make_rng(1)), ReLU(), Linear(8, 2, rng=make_rng(2)))
        load_model(path, fresh)
        x = rng.standard_normal((3, 4))
        np.testing.assert_array_equal(model(x), fresh(x))

    def test_strict_load_rejects_wrong_architecture(self, tmp_path):
        rng = make_rng(0)
        model = Sequential(Linear(4, 8, rng=rng))
        path = str(tmp_path / "m.npz")
        save_model(path, model)
        other = Sequential(Linear(4, 8, rng=rng), Linear(8, 2, rng=rng))
        with pytest.raises(KeyError):
            load_model(path, other)


class TestPartialSlimmableLoad:
    """load_model(strict=False) into slimmable nets (the replica-spawn path)."""

    def _net(self, seed):
        from repro.slimmable import SlimmableConvNet, paper_width_spec

        return SlimmableConvNet(paper_width_spec(), rng=make_rng(seed))

    def test_partial_load_overwrites_only_saved_keys(self, tmp_path):
        from repro.nn.context import ForwardContext

        donor = self._net(0)
        full_state = donor.state_dict()
        partial = {
            k: v for k, v in full_state.items() if k.startswith(("conv0", "conv1"))
        }
        assert partial and len(partial) < len(full_state)
        path = str(tmp_path / "partial.npz")
        save_state(path, partial)

        target = self._net(1)
        before = {k: v.copy() for k, v in target.state_dict().items()}
        load_model(path, target, strict=False)
        after = target.state_dict()
        for key in full_state:
            if key in partial:
                np.testing.assert_array_equal(after[key], full_state[key])
            else:
                np.testing.assert_array_equal(after[key], before[key])

        # A non-max-width view over the partially loaded store still serves.
        view = target.view(target.width_spec.lower(8))
        view.train(False)
        x = make_rng(2).standard_normal((3, 1, 28, 28))
        logits = view.forward(x, ForwardContext(recording=False))
        assert logits.shape == (3, 10)
        assert np.isfinite(logits).all()

    def test_partial_load_reaches_non_max_width_slices(self, tmp_path):
        """Loaded full-width tensors feed every sub-network width's slice."""
        from repro.nn.context import ForwardContext

        donor = self._net(3)
        path = str(tmp_path / "conv0.npz")
        save_state(
            path, {k: v for k, v in donor.state_dict().items() if k.startswith("conv0")}
        )
        target = self._net(4)
        load_model(path, target, strict=False)
        donor_w = donor.state_dict()["conv0.weight"]
        for width in target.width_spec.lower_widths:
            spec = target.width_spec.lower(width)
            view = target.view(spec)
            view.train(False)
            x = make_rng(5).standard_normal((2, 1, 28, 28))
            out = view.forward(x, ForwardContext(recording=False))
            assert out.shape == (2, 10)
            # The slice a narrow view reads is exactly the donor's prefix.
            np.testing.assert_array_equal(
                target.state_dict()["conv0.weight"][:width], donor_w[:width]
            )

    def test_strict_load_rejects_partial_state(self, tmp_path):
        donor = self._net(6)
        path = str(tmp_path / "strict.npz")
        save_state(
            path,
            {k: v for k, v in donor.state_dict().items() if k.startswith("conv0")},
        )
        target = self._net(7)
        with pytest.raises(KeyError, match="missing"):
            load_model(path, target, strict=True)

    def test_strict_false_ignores_unexpected_keys(self, tmp_path):
        donor = self._net(8)
        state = donor.state_dict()
        state["not_a_layer.weight"] = np.zeros(3)
        path = str(tmp_path / "extra.npz")
        save_state(path, state)
        target = self._net(9)
        load_model(path, target, strict=False)
        np.testing.assert_array_equal(
            target.state_dict()["classifier.weight"], state["classifier.weight"]
        )
