"""Tests for npz checkpoint I/O."""

import numpy as np
import pytest

from repro.nn import Linear, ReLU, Sequential, load_model, load_state, save_model, save_state
from repro.utils import make_rng


class TestStateIO:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        state = {"a": np.arange(6, dtype=float).reshape(2, 3), "b": np.ones(4)}
        save_state(path, state)
        loaded = load_state(path)
        assert set(loaded) == {"a", "b"}
        np.testing.assert_array_equal(loaded["a"], state["a"])

    def test_creates_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "ckpt.npz")
        save_state(path, {"x": np.zeros(2)})
        assert load_state(path)["x"].shape == (2,)

    def test_loaded_arrays_are_owned_copies(self, tmp_path):
        path = str(tmp_path / "c.npz")
        save_state(path, {"x": np.zeros(3)})
        loaded = load_state(path)
        loaded["x"][0] = 5  # must not raise (writable copy)
        assert loaded["x"][0] == 5


class TestModelIO:
    def test_model_roundtrip(self, tmp_path):
        rng = make_rng(0)
        model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
        path = str(tmp_path / "model.npz")
        save_model(path, model)

        fresh = Sequential(Linear(4, 8, rng=make_rng(1)), ReLU(), Linear(8, 2, rng=make_rng(2)))
        load_model(path, fresh)
        x = rng.standard_normal((3, 4))
        np.testing.assert_array_equal(model(x), fresh(x))

    def test_strict_load_rejects_wrong_architecture(self, tmp_path):
        rng = make_rng(0)
        model = Sequential(Linear(4, 8, rng=rng))
        path = str(tmp_path / "m.npz")
        save_model(path, model)
        other = Sequential(Linear(4, 8, rng=rng), Linear(8, 2, rng=rng))
        with pytest.raises(KeyError):
            load_model(path, other)
