"""Central-difference gradient checking helpers shared by nn tests."""

from __future__ import annotations

import numpy as np


def numerical_grad_wrt_array(f, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. ``array`` in place."""
    grad = np.zeros_like(array)
    it = np.nditer(array, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = array[idx]
        array[idx] = original + eps
        f_plus = f()
        array[idx] = original - eps
        f_minus = f()
        array[idx] = original
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def check_layer_gradients(layer, x: np.ndarray, rng, atol: float = 1e-6) -> None:
    """Validate a layer's input and parameter gradients numerically.

    Uses the scalar objective ``sum(forward(x) * g)`` for a fixed random
    ``g``, whose gradient through ``backward`` is exactly ``g``.
    """
    out = layer(x)
    g = rng.standard_normal(out.shape)

    def objective() -> float:
        return float((layer(x) * g).sum())

    layer.zero_grad()
    layer(x)
    grad_x = layer.backward(g)

    num_grad_x = numerical_grad_wrt_array(objective, x)
    np.testing.assert_allclose(grad_x, num_grad_x, atol=atol, rtol=1e-4)

    for param in layer.parameters():
        num_grad = numerical_grad_wrt_array(objective, param.data)
        np.testing.assert_allclose(param.grad, num_grad, atol=atol, rtol=1e-4)
