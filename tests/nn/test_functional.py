"""Tests for the stateless numerical kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F
from repro.utils import make_rng


class TestConvOutSize:
    def test_basic(self):
        assert F.conv_out_size(28, 3, 1, 1) == 28
        assert F.conv_out_size(28, 3, 1, 0) == 26
        assert F.conv_out_size(28, 2, 2, 0) == 14

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            F.conv_out_size(2, 5, 1, 0)


class TestIm2Col:
    def test_shape(self):
        x = make_rng(0).standard_normal((2, 3, 8, 8))
        cols, (oh, ow) = F.im2col(x, (3, 3), stride=1, padding=1)
        assert (oh, ow) == (8, 8)
        assert cols.shape == (2 * 64, 3 * 9)

    def test_values_match_naive_window(self):
        rng = make_rng(1)
        x = rng.standard_normal((1, 2, 5, 5))
        cols, (oh, ow) = F.im2col(x, (3, 3), stride=1, padding=0)
        # Window at (i, j) = x[:, :, i:i+3, j:j+3] flattened channel-major.
        for i in range(oh):
            for j in range(ow):
                expected = x[0, :, i : i + 3, j : j + 3].reshape(-1)
                np.testing.assert_array_equal(cols[i * ow + j], expected)

    def test_col2im_is_adjoint_of_im2col(self):
        # <im2col(x), c> == <x, col2im(c)> for all c: the defining property
        # of the backward scatter.
        rng = make_rng(2)
        x = rng.standard_normal((2, 3, 6, 6))
        cols, _ = F.im2col(x, (3, 3), 1, 1)
        c = rng.standard_normal(cols.shape)
        lhs = float((cols * c).sum())
        back = F.col2im(c, x.shape, (3, 3), 1, 1)
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(
        stride=st.integers(1, 2),
        padding=st.integers(0, 2),
        size=st.integers(5, 9),
        kernel=st.integers(1, 3),
    )
    def test_adjoint_property_randomised(self, stride, padding, size, kernel):
        if size + 2 * padding < kernel:
            return
        rng = make_rng(stride * 100 + padding * 10 + size)
        x = rng.standard_normal((1, 2, size, size))
        cols, _ = F.im2col(x, (kernel, kernel), stride, padding)
        c = rng.standard_normal(cols.shape)
        lhs = float((cols * c).sum())
        rhs = float((x * F.col2im(c, x.shape, (kernel, kernel), stride, padding)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)


class TestConv2d:
    def test_matches_naive_convolution(self):
        rng = make_rng(3)
        x = rng.standard_normal((2, 2, 5, 5))
        w = rng.standard_normal((3, 2, 3, 3))
        b = rng.standard_normal(3)
        y, _ = F.conv2d_forward(x, w, b, stride=1, padding=1)
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        naive = np.zeros_like(y)
        for n in range(2):
            for co in range(3):
                for i in range(5):
                    for j in range(5):
                        patch = xp[n, :, i : i + 3, j : j + 3]
                        naive[n, co, i, j] = (patch * w[co]).sum() + b[co]
        np.testing.assert_allclose(y, naive, atol=1e-12)

    def test_channel_mismatch_raises(self):
        rng = make_rng(0)
        x = rng.standard_normal((1, 3, 5, 5))
        w = rng.standard_normal((2, 2, 3, 3))
        with pytest.raises(ValueError):
            F.conv2d_forward(x, w, np.zeros(2), 1, 1)

    def test_backward_shapes(self):
        rng = make_rng(4)
        x = rng.standard_normal((2, 3, 6, 6))
        w = rng.standard_normal((4, 3, 3, 3))
        y, cols = F.conv2d_forward(x, w, np.zeros(4), 1, 1)
        gx, gw, gb = F.conv2d_backward(np.ones_like(y), cols, x.shape, w, 1, 1)
        assert gx.shape == x.shape
        assert gw.shape == w.shape
        assert gb.shape == (4,)


class TestMaxPool:
    def test_forward_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        y, _ = F.maxpool2d_forward(x, 2, 2)
        np.testing.assert_array_equal(y[0, 0], [[5, 7], [13, 15]])

    def test_backward_routes_to_argmax(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        y, argmax = F.maxpool2d_forward(x, 2, 2)
        gx = F.maxpool2d_backward(np.ones_like(y), argmax, x.shape, 2, 2)
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1
        np.testing.assert_array_equal(gx[0, 0], expected)

    def test_gradient_sum_preserved(self):
        rng = make_rng(5)
        x = rng.standard_normal((2, 3, 8, 8))
        y, argmax = F.maxpool2d_forward(x, 2, 2)
        g = rng.standard_normal(y.shape)
        gx = F.maxpool2d_backward(g, argmax, x.shape, 2, 2)
        assert gx.sum() == pytest.approx(g.sum(), rel=1e-10)

    def test_forward_without_indices_matches(self):
        rng = make_rng(9)
        x = rng.standard_normal((2, 3, 8, 8))
        y_full, argmax = F.maxpool2d_forward(x, 2, 2)
        y_fast, none_indices = F.maxpool2d_forward(x, 2, 2, need_indices=False)
        assert none_indices is None
        np.testing.assert_array_equal(y_fast, y_full)

    @pytest.mark.parametrize("kernel,stride", [(2, 2), (3, 1), (3, 2), (2, 1)])
    def test_bincount_scatter_matches_add_at(self, kernel, stride):
        """The flat-bincount backward must equal the np.add.at reference,
        including overlapping windows (stride < kernel) where argmax
        destinations collide."""
        rng = make_rng(10)
        x = rng.standard_normal((3, 2, 9, 9))
        y, argmax = F.maxpool2d_forward(x, kernel, stride)
        g = rng.standard_normal(y.shape)

        gx = F.maxpool2d_backward(g, argmax, x.shape, kernel, stride)

        # Reference scatter with np.add.at (the implementation this replaced).
        n, c, h, w = x.shape
        out_h, out_w = y.shape[2], y.shape[3]
        ref = np.zeros(x.shape, dtype=g.dtype)
        di = argmax // kernel
        dj = argmax % kernel
        oh_idx, ow_idx = np.meshgrid(np.arange(out_h), np.arange(out_w), indexing="ij")
        rows = oh_idx[None, None] * stride + di
        cols = ow_idx[None, None] * stride + dj
        n_idx = np.arange(n)[:, None, None, None]
        c_idx = np.arange(c)[None, :, None, None]
        np.add.at(ref, (n_idx, c_idx, rows, cols), g)

        np.testing.assert_allclose(gx, ref, rtol=0, atol=1e-12)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        rng = make_rng(6)
        probs = F.softmax(rng.standard_normal((5, 10)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5))

    def test_shift_invariance(self):
        logits = make_rng(7).standard_normal((3, 4))
        np.testing.assert_allclose(F.softmax(logits), F.softmax(logits + 100.0))

    def test_extreme_values_stable(self):
        logits = np.array([[1e4, 0.0, -1e4]])
        probs = F.softmax(logits)
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)

    def test_log_softmax_consistency(self):
        logits = make_rng(8).standard_normal((4, 6))
        np.testing.assert_allclose(
            np.exp(F.log_softmax(logits)), F.softmax(logits), atol=1e-12
        )


class TestRelu:
    def test_forward_and_mask(self):
        x = np.array([[-1.0, 0.0, 2.0]])
        y, mask = F.relu_forward(x)
        np.testing.assert_array_equal(y, [[0.0, 0.0, 2.0]])
        np.testing.assert_array_equal(
            F.relu_backward(np.ones_like(x), mask), [[0.0, 0.0, 1.0]]
        )

    def test_forward_without_mask(self):
        x = make_rng(11).standard_normal((4, 5))
        y_full, mask = F.relu_forward(x)
        y_fast, no_mask = F.relu_forward(x, need_mask=False)
        assert no_mask is None
        np.testing.assert_array_equal(y_fast, y_full)
        np.testing.assert_array_equal(y_fast, np.maximum(x, 0))


class TestCastCompute:
    def test_matching_array_returned_unchanged(self):
        """dtype + contiguity match -> the exact same object, no copy."""
        x = np.ascontiguousarray(make_rng(12).standard_normal((3, 4)))
        (out,) = F.cast_compute(True, x)
        assert out is x

    def test_mismatched_dtype_is_converted(self):
        from repro.utils.dtypes import DtypePolicy, dtype_policy

        x = make_rng(13).standard_normal((3, 4))  # float64
        with dtype_policy(DtypePolicy.fast_inference()):
            (out,) = F.cast_compute(False, x)
        assert out.dtype == np.float32 and out.flags.c_contiguous

    def test_non_contiguous_is_made_contiguous(self):
        x = make_rng(14).standard_normal((4, 6))[:, ::2]
        assert not x.flags.c_contiguous
        (out,) = F.cast_compute(True, x)
        assert out.flags.c_contiguous
        np.testing.assert_array_equal(out, x)


class TestIm2ColNoCopy:
    def test_result_is_contiguous(self):
        x = make_rng(15).standard_normal((2, 3, 8, 8))
        cols, _ = F.im2col(x, (3, 3), 1, 1)
        assert cols.flags.c_contiguous

    def test_viewable_1x1_case_still_contiguous(self):
        # 1x1 kernel stride 1: the transpose-reshape can be expressible as
        # a view of the strided windows; the guard must still hand back a
        # contiguous matrix.
        x = make_rng(16).standard_normal((2, 3, 5, 5))
        cols, (oh, ow) = F.im2col(x, (1, 1), 1, 0)
        assert cols.flags.c_contiguous
        np.testing.assert_array_equal(
            cols, x.transpose(0, 2, 3, 1).reshape(2 * 25, 3)
        )

    def test_padding_zero_takes_no_pad_roundtrip(self):
        # With padding=0 the unfold runs on the original storage: the
        # column values are strided reads of x itself.
        x = make_rng(17).standard_normal((1, 2, 6, 6))
        cols, _ = F.im2col(x, (3, 3), 1, 0)
        np.testing.assert_array_equal(cols[0], x[0, :, :3, :3].reshape(-1))


class TestFusedKernels:
    def test_im2col_into_matches_im2col(self):
        rng = make_rng(18)
        x = rng.standard_normal((2, 3, 8, 8))
        ref, (oh, ow) = F.im2col(x, (3, 3), 1, 0)
        out = np.empty_like(ref)
        got = F.im2col_into(x, (3, 3), 1, out)
        assert got == (oh, ow)
        np.testing.assert_array_equal(out, ref)

    def test_gemm_bias_matches_eager(self):
        rng = make_rng(19)
        x = rng.standard_normal((5, 7))
        w = rng.standard_normal((4, 7))
        b = rng.standard_normal(4)
        out = np.empty((5, 4))
        F.gemm_bias(x, w, b, out)
        np.testing.assert_array_equal(out, x @ w.T + b)

    def test_gemm_bias_relu_matches_eager(self):
        rng = make_rng(20)
        cols = rng.standard_normal((6, 9))
        w = rng.standard_normal((3, 9))
        b = rng.standard_normal(3)
        out = np.empty((6, 3))
        F.gemm_bias_relu(cols, w, b, out)
        np.testing.assert_array_equal(out, np.maximum(cols @ w.T + b, 0.0))

    @pytest.mark.parametrize("kernel,stride", [(2, 2), (3, 1), (3, 2)])
    def test_maxpool2d_into_matches_eager(self, kernel, stride):
        rng = make_rng(21)
        x = rng.standard_normal((2, 3, 9, 9))
        # Compare against the index-carrying reduction, not need_indices=False
        # (which now reuses maxpool2d_into itself).
        ref, _ = F.maxpool2d_forward(x, kernel, stride, need_indices=True)
        out = np.empty_like(ref)
        F.maxpool2d_into(x, kernel, stride, out)
        np.testing.assert_array_equal(out, ref)

    @given(
        seed=st.integers(0, 2**31 - 1),
        kernel=st.integers(1, 4),
        stride=st.integers(1, 3),
        extra=st.integers(0, 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_eager_indexless_pool_is_bitwise_the_argmax_path(
        self, seed, kernel, stride, extra
    ):
        """The eager inference pool (the ported pairwise fold) stays bitwise
        identical to the argmax reduction for every window geometry — max is
        exact, so fold order cannot matter."""
        size = kernel + extra
        x = make_rng(seed).standard_normal((2, 2, size, size))
        indexed, argmax = F.maxpool2d_forward(x, kernel, stride, need_indices=True)
        folded, no_idx = F.maxpool2d_forward(x, kernel, stride, need_indices=False)
        assert argmax is not None and no_idx is None
        np.testing.assert_array_equal(folded, indexed)
