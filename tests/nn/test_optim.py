"""Tests for optimizers and LR schedules."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, ConstantLR, CosineLR, StepLR
from repro.nn.parameter import Parameter


def make_param(values) -> Parameter:
    return Parameter(np.array(values, dtype=float))


class TestSGD:
    def test_plain_step(self):
        p = make_param([1.0, 2.0])
        p.grad[:] = [0.5, -0.5]
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, 2.05])

    def test_momentum_accumulates(self):
        p = make_param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.5)
        p.grad[:] = [1.0]
        opt.step()  # v=1, w=-1
        p.grad[:] = [1.0]
        opt.step()  # v=1.5, w=-2.5
        np.testing.assert_allclose(p.data, [-2.5])

    def test_weight_decay_pulls_toward_zero(self):
        p = make_param([10.0])
        opt = SGD([p], lr=0.1, weight_decay=0.1)
        p.grad[:] = [0.0]
        opt.step()
        assert 0 < p.data[0] < 10.0

    def test_freeze_mask_blocks_update(self):
        p = make_param([1.0, 1.0])
        p.set_freeze_mask(np.array([1.0, 0.0]))
        p.grad[:] = [1.0, 1.0]
        SGD([p], lr=0.5).step()
        np.testing.assert_allclose(p.data, [0.5, 1.0])

    def test_freeze_mask_blocks_weight_decay_too(self):
        p = make_param([2.0, 2.0])
        p.set_freeze_mask(np.array([0.0, 1.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        p.grad[:] = [0.0, 0.0]
        opt.step()
        assert p.data[0] == 2.0
        assert p.data[1] < 2.0

    def test_requires_grad_false_skips(self):
        p = make_param([1.0])
        p.requires_grad = False
        p.grad[:] = [1.0]
        SGD([p], lr=1.0).step()
        assert p.data[0] == 1.0

    def test_validation(self):
        p = make_param([1.0])
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.0)

    def test_converges_on_quadratic(self):
        # Minimise f(w) = ||w - target||^2 by explicit gradient steps.
        target = np.array([3.0, -2.0])
        p = make_param([0.0, 0.0])
        opt = SGD([p], lr=0.05, momentum=0.8)
        for _ in range(200):
            opt.zero_grad()
            p.grad[:] = 2 * (p.data - target)
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-4)


class TestAdam:
    def test_converges_on_quadratic(self):
        target = np.array([1.0, -1.0, 0.5])
        p = make_param([0.0, 0.0, 0.0])
        opt = Adam([p], lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            p.grad[:] = 2 * (p.data - target)
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-3)

    def test_first_step_magnitude_is_lr(self):
        # With bias correction, |first update| ~= lr regardless of grad scale.
        p = make_param([0.0])
        opt = Adam([p], lr=0.01)
        p.grad[:] = [1e-3]
        opt.step()
        assert abs(p.data[0]) == pytest.approx(0.01, rel=1e-3)

    def test_freeze_mask_blocks_update(self):
        p = make_param([1.0, 1.0])
        p.set_freeze_mask(np.array([0.0, 1.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(5):
            p.zero_grad()
            p.grad[:] = [1.0, 1.0]
            opt.step()
        assert p.data[0] == 1.0
        assert p.data[1] < 1.0

    def test_validation(self):
        p = make_param([1.0])
        with pytest.raises(ValueError):
            Adam([p], lr=0.1, betas=(1.0, 0.9))
        with pytest.raises(ValueError):
            Adam([p], lr=0.1, eps=0.0)


class TestSchedulers:
    def _opt(self):
        return SGD([make_param([0.0])], lr=1.0)

    def test_step_lr(self):
        opt = self._opt()
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_cosine_endpoints(self):
        opt = self._opt()
        sched = CosineLR(opt, t_max=10, min_lr=0.01)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[0] < 1.0
        assert lrs[-1] == pytest.approx(0.01)
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_constant(self):
        opt = self._opt()
        sched = ConstantLR(opt)
        assert [sched.step() for _ in range(3)] == [1.0, 1.0, 1.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            StepLR(self._opt(), step_size=0)
        with pytest.raises(ValueError):
            CosineLR(self._opt(), t_max=0)
