"""Property-based equivalence suite for the three conv backends.

The contracts under test (see ``nn/functional.py`` / README):

* ``im2col-blocked`` is **bitwise identical** to the unblocked gather for
  every kernel size, stride, padding, and tile size — it is the same
  element-for-element copy in a different visit order;
* ``shifted-gemm`` is **allclose** (within the per-dtype
  :data:`~repro.nn.functional.SHIFTED_GEMM_TOLERANCE`) to the im2col
  convolution for every stride-1 geometry, in both float64 and float32 —
  the only divergence is reduction re-association across kernel columns;
* at the plan level, the exact backends stay bitwise equal to the eager
  serving path at every width under both dtype policies, and
  shifted-GEMM stays inside its tolerance.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.session import InferenceSession
from repro.models import build_model
from repro.nn import functional as F
from repro.nn.plan import InferencePlan, PackedWeightCache
from repro.utils import make_rng
from repro.utils.dtypes import DtypePolicy, dtype_policy

WIDTHS = ("lower25", "lower50", "lower75", "lower100")


@pytest.fixture(scope="module")
def fluid_model():
    return build_model("fluid", rng=make_rng(23))


conv_geometry = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 2**31 - 1),
        "n": st.integers(1, 3),
        "c_in": st.integers(1, 4),
        "c_out": st.integers(1, 4),
        "kernel": st.integers(1, 4),
        "stride": st.integers(1, 3),
        "padding": st.integers(0, 2),
        "extra_h": st.integers(0, 5),
        "extra_w": st.integers(0, 5),
    }
)


def _random_case(geo, dtype=np.float64):
    rng = make_rng(geo["seed"])
    k = geo["kernel"]
    h, w = k + geo["extra_h"], k + geo["extra_w"]
    x = rng.standard_normal((geo["n"], geo["c_in"], h, w)).astype(dtype)
    weight = rng.standard_normal((geo["c_out"], geo["c_in"], k, k)).astype(dtype)
    bias = rng.standard_normal(geo["c_out"]).astype(dtype)
    return x, weight, bias


class TestBlockedIm2Col:
    @given(geo=conv_geometry, row_block=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_blocked_gather_is_bitwise_identical(self, geo, row_block):
        """Any tile size produces exactly the unblocked column matrix."""
        x, _, _ = _random_case(geo)
        k, stride, pad = geo["kernel"], geo["stride"], geo["padding"]
        ref, (oh, ow) = F.im2col(x, (k, k), stride, pad)
        padded = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad))) if pad else x
        out = np.empty_like(ref)
        shape = F.im2col_into(padded, (k, k), stride, out, row_block=row_block)
        assert shape == (oh, ow)
        np.testing.assert_array_equal(out, ref)

    def test_row_block_targets_band_bytes(self):
        # One band row is channels * padded_w * itemsize bytes; the chosen
        # tile's source band must fit the target (or be the minimum of 1).
        block = F.im2col_row_block(8, 32, 3, 1, 8, target_bytes=16 * 1024)
        band = 8 * 32 * 8 * (block + 3 - 1)
        assert block >= 1 and band <= 16 * 1024 + 8 * 32 * 8 * (3 - 1)
        # A tiny target degrades gracefully to single-row tiles.
        assert F.im2col_row_block(64, 256, 3, 1, 8, target_bytes=1) == 1
        # Stride scales the rows a band covers.
        assert F.im2col_row_block(1, 8, 3, 2, 8) >= 1

    def test_plan_row_blocks_compiled_only_for_blocked_backend(self, fluid_model):
        plain = InferencePlan.compile(fluid_model, "lower50", batch_rows=4)
        blocked = InferencePlan.compile(
            fluid_model, "lower50", batch_rows=4, conv_backend="im2col-blocked"
        )
        assert all(s.row_block is None for s in plain._steps)
        assert all(s.row_block >= 1 for s in blocked._steps)


class TestShiftedGemm:
    @given(geo=conv_geometry)
    @settings(max_examples=60, deadline=None)
    def test_float64_within_tolerance(self, geo):
        x, weight, bias = _random_case(geo)
        ref, _ = F.conv2d_forward(x, weight, bias, 1, geo["padding"])
        got = F.conv2d_shifted(x, weight, bias, geo["padding"])
        tol = F.shifted_gemm_tolerance(np.float64)
        np.testing.assert_allclose(got, ref, **tol)

    @given(geo=conv_geometry)
    @settings(max_examples=40, deadline=None)
    def test_float32_within_tolerance(self, geo):
        x, weight, bias = _random_case(geo, dtype=np.float32)
        ref, _ = F.conv2d_forward(x, weight, bias, 1, geo["padding"])
        got = F.conv2d_shifted(x, weight, bias, geo["padding"])
        assert got.dtype == np.float32
        tol = F.shifted_gemm_tolerance(np.float32)
        np.testing.assert_allclose(got, ref, **tol)

    def test_channel_mismatch_and_rectangular_kernel_rejected(self):
        rng = make_rng(3)
        x = rng.standard_normal((1, 2, 6, 6))
        with pytest.raises(ValueError, match="channels"):
            F.conv2d_shifted(x, rng.standard_normal((3, 4, 3, 3)), np.zeros(3), 1)
        with pytest.raises(ValueError, match="square"):
            F.conv2d_shifted(x, rng.standard_normal((3, 2, 3, 2)), np.zeros(3), 1)

    def test_stride_2_plan_compile_rejected(self):
        walk = [{"stride": 2, "index": 0}]
        with pytest.raises(ValueError, match="stride-1"):
            InferencePlan._compile_shifted(None, walk, 4, np.dtype("float64"))

    def test_unknown_backend_rejected(self, fluid_model):
        with pytest.raises(ValueError, match="unknown conv backend"):
            InferencePlan.compile(fluid_model, "lower50", batch_rows=2, conv_backend="winograd")
        with pytest.raises(ValueError, match="unknown conv backend"):
            F.check_conv_backend("winograd")

    def test_tolerance_table_covers_compute_dtypes(self):
        assert F.shifted_gemm_tolerance("float32")["rtol"] > F.shifted_gemm_tolerance(
            "float64"
        )["rtol"]
        with pytest.raises(ValueError, match="tolerance"):
            F.shifted_gemm_tolerance("float16")


class TestPlanBackendEquivalence:
    """Plan-level contracts across widths, batches, and dtype policies."""

    @pytest.mark.parametrize("policy", (DtypePolicy(), DtypePolicy.fast_inference()),
                             ids=["float64", "float32"])
    @pytest.mark.parametrize("backend", F.CONV_BACKENDS)
    def test_backend_contract_all_widths(self, fluid_model, policy, backend):
        rng = make_rng(7)
        with dtype_policy(policy):
            cache = PackedWeightCache()
            for width in WIDTHS:
                session = InferenceSession(fluid_model, width)
                plan = InferencePlan.compile(
                    fluid_model, width, batch_rows=5, cache=cache, conv_backend=backend
                )
                for n in (1, 3, 5):
                    x = rng.standard_normal((n, 1, 28, 28))
                    eager = session.run(x)
                    got = plan.run(x)
                    assert got.dtype == eager.dtype
                    if plan.exact:
                        np.testing.assert_array_equal(got, eager)
                    else:
                        np.testing.assert_allclose(
                            got, eager, **F.shifted_gemm_tolerance(plan.dtype)
                        )

    def test_exact_flag_tracks_backend(self, fluid_model):
        for backend in F.CONV_BACKENDS:
            plan = InferencePlan.compile(
                fluid_model, "lower25", batch_rows=2, conv_backend=backend
            )
            assert plan.exact == (backend != "shifted-gemm")

    def test_shifted_run_parts_scatters_like_concatenate(self, fluid_model):
        rng = make_rng(9)
        plan = InferencePlan.compile(
            fluid_model, "lower50", batch_rows=6, conv_backend="shifted-gemm"
        )
        parts = [rng.standard_normal((n, 1, 28, 28)) for n in (1, 2, 3)]
        whole = plan.run(np.concatenate(parts, axis=0))
        split = plan.run_parts(parts)
        np.testing.assert_array_equal(split, whole)

    def test_shifted_smaller_batch_unpolluted_by_previous_rows(self, fluid_model):
        """The fixed compute extent reuses arena rows beyond n; earlier
        requests' rows must never leak into a later, smaller request."""
        rng = make_rng(10)
        plan = InferencePlan.compile(
            fluid_model, "lower25", batch_rows=4, conv_backend="shifted-gemm"
        )
        plan.run(rng.standard_normal((4, 1, 28, 28)))  # fill all rows
        x = rng.standard_normal((2, 1, 28, 28))
        np.testing.assert_array_equal(plan.run(x), plan.run(x))
        session = InferenceSession(fluid_model, "lower25")
        np.testing.assert_allclose(
            plan.run(x), session.run(x), **F.shifted_gemm_tolerance(plan.dtype)
        )
