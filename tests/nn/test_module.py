"""Tests for the Module/Sequential machinery."""

import numpy as np
import pytest

from repro.nn import Conv2d, Flatten, Identity, Linear, MaxPool2d, Module, ReLU, Sequential
from repro.nn.parameter import Parameter
from repro.utils import make_rng


def small_mlp(rng):
    return Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 3, rng=rng))


class TestRegistration:
    def test_attribute_assignment_registers(self, rng):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.fc = Linear(2, 2, rng=rng)
                self.w = Parameter(np.zeros((2,)), name="w")

        net = Net()
        names = [n for n, _ in net.named_parameters()]
        assert "w" in names
        assert "fc.weight" in names and "fc.bias" in names

    def test_duplicate_registration_rejected(self, rng):
        m = Module()
        m.register_parameter("p", Parameter(np.zeros(2)))
        with pytest.raises(ValueError):
            m.register_parameter("p", Parameter(np.zeros(2)))

    def test_parameters_deduplicated(self, rng):
        shared = Linear(2, 2, rng=rng)

        class Net(Module):
            def __init__(self):
                super().__init__()
                self.a = shared
                self.b = shared

        assert len(Net().parameters()) == 2  # weight + bias once


class TestTrainEval:
    def test_mode_propagates(self, rng):
        net = small_mlp(rng)
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())


class TestStateDict:
    def test_roundtrip(self, rng):
        net = small_mlp(rng)
        state = net.state_dict()
        net2 = small_mlp(make_rng(99))
        net2.load_state_dict(state)
        x = rng.standard_normal((2, 4))
        np.testing.assert_array_equal(net(x), net2(x))

    def test_state_dict_is_a_copy(self, rng):
        net = small_mlp(rng)
        state = net.state_dict()
        state["0.weight"] += 100.0
        assert not np.allclose(net.layers[0].weight.data, state["0.weight"])

    def test_strict_mismatch_raises(self, rng):
        net = small_mlp(rng)
        with pytest.raises(KeyError):
            net.load_state_dict({"bogus": np.zeros(2)})

    def test_shape_mismatch_raises(self, rng):
        net = small_mlp(rng)
        state = net.state_dict()
        state["0.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_non_strict_partial_load(self, rng):
        net = small_mlp(rng)
        original = net.layers[2].weight.data.copy()
        net.load_state_dict({"0.weight": np.zeros((8, 4))}, strict=False)
        np.testing.assert_array_equal(net.layers[0].weight.data, 0.0)
        np.testing.assert_array_equal(net.layers[2].weight.data, original)


class TestSequential:
    def test_forward_backward_chain(self, rng):
        net = Sequential(
            Conv2d(1, 2, 3, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Linear(2 * 4 * 4, 3, rng=rng),
        )
        x = rng.standard_normal((2, 1, 8, 8))
        y = net(x)
        assert y.shape == (2, 3)
        grad = net.backward(np.ones_like(y))
        assert grad.shape == x.shape

    def test_append_and_indexing(self, rng):
        net = Sequential(Linear(2, 2, rng=rng))
        net.append(ReLU())
        assert len(net) == 2
        assert isinstance(net[1], ReLU)

    def test_zero_grad_clears_all(self, rng):
        net = small_mlp(rng)
        y = net(rng.standard_normal((2, 4)))
        net.backward(np.ones_like(y))
        assert any(p.grad.any() for p in net.parameters())
        net.zero_grad()
        assert all(not p.grad.any() for p in net.parameters())

    def test_num_parameters(self, rng):
        net = small_mlp(rng)
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 3 + 3


class TestIdentity:
    def test_passthrough(self, rng):
        x = rng.standard_normal((3, 3))
        ident = Identity()
        np.testing.assert_array_equal(ident(x), x)
        np.testing.assert_array_equal(ident.backward(x), x)
