"""Tests for the family training recipes (the Fig. 2 training procedures)."""

import pytest

from repro.training import RecipeConfig, TrainConfig, train_family
from repro.utils import make_rng


class TestRecipeBehaviour:
    """Uses the session-cached trained models; asserts the qualitative
    certification-vs-capability pattern that drives the whole paper."""

    def test_static_full_model_works(self, trained_models, tiny_data):
        _, test = tiny_data
        assert trained_models["static"].evaluate("lower100", test) > 0.5

    def test_static_slices_are_garbage(self, trained_models, tiny_data):
        """Neither the lower nor upper 25% slice of a statically trained
        model is usable — the physical reason Fig. 1b/1c shows total failure."""
        _, test = tiny_data
        model = trained_models["static"]
        assert model.evaluate("lower25", test) < 0.5

    def test_dynamic_lower_works_upper_fails(self, trained_models, tiny_data):
        _, test = tiny_data
        model = trained_models["dynamic"]
        assert model.evaluate("lower50", test) > 0.4
        assert model.evaluate("upper50", test) < 0.4

    def test_fluid_everything_works(self, trained_models, tiny_data):
        _, test = tiny_data
        model = trained_models["fluid"]
        for name in ("lower25", "lower50", "lower75", "lower100", "upper25", "upper50"):
            assert model.evaluate(name, test) > 0.4, name

    def test_unknown_family_rejected(self, tiny_data):
        train, _ = tiny_data
        with pytest.raises(ValueError):
            train_family("hybrid", train, rng=make_rng(0))


@pytest.mark.slow
class TestBudgetFairness:
    def test_static_budget_matches_dynamic(self, tiny_data):
        """Static gets the same total epoch budget the slimmable recipes
        spend across stages, so accuracy comparisons are fair."""
        train, _ = tiny_data
        cfg = RecipeConfig(stage=TrainConfig(epochs=1, lr=0.05), niters=2)
        _, static_history = train_family("static", train, rng=make_rng(0), config=cfg)
        _, dynamic_history = train_family("dynamic", train, rng=make_rng(0), config=cfg)
        static_epochs = len(static_history.records)
        dynamic_base_epochs = len(
            [r for r in dynamic_history.records if r.stage.split("/")[-1].startswith("lower")]
        )
        assert static_epochs == dynamic_base_epochs
