"""Tests for the base trainer."""

import numpy as np
import pytest

from repro.models import build_model
from repro.training import EarlyStopping, TrainConfig, Trainer, evaluate_view
from repro.utils import make_rng


class TestTrainConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainConfig(lr=0)
        with pytest.raises(ValueError):
            TrainConfig(momentum=1.0)
        with pytest.raises(ValueError):
            TrainConfig(weight_decay=-1)

    def test_scaled_lr(self):
        cfg = TrainConfig(lr=0.1).scaled_lr(0.5)
        assert cfg.lr == pytest.approx(0.05)
        with pytest.raises(ValueError):
            TrainConfig().scaled_lr(0)


@pytest.mark.slow
class TestFit:
    def test_loss_decreases(self, tiny_data):
        train, _ = tiny_data
        model = build_model("static", rng=make_rng(0))
        history = Trainer().fit(
            model.full_view(),
            train,
            TrainConfig(epochs=3, lr=0.05),
            rng=make_rng(1),
        )
        losses = [r.train_loss for r in history.records]
        assert len(losses) == 3
        assert losses[-1] < losses[0]

    def test_beats_chance(self, tiny_data):
        train, test = tiny_data
        model = build_model("static", rng=make_rng(0))
        Trainer().fit(model.full_view(), train, TrainConfig(epochs=3, lr=0.05), rng=make_rng(1))
        assert evaluate_view(model.full_view(), test) > 0.5

    def test_validation_accuracy_recorded(self, tiny_data):
        train, test = tiny_data
        model = build_model("static", rng=make_rng(0))
        history = Trainer().fit(
            model.full_view(), train, TrainConfig(epochs=2, lr=0.05),
            rng=make_rng(1), val_set=test,
        )
        assert all(r.val_accuracy is not None for r in history.records)

    def test_deterministic_given_seeds(self, tiny_data):
        train, _ = tiny_data

        def run():
            model = build_model("static", rng=make_rng(0))
            history = Trainer().fit(
                model.full_view(), train, TrainConfig(epochs=1, lr=0.05), rng=make_rng(1)
            )
            return history.records[-1].train_loss, model.net.state_dict()

        loss1, state1 = run()
        loss2, state2 = run()
        assert loss1 == loss2
        for key in state1:
            np.testing.assert_array_equal(state1[key], state2[key])

    def test_rng_required(self, tiny_data):
        train, _ = tiny_data
        model = build_model("static", rng=make_rng(0))
        with pytest.raises(TypeError):
            Trainer().fit(model.full_view(), train, TrainConfig(epochs=1), rng=123)

    def test_model_left_in_eval_mode(self, tiny_data):
        train, _ = tiny_data
        model = build_model("static", rng=make_rng(0))
        view = model.full_view()
        Trainer().fit(view, train, TrainConfig(epochs=1, lr=0.05), rng=make_rng(1))
        assert not model.net.training


@pytest.mark.slow
class TestEarlyStoppingIntegration:
    def test_stops_before_budget(self, tiny_data):
        train, test = tiny_data
        model = build_model("static", rng=make_rng(0))
        # min_delta so large that no improvement ever counts.
        trainer = Trainer(callbacks=[EarlyStopping(patience=1, min_delta=1.0)])
        history = trainer.fit(
            model.full_view(), train, TrainConfig(epochs=10, lr=0.05),
            rng=make_rng(1), val_set=test,
        )
        assert len(history.records) < 10
