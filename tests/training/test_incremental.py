"""Tests for incremental training (the Dynamic DNN recipe, paper ref [3])."""

import numpy as np
import pytest

from repro.models import build_model
from repro.training import IncrementalTrainer, TrainConfig
from repro.utils import make_rng


@pytest.mark.slow
class TestFreezingSemantics:
    def test_earlier_subnet_weights_frozen_in_later_stages(self, tiny_data):
        """After the 25% stage completes, the 25% region must never move."""
        train, _ = tiny_data
        model = build_model("dynamic", rng=make_rng(0))
        net = model.net
        trainer = IncrementalTrainer()
        config = TrainConfig(epochs=1, lr=0.05)

        # Run the first stage manually, snapshot its region, then let the
        # full pass run the remaining stages and compare.
        from repro.slimmable import RegionTracker

        tracker = RegionTracker()
        spec25 = model.width_spec.find("lower25")
        net.apply_freeze(spec25, tracker)
        trainer.trainer.fit(net.view(spec25), train, config, rng=make_rng(1))
        trainer._mark(net, spec25, tracker)

        snapshot = {
            "conv0": net.convs[0].weight.data[:4, :1].copy(),
            "conv1": net.convs[1].weight.data[:4, :4].copy(),
            "fc_cols": net.classifier.weight.data[:, : 4 * 49].copy(),
        }
        for spec_name in ("lower50", "lower75", "lower100"):
            spec = model.width_spec.find(spec_name)
            net.apply_freeze(spec, tracker)
            trainer.trainer.fit(net.view(spec), train, config, rng=make_rng(2))
            trainer._mark(net, spec, tracker)

        np.testing.assert_array_equal(net.convs[0].weight.data[:4, :1], snapshot["conv0"])
        np.testing.assert_array_equal(net.convs[1].weight.data[:4, :4], snapshot["conv1"])
        np.testing.assert_array_equal(
            net.classifier.weight.data[:, : 4 * 49], snapshot["fc_cols"]
        )

    def test_freeze_masks_cleared_after_fit(self, tiny_data):
        train, _ = tiny_data
        model = build_model("dynamic", rng=make_rng(0))
        IncrementalTrainer().fit(model, train, TrainConfig(epochs=1, lr=0.05), rng=make_rng(1))
        assert all(p.grad_mask is None for p in model.net.parameters())

    def test_history_has_all_stages(self, tiny_data):
        train, _ = tiny_data
        model = build_model("dynamic", rng=make_rng(0))
        history = IncrementalTrainer().fit(
            model, train, TrainConfig(epochs=1, lr=0.05), rng=make_rng(1)
        )
        assert history.stages() == ["lower25", "lower50", "lower75", "lower100"]


@pytest.mark.slow
class TestLearnedBehaviour:
    def test_all_lower_subnets_beat_chance(self, tiny_data):
        train, test = tiny_data
        model = build_model("dynamic", rng=make_rng(0))
        IncrementalTrainer().fit(model, train, TrainConfig(epochs=2, lr=0.05), rng=make_rng(1))
        for name in ("lower25", "lower50", "lower75", "lower100"):
            assert model.evaluate(name, test) > 0.4, name

    def test_upper_subnets_remain_untrained(self, tiny_data):
        """The Dynamic DNN's defining failure: its upper slices are useless
        standalone (paper Fig. 1c)."""
        train, test = tiny_data
        model = build_model("dynamic", rng=make_rng(0))
        IncrementalTrainer().fit(model, train, TrainConfig(epochs=2, lr=0.05), rng=make_rng(1))
        assert model.evaluate("upper50", test) < 0.4
