"""Tests for nested incremental training (Algorithm 1)."""

import pytest

from repro.models import build_model
from repro.training import NestedIncrementalTrainer, NestedTrainConfig, TrainConfig
from repro.utils import make_rng


class TestNestedConfig:
    def test_defaults(self):
        cfg = NestedTrainConfig()
        assert cfg.upper_config().lr == pytest.approx(cfg.base.lr * 0.5)

    def test_explicit_upper(self):
        cfg = NestedTrainConfig(upper=TrainConfig(lr=0.01))
        assert cfg.upper_config().lr == 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            NestedTrainConfig(niters=0)
        with pytest.raises(ValueError):
            NestedTrainConfig(lr_decay=0.0)


@pytest.mark.slow
class TestAlgorithm1:
    @pytest.fixture(scope="class")
    def fluid_and_history(self, tiny_data):
        train, _ = tiny_data
        model = build_model("fluid", rng=make_rng(0))
        config = NestedTrainConfig(base=TrainConfig(epochs=1, lr=0.05), niters=2)
        history = NestedIncrementalTrainer().fit(model, train, config, rng=make_rng(1))
        return model, history

    def test_stage_schedule_matches_algorithm(self, fluid_and_history):
        """Each iteration: lower 25->50->75->100, then upper 25->50."""
        _, history = fluid_and_history
        expected_per_iter = ["lower25", "lower50", "lower75", "lower100", "upper25", "upper50"]
        expected = [f"iter{i}/{s}" for i in range(2) for s in expected_per_iter]
        assert history.stages() == expected

    def test_lr_decays_across_iterations(self, fluid_and_history):
        _, history = fluid_and_history
        lr_iter0 = history.for_stage("iter0/lower25")[0].lr
        lr_iter1 = history.for_stage("iter1/lower25")[0].lr
        assert lr_iter1 == pytest.approx(lr_iter0 * 0.5)

    def test_upper_subnets_become_usable(self, fluid_and_history, tiny_data):
        """Algorithm 1's purpose: the upper slices work standalone."""
        model, _ = fluid_and_history
        _, test = tiny_data
        assert model.evaluate("upper25", test) > 0.4
        assert model.evaluate("upper50", test) > 0.4

    def test_combined_models_still_work(self, fluid_and_history, tiny_data):
        """And the combined 75%/100% models survive the upper retraining."""
        model, _ = fluid_and_history
        _, test = tiny_data
        assert model.evaluate("lower75", test) > 0.4
        assert model.evaluate("lower100", test) > 0.4

    def test_lower_subnets_still_work(self, fluid_and_history, tiny_data):
        model, _ = fluid_and_history
        _, test = tiny_data
        assert model.evaluate("lower25", test) > 0.4
        assert model.evaluate("lower50", test) > 0.4

    def test_masks_cleared(self, fluid_and_history):
        model, _ = fluid_and_history
        assert all(p.grad_mask is None for p in model.net.parameters())


@pytest.mark.slow
class TestWeightSharingDuringTraining:
    def test_upper_training_touches_full_models_upper_blocks(self, tiny_data):
        """Algorithm 1 lines 7/9 ('copy weights from/back to the 100% model')
        hold by aliasing: the upper stage must modify the shared storage that
        the 100% model reads."""
        train, _ = tiny_data
        model = build_model("fluid", rng=make_rng(0))
        net = model.net
        config = NestedTrainConfig(base=TrainConfig(epochs=1, lr=0.05), niters=1)

        # Train only the base phase by running the full algorithm with the
        # upper blocks snapshotted before.
        upper_block_before = net.convs[1].weight.data[8:, 8:].copy()
        NestedIncrementalTrainer().fit(model, train, config, rng=make_rng(1))
        upper_block_after = net.convs[1].weight.data[8:, 8:]
        assert not (upper_block_before == upper_block_after).all()
