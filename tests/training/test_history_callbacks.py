"""Tests for history records and callbacks."""

import logging

import pytest

from repro.training import EarlyStopping, EpochRecord, History, LoggingCallback


def rec(stage="s", epoch=0, loss=1.0, acc=0.5, val=None):
    return EpochRecord(stage=stage, epoch=epoch, train_loss=loss, train_accuracy=acc, val_accuracy=val)


class TestHistory:
    def test_stages_preserve_order(self):
        h = History()
        for s in ("a", "b", "a", "c"):
            h.add(rec(stage=s))
        assert h.stages() == ["a", "b", "c"]

    def test_for_stage(self):
        h = History()
        h.add(rec(stage="a", epoch=0))
        h.add(rec(stage="b", epoch=0))
        h.add(rec(stage="a", epoch=1))
        assert [r.epoch for r in h.for_stage("a")] == [0, 1]

    def test_final_loss(self):
        h = History()
        h.add(rec(loss=2.0))
        h.add(rec(loss=1.0))
        assert h.final_loss() == 1.0

    def test_final_loss_empty_raises(self):
        with pytest.raises(ValueError):
            History().final_loss()

    def test_best_val_accuracy(self):
        h = History()
        h.add(rec(val=0.8))
        h.add(rec(val=0.9))
        h.add(rec(val=None))
        assert h.best_val_accuracy() == 0.9

    def test_best_val_none_when_absent(self):
        h = History()
        h.add(rec())
        assert h.best_val_accuracy() is None

    def test_extend_and_len(self):
        a, b = History(), History()
        a.add(rec())
        b.add(rec())
        a.extend(b)
        assert len(a) == 2

    def test_to_dicts(self):
        h = History()
        h.add(rec(stage="x"))
        assert h.to_dicts()[0]["stage"] == "x"


class TestEarlyStopping:
    def test_no_val_never_stops(self):
        cb = EarlyStopping(patience=1)
        assert not any(cb.on_epoch_end(rec(val=None)) for _ in range(10))

    def test_stops_after_patience(self):
        cb = EarlyStopping(patience=2, min_delta=0.0)
        assert not cb.on_epoch_end(rec(val=0.9))
        assert not cb.on_epoch_end(rec(val=0.9))   # bad 1
        assert cb.on_epoch_end(rec(val=0.9))       # bad 2 -> stop

    def test_improvement_resets(self):
        cb = EarlyStopping(patience=2, min_delta=0.0)
        cb.on_epoch_end(rec(val=0.5))
        cb.on_epoch_end(rec(val=0.5))   # bad 1
        cb.on_epoch_end(rec(val=0.6))   # improvement
        assert not cb.on_epoch_end(rec(val=0.6))  # bad 1 again

    def test_stage_start_resets(self):
        cb = EarlyStopping(patience=1)
        cb.on_epoch_end(rec(val=0.9))
        cb.on_epoch_end(rec(val=0.8))
        cb.on_stage_start("next")
        assert not cb.on_epoch_end(rec(val=0.1))

    def test_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)


class TestLoggingCallback:
    def test_logs_epoch(self, caplog):
        cb = LoggingCallback("unit")
        with caplog.at_level(logging.INFO, logger="repro.training.unit"):
            cb.on_epoch_end(rec(stage="s", epoch=3, loss=0.5, acc=0.9))
        assert "epoch=3" in caplog.text
