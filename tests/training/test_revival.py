"""Tests for dead-unit revival."""

import numpy as np
import pytest

from repro.slimmable import RegionTracker
from repro.training import find_dead_channels, revive_dead_channels
from repro.utils import make_rng


def kill_channels(net, layer, channels):
    """Force conv channels dead: zero weights, large negative bias."""
    conv = net.convs[layer]
    conv.weight.data[channels] = 0.0
    conv.bias.data[channels] = -10.0


@pytest.fixture
def probe(rng):
    # Non-negative inputs like images, so negative biases really kill ReLUs.
    return np.abs(rng.standard_normal((16, 1, 28, 28)))


class TestFindDeadChannels:
    def test_healthy_net_has_no_dead_channels(self, paper_net, probe):
        spec = paper_net.width_spec.find("upper50")
        dead = find_dead_channels(paper_net, spec, probe)
        # Fresh kaiming init: overwhelmingly alive.  Allow the odd unlucky kernel.
        assert sum(len(d) for d in dead) <= 2

    def test_detects_killed_channels(self, paper_net, probe):
        kill_channels(paper_net, 0, [9, 10])
        spec = paper_net.width_spec.find("upper50")
        dead = find_dead_channels(paper_net, spec, probe)
        assert set(dead[0]) >= {9, 10}

    def test_indices_are_absolute(self, paper_net, probe):
        kill_channels(paper_net, 1, [8])
        spec = paper_net.width_spec.find("upper50")
        dead = find_dead_channels(paper_net, spec, probe)
        assert 8 in dead[1]


class TestReviveDeadChannels:
    def test_revives_and_restores_gradient_flow(self, paper_net, probe, rng):
        kill_channels(paper_net, 0, [8, 9, 10, 11])  # upper25's whole first layer
        spec = paper_net.width_spec.find("upper25")
        revived = revive_dead_channels(paper_net, spec, probe, rng)
        assert revived >= 4
        dead_after = find_dead_channels(paper_net, spec, probe)
        assert dead_after[0] == []

    def test_does_not_touch_alive_channels(self, paper_net, probe, rng):
        kill_channels(paper_net, 0, [8])
        spec = paper_net.width_spec.find("upper50")
        before = paper_net.convs[0].weight.data[[9, 12, 15]].copy()
        revive_dead_channels(paper_net, spec, probe, rng)
        np.testing.assert_array_equal(paper_net.convs[0].weight.data[[9, 12, 15]], before)

    def test_does_not_touch_channels_outside_spec(self, paper_net, probe, rng):
        kill_channels(paper_net, 0, [0, 8])  # one lower, one upper
        spec = paper_net.width_spec.find("upper50")
        lower_row = paper_net.convs[0].weight.data[0].copy()
        revive_dead_channels(paper_net, spec, probe, rng)
        np.testing.assert_array_equal(paper_net.convs[0].weight.data[0], lower_row)

    def test_respects_freeze_tracker(self, paper_net, probe, rng):
        """Channels fully covered by earlier stages must stay dead rather
        than be re-initialised (that would undo the earlier stage)."""
        kill_channels(paper_net, 0, [8])
        spec25 = paper_net.width_spec.find("upper25")
        spec50 = paper_net.width_spec.find("upper50")
        tracker = RegionTracker()
        for param, region in paper_net.region_masks(spec25):
            tracker.mark(param, region)
        frozen_row = paper_net.convs[0].weight.data[8].copy()
        revive_dead_channels(paper_net, spec50, probe, rng, tracker)
        np.testing.assert_array_equal(paper_net.convs[0].weight.data[8], frozen_row)

    def test_downstream_channels_recover_without_reinit(self, paper_net, probe, rng):
        """A layer-2 channel dead only because layer-1 fed it zeros should
        come back once layer 1 is revived, keeping its trained weights."""
        kill_channels(paper_net, 0, [8, 9, 10, 11])
        spec = paper_net.width_spec.find("upper25")
        conv1_before = paper_net.convs[1].weight.data[8:12, 8:12].copy()
        revive_dead_channels(paper_net, spec, probe, rng)
        dead_after = find_dead_channels(paper_net, spec, probe)
        # Layer 1 must be fully alive again...
        assert dead_after[0] == []
        # ...and layer-2 weights mostly untouched (only truly-dead rows reinit).
        unchanged = (paper_net.convs[1].weight.data[8:12, 8:12] == conv1_before).mean()
        assert unchanged > 0.4

    def test_returns_zero_on_healthy_net(self, paper_net, probe, rng):
        spec = paper_net.width_spec.find("lower50")
        assert revive_dead_channels(paper_net, spec, probe, rng) <= 1
