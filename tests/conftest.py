"""Shared fixtures.

Training-dependent fixtures are session-scoped and use deliberately tiny
configurations so the whole suite stays fast; accuracy-sensitive assertions
live in the benchmarks, not here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import ArrayDataset, SynthMNISTConfig, load_synth_mnist
from repro.slimmable import SlimmableConvNet, WidthSpec, paper_width_spec
from repro.training import RecipeConfig, TrainConfig, train_family
from repro.utils import make_rng


@pytest.fixture
def rng() -> np.random.Generator:
    return make_rng(1234)


@pytest.fixture(scope="session")
def paper_spec() -> WidthSpec:
    return paper_width_spec()


@pytest.fixture(scope="session")
def small_spec() -> WidthSpec:
    """A reduced sub-network family for fast structural tests."""
    return WidthSpec(max_width=8, lower_widths=(2, 4, 6, 8), split=4, num_convs=3)


@pytest.fixture
def paper_net(paper_spec) -> SlimmableConvNet:
    return SlimmableConvNet(paper_spec, rng=make_rng(0))


@pytest.fixture
def small_net(small_spec) -> SlimmableConvNet:
    return SlimmableConvNet(small_spec, rng=make_rng(0))


@pytest.fixture(scope="session")
def tiny_data():
    """(train, test) synthetic MNIST pair small enough for in-test training."""
    return load_synth_mnist(SynthMNISTConfig(num_train=1500, num_test=300, seed=11))


@pytest.fixture(scope="session")
def tiny_recipe() -> RecipeConfig:
    return RecipeConfig(
        stage=TrainConfig(epochs=1, batch_size=64, lr=0.05, momentum=0.9),
        niters=1,
    )


@pytest.fixture(scope="session")
def trained_models(tiny_data, tiny_recipe):
    """All three families trained on the tiny dataset (session-cached)."""
    train, _ = tiny_data
    models = {}
    for family in ("static", "dynamic", "fluid"):
        model, _ = train_family(family, train, rng=make_rng(5), config=tiny_recipe)
        models[family] = model
    return models


@pytest.fixture(scope="session")
def fluid_model(trained_models):
    return trained_models["fluid"]


def random_images(rng: np.random.Generator, n: int = 4, size: int = 28) -> np.ndarray:
    return rng.standard_normal((n, 1, size, size))
