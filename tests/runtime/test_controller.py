"""Tests for the reliability state machine."""

import pytest

from repro.comm import CommLatencyModel
from repro.device import FailureEvent, FailureSchedule, jetson_nx_master, jetson_nx_worker, single_failure
from repro.distributed import ExecutionMode, SystemThroughputModel
from repro.models import build_model
from repro.runtime import AdaptationPolicy, SystemController
from repro.utils import make_rng


def make_controller(family: str):
    model = build_model(family, rng=make_rng(0))
    tm = SystemThroughputModel(
        model.net, jetson_nx_master(), jetson_nx_worker(), CommLatencyModel()
    )
    return SystemController(AdaptationPolicy(model, tm), tm)


class TestObserve:
    def test_replans_only_on_change(self):
        controller = make_controller("fluid")
        t1 = controller.observe(frozenset({"master", "worker"}))
        plan1 = controller.current_plan
        controller.observe(frozenset({"master", "worker"}))
        assert controller.current_plan is plan1
        controller.observe(frozenset({"master"}))
        assert controller.current_plan is not plan1
        assert t1.throughput.throughput_ips > 0


class TestSimulation:
    def test_fluid_worker_failure_timeline(self):
        controller = make_controller("fluid")
        timeline = controller.simulate(single_failure("worker", at_s=10.0), horizon_s=20.0)
        modes = timeline.modes()
        assert modes == [ExecutionMode.HIGH_ACCURACY, ExecutionMode.SOLO]
        assert timeline.downtime() == 0.0

    def test_fluid_master_failure_keeps_serving(self):
        controller = make_controller("fluid")
        timeline = controller.simulate(single_failure("master", at_s=5.0), horizon_s=10.0)
        assert timeline.modes()[-1] is ExecutionMode.SOLO
        assert timeline.transitions[-1].plan.assignments[0].device == "worker"
        assert timeline.downtime() == 0.0

    def test_dynamic_master_failure_downs_system(self):
        controller = make_controller("dynamic")
        timeline = controller.simulate(single_failure("master", at_s=5.0), horizon_s=10.0)
        assert timeline.modes()[-1] is ExecutionMode.FAILED
        assert timeline.downtime() > 0.0

    def test_static_any_failure_downs_system(self):
        for device in ("master", "worker"):
            controller = make_controller("static")
            timeline = controller.simulate(single_failure(device, at_s=2.0), horizon_s=6.0)
            assert timeline.modes() == [ExecutionMode.HIGH_ACCURACY, ExecutionMode.FAILED]

    def test_crash_and_recovery_cycle(self):
        controller = make_controller("fluid")
        schedule = FailureSchedule(
            [FailureEvent(3.0, "worker", "crash"), FailureEvent(7.0, "worker", "recover")]
        )
        timeline = controller.simulate(schedule, horizon_s=10.0)
        assert timeline.modes() == [
            ExecutionMode.HIGH_ACCURACY,
            ExecutionMode.SOLO,
            ExecutionMode.HIGH_ACCURACY,
        ]

    def test_plan_at(self):
        controller = make_controller("fluid")
        timeline = controller.simulate(single_failure("worker", at_s=10.0), horizon_s=20.0)
        assert timeline.plan_at(5.0).mode is ExecutionMode.HIGH_ACCURACY
        assert timeline.plan_at(15.0).mode is ExecutionMode.SOLO

    def test_validation(self):
        controller = make_controller("fluid")
        with pytest.raises(ValueError):
            controller.simulate(single_failure("worker"), horizon_s=0)
