"""Micro-batching queue unit tests: flush triggers, scatter order, shutdown."""

import threading
import time

import numpy as np
import pytest

from repro.runtime.batching import BatchingConfig, BatchingStats, MicroBatchQueue


def rows_runner(calls=None):
    """A run_batch that tags each row with 10*row_value and records batches."""

    def _run(batch):
        if calls is not None:
            calls.append(batch.copy())
        return batch * 10.0

    return _run


class TestRunBatchParts:
    def test_parts_are_handed_over_unconcatenated(self):
        """The parts backend sees the raw per-request arrays in submission
        order (a compiled plan scatters them into its arena itself)."""
        seen = []

        def _run_parts(parts):
            seen.append([p.copy() for p in parts])
            return np.concatenate(parts, axis=0) * 10.0

        queue = MicroBatchQueue(
            run_batch_parts=_run_parts,
            config=BatchingConfig(max_batch=4, max_delay_s=5.0),
            autostart=False,
        )
        futures = [queue.submit(np.full((2, 3), float(i))) for i in range(2)]
        queue.start()
        for i, f in enumerate(futures):
            np.testing.assert_array_equal(f.result(timeout=10.0), np.full((2, 3), 10.0 * i))
        queue.close()
        assert len(seen) == 1 and len(seen[0]) == 2
        np.testing.assert_array_equal(seen[0][1], np.full((2, 3), 1.0))
        assert queue.stats.batches == 1 and queue.stats.rows == 4

    def test_exactly_one_backend_required(self):
        with pytest.raises(ValueError):
            MicroBatchQueue()
        with pytest.raises(ValueError):
            MicroBatchQueue(rows_runner(), run_batch_parts=lambda parts: parts[0])


class TestRowBudgetCarryOver:
    def test_batches_never_exceed_max_batch_rows(self):
        """A request that would overflow the row budget seeds the next batch
        instead — compiled-plan arenas are sized to exactly max_batch rows,
        so an overflowing batch would silently fall back to the eager path."""
        calls = []
        queue = MicroBatchQueue(
            rows_runner(calls),
            BatchingConfig(max_batch=4, max_delay_s=5.0),
            autostart=False,
        )
        futures = [queue.submit(np.full((3, 2), float(i))) for i in range(4)]
        queue.start()
        for i, f in enumerate(futures):
            np.testing.assert_array_equal(f.result(timeout=10.0), np.full((3, 2), 10.0 * i))
        queue.close()
        assert [c.shape[0] for c in calls] == [3, 3, 3, 3]  # never 6 rows

    def test_lone_oversized_request_still_served(self):
        queue = MicroBatchQueue(
            rows_runner(), BatchingConfig(max_batch=4, max_delay_s=0.01)
        )
        out = queue.submit(np.full((9, 2), 1.0)).result(timeout=10.0)
        np.testing.assert_array_equal(out, np.full((9, 2), 10.0))
        queue.close()


class TestFlushTriggers:
    def test_max_batch_flush(self):
        """Submitting exactly the row budget yields one full flush."""
        calls = []
        queue = MicroBatchQueue(
            rows_runner(calls),
            BatchingConfig(max_batch=4, max_delay_s=5.0),
            autostart=False,
        )
        futures = [queue.submit(np.full((1, 2), float(i))) for i in range(4)]
        queue.start()
        results = [f.result(timeout=10.0) for f in futures]
        for i, out in enumerate(results):
            np.testing.assert_array_equal(out, np.full((1, 2), 10.0 * i))
        assert queue.stats.full_flushes == 1
        assert queue.stats.deadline_flushes == 0
        assert queue.stats.batches == 1
        assert list(queue.stats.recent_batch_sizes) == [4]
        assert len(calls) == 1 and calls[0].shape == (4, 2)
        queue.close()

    def test_deadline_flush(self):
        """With a huge row budget, the deadline alone flushes the batch."""
        queue = MicroBatchQueue(
            rows_runner(), BatchingConfig(max_batch=1000, max_delay_s=0.05)
        )
        futures = [queue.submit(np.full((1,), float(i))) for i in range(3)]
        results = [f.result(timeout=10.0) for f in futures]
        for i, out in enumerate(results):
            np.testing.assert_array_equal(out, np.full((1,), 10.0 * i))
        assert queue.stats.deadline_flushes >= 1
        assert queue.stats.full_flushes == 0
        queue.close()

    def test_multi_row_requests_count_toward_row_budget(self):
        calls = []
        queue = MicroBatchQueue(
            rows_runner(calls),
            BatchingConfig(max_batch=6, max_delay_s=5.0),
            autostart=False,
        )
        futures = [queue.submit(np.full((3, 2), float(i))) for i in range(2)]
        queue.start()
        for f in futures:
            f.result(timeout=10.0)
        assert queue.stats.full_flushes == 1
        assert calls[0].shape == (6, 2)
        queue.close()


class TestScatterOrder:
    def test_each_future_gets_its_own_rows(self):
        """Results scatter back per request, in submission order, any sizes."""
        queue = MicroBatchQueue(
            rows_runner(), BatchingConfig(max_batch=100, max_delay_s=0.2), autostart=False
        )
        sizes = [1, 3, 2, 5, 1]
        futures = []
        for i, n in enumerate(sizes):
            futures.append(queue.submit(np.full((n, 4), float(i))))
        queue.start()
        for i, (n, future) in enumerate(zip(sizes, futures)):
            out = future.result(timeout=10.0)
            assert out.shape == (n, 4)
            np.testing.assert_array_equal(out, np.full((n, 4), 10.0 * i))
        queue.close()

    def test_concurrent_submitters_all_get_correct_rows(self):
        queue = MicroBatchQueue(rows_runner(), BatchingConfig(max_batch=8, max_delay_s=0.01))
        results = {}

        def _submit(i):
            results[i] = queue.submit(np.full((1, 2), float(i))).result(timeout=10.0)

        threads = [threading.Thread(target=_submit, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i in range(16):
            np.testing.assert_array_equal(results[i], np.full((1, 2), 10.0 * i))
        assert queue.stats.requests == 16
        queue.close()


class TestShutdown:
    def test_empty_queue_shutdown(self):
        queue = MicroBatchQueue(rows_runner(), BatchingConfig(max_batch=4, max_delay_s=0.5))
        queue.close(timeout=5.0)
        assert not queue._thread.is_alive()
        assert queue.stats.batches == 0

    def test_close_flushes_pending_requests(self):
        queue = MicroBatchQueue(
            rows_runner(), BatchingConfig(max_batch=100, max_delay_s=10.0), autostart=False
        )
        futures = [queue.submit(np.full((1,), float(i))) for i in range(3)]
        queue.close(timeout=5.0)
        for i, f in enumerate(futures):
            np.testing.assert_array_equal(f.result(timeout=1.0), np.full((1,), 10.0 * i))

    def test_submit_after_close_raises(self):
        queue = MicroBatchQueue(rows_runner())
        queue.close()
        with pytest.raises(RuntimeError):
            queue.submit(np.ones((1,)))

    def test_close_is_idempotent(self):
        queue = MicroBatchQueue(rows_runner())
        queue.close()
        queue.close()


class TestCancellation:
    def test_cancelled_future_does_not_kill_collector(self):
        """A client cancelling its future must not wedge the queue: the
        cancelled request is dropped, its batch-mates still get results,
        and later submissions keep being served."""
        queue = MicroBatchQueue(
            rows_runner(), BatchingConfig(max_batch=3, max_delay_s=5.0), autostart=False
        )
        doomed = queue.submit(np.full((1,), 0.0))
        survivor_a = queue.submit(np.full((1,), 1.0))
        survivor_b = queue.submit(np.full((1,), 2.0))
        assert doomed.cancel()
        queue.start()
        np.testing.assert_array_equal(survivor_a.result(timeout=10.0), np.full((1,), 10.0))
        np.testing.assert_array_equal(survivor_b.result(timeout=10.0), np.full((1,), 20.0))
        later = queue.submit(np.full((1,), 3.0))
        np.testing.assert_array_equal(later.result(timeout=10.0), np.full((1,), 30.0))
        assert queue._thread.is_alive()
        queue.close()

    def test_all_cancelled_batch_is_skipped(self):
        queue = MicroBatchQueue(
            rows_runner(), BatchingConfig(max_batch=2, max_delay_s=5.0), autostart=False
        )
        futures = [queue.submit(np.full((1,), float(i))) for i in range(2)]
        for f in futures:
            assert f.cancel()
        queue.start()
        later = queue.submit(np.full((1,), 7.0))
        np.testing.assert_array_equal(later.result(timeout=10.0), np.full((1,), 70.0))
        assert queue.stats.requests == 1  # only the live request counted
        queue.close()


class TestSubmitCloseRace:
    def test_hammered_submit_close_never_strands_a_future(self):
        """Every submit must either raise (queue closed) or resolve."""
        for _ in range(20):
            queue = MicroBatchQueue(
                rows_runner(), BatchingConfig(max_batch=4, max_delay_s=0.001)
            )
            outcomes = []

            def _client():
                try:
                    outcomes.append(queue.submit(np.ones((1,))))
                except RuntimeError:
                    outcomes.append(None)

            threads = [threading.Thread(target=_client) for _ in range(8)]
            for t in threads[:4]:
                t.start()
            closer = threading.Thread(target=queue.close)
            closer.start()
            for t in threads[4:]:
                t.start()
            for t in threads:
                t.join()
            closer.join()
            for future in outcomes:
                if future is not None:
                    # Accepted submissions must resolve, never hang.
                    np.testing.assert_array_equal(
                        future.result(timeout=10.0), np.full((1,), 10.0)
                    )


class TestErrors:
    def test_runner_exception_propagates_to_futures(self):
        def _boom(batch):
            raise ValueError("kaput")

        queue = MicroBatchQueue(_boom, BatchingConfig(max_batch=2, max_delay_s=0.01))
        future = queue.submit(np.ones((1,)))
        with pytest.raises(ValueError, match="kaput"):
            future.result(timeout=10.0)
        queue.close()

    def test_row_count_mismatch_is_reported(self):
        queue = MicroBatchQueue(
            lambda batch: batch[:-1], BatchingConfig(max_batch=2, max_delay_s=0.01)
        )
        future = queue.submit(np.ones((2, 2)))
        with pytest.raises(RuntimeError, match="rows"):
            future.result(timeout=10.0)
        queue.close()

    def test_empty_request_rejected(self):
        queue = MicroBatchQueue(rows_runner())
        with pytest.raises(ValueError):
            queue.submit(np.ones((0, 2)))
        queue.close()

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            BatchingConfig(max_batch=0)
        with pytest.raises(ValueError):
            BatchingConfig(max_delay_s=-1.0)


class TestStats:
    def test_mean_batch_rows(self):
        stats = BatchingStats()
        assert stats.mean_batch_rows() == 0.0
        stats.batches, stats.rows = 2, 10
        assert stats.mean_batch_rows() == 5.0

    def test_recent_batch_sizes_window_is_bounded(self):
        from repro.runtime.batching import RECENT_BATCH_WINDOW

        stats = BatchingStats()
        for i in range(RECENT_BATCH_WINDOW + 50):
            stats.recent_batch_sizes.append(i)
        assert len(stats.recent_batch_sizes) == RECENT_BATCH_WINDOW
        assert stats.recent_batch_sizes[-1] == RECENT_BATCH_WINDOW + 49

    def test_snapshot_is_consistent_and_json_friendly(self):
        import json

        stats = BatchingStats()
        with stats.lock:
            stats.requests, stats.batches, stats.rows = 6, 2, 10
            stats.full_flushes, stats.deadline_flushes = 1, 1
            stats.recent_batch_sizes.extend([4, 6])
        snap = stats.snapshot()
        assert snap["requests"] == 6
        assert snap["mean_batch_rows"] == 5.0
        assert snap["recent_batch_sizes"] == [4, 6]
        json.dumps(snap)  # plain data, no deques/locks

    def test_snapshot_under_concurrent_mutation_never_tears(self):
        """Readers snapshotting while writers mutate see internally
        consistent values (rows always == 5 * batches here)."""
        stats = BatchingStats()
        stop = threading.Event()

        def _writer():
            while not stop.is_set():
                with stats.lock:
                    stats.batches += 1
                    stats.rows += 5
                    stats.recent_batch_sizes.append(5)

        writers = [threading.Thread(target=_writer) for _ in range(4)]
        for t in writers:
            t.start()
        try:
            for _ in range(200):
                snap = stats.snapshot()
                assert snap["rows"] == 5 * snap["batches"]
        finally:
            stop.set()
            for t in writers:
                t.join()

    def test_live_queue_snapshot_matches_attributes(self):
        queue = MicroBatchQueue(
            rows_runner(), BatchingConfig(max_batch=2, max_delay_s=5.0)
        )
        futures = [queue.submit(np.full((1,), float(i))) for i in range(4)]
        for f in futures:
            f.result(timeout=10.0)
        queue.close()
        snap = queue.stats.snapshot()
        assert snap["requests"] == 4
        assert snap["batches"] == queue.stats.batches
        assert snap["full_flushes"] == 2


class TestBatchCallbackAndTags:
    def test_on_batch_reports_tags_and_rows_before_results(self):
        """on_batch sees the claimed requests' tags + total rows on the
        collector thread, before the runner executes the batch."""
        seen = []
        order = []

        def _run(batch):
            order.append("run")
            return batch * 10.0

        queue = MicroBatchQueue(
            _run,
            BatchingConfig(max_batch=2, max_delay_s=5.0),
            on_batch=lambda tags, rows: (seen.append((tags, rows)), order.append("on_batch")),
            autostart=False,
        )
        futures = [
            queue.submit(np.full((1,), float(i)), tag=f"req{i}") for i in range(2)
        ]
        queue.start()
        for f in futures:
            f.result(timeout=10.0)
        queue.close()
        assert seen == [(["req0", "req1"], 2)]
        assert order == ["on_batch", "run"]

    def test_tags_default_to_none(self):
        seen = []
        queue = MicroBatchQueue(
            rows_runner(),
            BatchingConfig(max_batch=2, max_delay_s=5.0),
            on_batch=lambda tags, rows: seen.append((tags, rows)),
            autostart=False,
        )
        futures = [queue.submit(np.full((1,), float(i))) for i in range(2)]
        queue.start()
        for f in futures:
            f.result(timeout=10.0)
        queue.close()
        assert seen == [([None, None], 2)]

    def test_on_batch_failure_does_not_wedge_futures(self):
        """A raising on_batch hook must not strand the batch's futures."""

        def _boom(tags, rows):
            raise RuntimeError("hook broke")

        queue = MicroBatchQueue(
            rows_runner(),
            BatchingConfig(max_batch=1, max_delay_s=0.01),
            on_batch=_boom,
        )
        future = queue.submit(np.ones((1,)))
        try:
            with pytest.raises(RuntimeError, match="hook broke"):
                future.result(timeout=10.0)
        finally:
            queue.close()


class TestDeadlineFailFast:
    def test_expired_deadline_resolves_immediately(self):
        """An already-expired request fails fast and never occupies the queue."""
        from repro.runtime.batching import DeadlineExceeded

        calls = []
        queue = MicroBatchQueue(
            rows_runner(calls),
            BatchingConfig(max_batch=2, max_delay_s=5.0),
            autostart=False,
        )
        expired = queue.submit(
            np.full((1,), 99.0), deadline=time.monotonic() - 0.001
        )
        assert expired.done()  # resolved before the collector even starts
        with pytest.raises(DeadlineExceeded):
            expired.result(timeout=1.0)
        assert queue.stats.expired_rejects == 1

        # The expired request did not consume batch-row budget: the next two
        # live requests alone fill the 2-row batch and flush together.
        live = [
            queue.submit(np.full((1,), float(i)), deadline=time.monotonic() + 60.0)
            for i in range(2)
        ]
        queue.start()
        for i, future in enumerate(live):
            np.testing.assert_array_equal(
                future.result(timeout=10.0), np.full((1,), 10.0 * i)
            )
        assert queue.stats.requests == 2
        assert queue.stats.full_flushes == 1
        assert len(calls) == 1 and calls[0].shape == (2,)
        queue.close()

    def test_no_deadline_keeps_legacy_behaviour(self):
        queue = MicroBatchQueue(rows_runner(), BatchingConfig(max_batch=1))
        future = queue.submit(np.ones((1,)))
        np.testing.assert_array_equal(future.result(timeout=10.0), np.full((1,), 10.0))
        assert queue.stats.expired_rejects == 0
        queue.close()

    def test_future_deadline_is_accepted(self):
        queue = MicroBatchQueue(rows_runner(), BatchingConfig(max_batch=1))
        future = queue.submit(np.ones((1,)), deadline=time.monotonic() + 60.0)
        np.testing.assert_array_equal(future.result(timeout=10.0), np.full((1,), 10.0))
        queue.close()
