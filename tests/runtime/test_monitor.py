"""Tests for failure monitors."""

import pytest

from repro.device import FailureEvent, FailureSchedule, single_failure
from repro.runtime import HeartbeatMonitor, ScheduleMonitor


class TestHeartbeatMonitor:
    def test_healthy_peer_stays_alive(self):
        monitor = HeartbeatMonitor(lambda: True, threshold=2)
        assert all(monitor.check() for _ in range(5))
        assert monitor.consecutive_failures == 0

    def test_death_after_threshold(self):
        monitor = HeartbeatMonitor(lambda: False, threshold=3)
        assert monitor.check()      # 1 miss
        assert monitor.check()      # 2 misses
        assert not monitor.check()  # 3 misses -> dead
        assert monitor.declared_dead

    def test_flaky_peer_recovers_counter(self):
        responses = iter([False, True, False, False])
        monitor = HeartbeatMonitor(lambda: next(responses), threshold=2)
        assert monitor.check()      # miss 1
        assert monitor.check()      # success resets
        assert monitor.check()      # miss 1 again
        assert not monitor.check()  # miss 2 -> dead

    def test_dead_stays_dead(self):
        monitor = HeartbeatMonitor(lambda: True, threshold=1)
        monitor._ping = lambda: False
        monitor.check()
        monitor._ping = lambda: True
        assert not monitor.check()  # no auto-resurrection

    def test_reset(self):
        monitor = HeartbeatMonitor(lambda: False, threshold=1)
        monitor.check()
        monitor.reset()
        assert not monitor.declared_dead

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            HeartbeatMonitor(lambda: True, threshold=0)


class TestScheduleMonitor:
    def test_alive_sets_over_time(self):
        monitor = ScheduleMonitor(single_failure("worker", at_s=10.0))
        assert monitor.alive_at(5.0) == frozenset({"master", "worker"})
        assert monitor.alive_at(10.0) == frozenset({"master"})

    def test_recovery(self):
        schedule = FailureSchedule(
            [FailureEvent(5.0, "master", "crash"), FailureEvent(15.0, "master", "recover")]
        )
        monitor = ScheduleMonitor(schedule)
        assert monitor.alive_at(7.0) == frozenset({"worker"})
        assert monitor.alive_at(20.0) == frozenset({"master", "worker"})

    def test_next_event(self):
        monitor = ScheduleMonitor(single_failure("worker", at_s=10.0))
        assert monitor.next_event_after(0.0) == 10.0
        assert monitor.next_event_after(10.0) is None


class TestHeartbeatConfig:
    def test_defaults_without_config(self):
        from repro.runtime.monitor import (
            DEFAULT_HEARTBEAT_INTERVAL_S,
            DEFAULT_HEARTBEAT_THRESHOLD,
        )

        monitor = HeartbeatMonitor.from_config(lambda: True)
        assert monitor.threshold == DEFAULT_HEARTBEAT_THRESHOLD
        assert monitor.interval_s == DEFAULT_HEARTBEAT_INTERVAL_S

    def test_config_keys_override_defaults(self):
        from repro.utils.config import Config

        monitor = HeartbeatMonitor.from_config(
            lambda: True,
            Config({"heartbeat_threshold": 7, "heartbeat_interval_s": 0.5}),
        )
        assert monitor.threshold == 7
        assert monitor.interval_s == 0.5

    def test_caller_defaults_used_when_keys_absent(self):
        from repro.utils.config import Config

        monitor = HeartbeatMonitor.from_config(
            lambda: True, Config({}), default_threshold=1, default_interval_s=0.01
        )
        assert monitor.threshold == 1
        assert monitor.interval_s == 0.01

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            HeartbeatMonitor(lambda: True, interval_s=-0.1)
