"""Integration tests: live failover through the real protocol.

The paper's headline reliability demo, end to end: a Fluid system serving a
stream in HT/HA mode keeps serving through a mid-stream worker crash, while
a Static system goes dark.
"""

import threading

import numpy as np
import pytest

from repro.comm import CommLatencyModel, InProcChannel
from repro.device import CrashCounter, EmulatedDevice, jetson_nx_master, jetson_nx_worker
from repro.distributed import ExecutionMode, MasterRuntime, SystemThroughputModel, WorkerServer
from repro.models import build_model
from repro.runtime import AdaptationPolicy
from repro.runtime.live import LiveSystem
from repro.utils import make_rng


def make_live(family: str, target: str, crash_after=None):
    """A live system over an in-proc channel, worker optionally scripted to die."""
    model = build_model(family, rng=make_rng(0))
    net = model.net
    chan = InProcChannel()
    worker_device = EmulatedDevice(
        jetson_nx_worker(), net, crash_counter=CrashCounter(crash_after)
    )
    server = WorkerServer(worker_device, chan.b, partition_split=net.width_spec.split)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    master = MasterRuntime(
        EmulatedDevice(jetson_nx_master(), net),
        chan.a,
        partition_split=net.width_spec.split,
        request_timeout=2.0,
    )
    tm = SystemThroughputModel(
        net, jetson_nx_master(), jetson_nx_worker(), CommLatencyModel()
    )
    policy = AdaptationPolicy(model, tm, target=target)
    return LiveSystem(master, policy), thread


@pytest.fixture
def batches(rng):
    return [rng.standard_normal((4, 1, 28, 28)) for _ in range(6)]


class TestHealthyStream:
    def test_fluid_ht_serves_everything(self, batches):
        live, thread = make_live("fluid", "throughput")
        log = live.serve_stream(batches)
        assert log.served_count() == len(batches)
        assert all(m is ExecutionMode.HIGH_THROUGHPUT for m in log.modes())
        live.master.shutdown_worker()
        thread.join(timeout=5.0)

    def test_fluid_ha_serves_everything(self, batches):
        live, thread = make_live("fluid", "accuracy")
        log = live.serve_stream(batches)
        assert log.served_count() == len(batches)
        assert all(m is ExecutionMode.HIGH_ACCURACY for m in log.modes())
        live.master.shutdown_worker()
        thread.join(timeout=5.0)


class TestMidStreamFailover:
    def test_fluid_fails_over_and_keeps_serving(self, batches):
        """Worker dies after two full HA batches (4 protocol messages each);
        the stream continues in SOLO mode with one transparent retry."""
        live, thread = make_live("fluid", "accuracy", crash_after=8)
        log = live.serve_stream(batches)
        assert log.served_count() == len(batches)  # nothing dropped
        modes = log.modes()
        assert modes[0] is ExecutionMode.HIGH_ACCURACY
        assert modes[-1] is ExecutionMode.SOLO
        assert len(log.failover_points()) == 1
        thread.join(timeout=5.0)

    def test_static_goes_dark(self, batches):
        live, thread = make_live("static", "accuracy", crash_after=8)
        log = live.serve_stream(batches)
        modes = log.modes()
        assert modes[0] is ExecutionMode.HIGH_ACCURACY
        assert modes[-1] is ExecutionMode.FAILED
        # Batches after the crash are unserved.
        assert log.served_count() < len(batches)
        thread.join(timeout=5.0)

    def test_failover_preserves_correctness(self, rng):
        """Logits served after failover match the standalone lower50 model."""
        live, thread = make_live("fluid", "accuracy", crash_after=0)
        x = rng.standard_normal((4, 1, 28, 28))
        served = live.serve_batch(0, x)
        assert served.mode is ExecutionMode.SOLO
        net = live.policy.model.net
        view = net.view(net.width_spec.find("lower50"))
        view.train(False)
        np.testing.assert_allclose(served.logits, view(x), atol=1e-9)
        thread.join(timeout=5.0)


class TestRequestQueue:
    def test_micro_batched_requests_served_and_scattered(self, rng):
        """Single-image requests through the micro-batching front door come
        back per-request, equal to serving the whole group as one batch."""
        from repro.runtime import BatchingConfig
        from repro.runtime.live import LiveLog

        live, thread = make_live("fluid", "accuracy")
        log = LiveLog()
        queue = live.request_queue(
            BatchingConfig(max_batch=8, max_delay_s=0.05), log=log
        )
        requests = [rng.standard_normal((1, 1, 28, 28)) for _ in range(8)]
        futures = [queue.submit(x) for x in requests]
        results = [f.result(timeout=30.0) for f in futures]
        queue.close()

        assert log.served_count() >= 1
        assert all(m is ExecutionMode.HIGH_ACCURACY for m in log.modes())
        reference = live.serve_batch(99, np.concatenate(requests, axis=0)).logits
        offset = 0
        for out in results:
            assert out.shape == (1, 10)
            np.testing.assert_allclose(out, reference[offset : offset + 1], atol=1e-9)
            offset += 1
        live.master.shutdown_worker()
        thread.join(timeout=5.0)


class TestHeartbeatPath:
    def test_heartbeat_triggers_replan(self, batches):
        live, thread = make_live("fluid", "accuracy")
        assert live.heartbeat()
        live.master.crash_worker()
        assert not live.heartbeat()
        assert live.plan.mode is ExecutionMode.SOLO
        log = live.serve_stream(batches[:2])
        assert log.served_count() == 2
        thread.join(timeout=5.0)

    def test_heartbeat_threshold_from_config(self, batches):
        """Config keys make death declaration require N consecutive misses."""
        from repro.utils.config import Config

        model = build_model("fluid", rng=make_rng(0))
        net = model.net
        chan = InProcChannel()
        worker_device = EmulatedDevice(jetson_nx_worker(), net)
        server = WorkerServer(worker_device, chan.b, partition_split=net.width_spec.split)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        master = MasterRuntime(
            EmulatedDevice(jetson_nx_master(), net),
            chan.a,
            partition_split=net.width_spec.split,
            request_timeout=2.0,
        )
        tm = SystemThroughputModel(
            net, jetson_nx_master(), jetson_nx_worker(), CommLatencyModel()
        )
        policy = AdaptationPolicy(model, tm, target="accuracy")
        live = LiveSystem(master, policy, config=Config({"heartbeat_threshold": 2}))
        assert live.monitor.threshold == 2
        live.master.crash_worker()
        assert live.heartbeat()       # first miss: still considered alive
        assert not live.heartbeat()   # second miss: declared dead, re-planned
        assert live.plan.mode is ExecutionMode.SOLO
        thread.join(timeout=5.0)


class TestScheduledQueue:
    def test_scheduled_queue_serves_with_sla(self, rng):
        from repro.scheduler import SLA, SchedulerConfig

        live, thread = make_live("fluid", "accuracy")
        frontend = live.scheduled_queue(SchedulerConfig(replicas=2, warmup=False))
        try:
            futures = [
                frontend.submit(
                    rng.standard_normal((1, 1, 28, 28)), SLA(deadline_s=10.0)
                )
                for _ in range(6)
            ]
            for future in futures:
                assert future.result(timeout=30.0).shape == (1, 10)
            counters = frontend.metrics.snapshot()["counters"]
            assert counters["frontend.completed"] == 6
        finally:
            frontend.close()
            live.master.shutdown_worker()
            thread.join(timeout=5.0)

    def test_loose_dict_config_warns_and_converts(self):
        """One-release shim: dict configs warn and go through from_mapping."""
        live, thread = make_live("fluid", "accuracy")
        try:
            with pytest.warns(DeprecationWarning, match="SchedulerConfig"):
                frontend = live.scheduled_queue(
                    {"replicas": 2, "warmup": False, "compile_plans": False}
                )
            try:
                assert frontend.config.replicas == 2
                assert frontend.config.warmup is False
            finally:
                frontend.close()
        finally:
            live.master.shutdown_worker()
            thread.join(timeout=5.0)

    def test_loose_dict_with_unknown_key_rejected(self):
        live, thread = make_live("fluid", "accuracy")
        try:
            with pytest.warns(DeprecationWarning):
                with pytest.raises(ValueError, match="unknown config keys"):
                    live.scheduled_queue({"replcas": 2})
        finally:
            live.master.shutdown_worker()
            thread.join(timeout=5.0)
