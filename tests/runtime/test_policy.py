"""Tests for the adaptation policy — the paper's decision logic."""

import pytest

from repro.comm import CommLatencyModel
from repro.device import jetson_nx_master, jetson_nx_worker
from repro.distributed import MASTER, WORKER, ExecutionMode, Scenario, SystemThroughputModel
from repro.models import build_model
from repro.runtime import TARGET_ACCURACY, TARGET_THROUGHPUT, AdaptationPolicy
from repro.utils import make_rng


def make_policy(family: str, target: str = TARGET_ACCURACY):
    model = build_model(family, rng=make_rng(0))
    tm = SystemThroughputModel(
        model.net, jetson_nx_master(), jetson_nx_worker(), CommLatencyModel()
    )
    return AdaptationPolicy(model, tm, target=target)


class TestStandaloneDeployability:
    def test_static_has_none(self):
        policy = make_policy("static")
        assert policy.deployable_standalone(MASTER) == []
        assert policy.deployable_standalone(WORKER) == []

    def test_dynamic_master_capped_by_capacity(self):
        policy = make_policy("dynamic")
        names = [s.name for s in policy.deployable_standalone(MASTER)]
        # lower75/lower100 are certified but not resident; capacity is moot here.
        assert names == ["lower25", "lower50"]
        assert policy.best_standalone(MASTER).name == "lower50"

    def test_dynamic_worker_has_none(self):
        policy = make_policy("dynamic")
        assert policy.deployable_standalone(WORKER) == []

    def test_fluid_worker_gets_upper(self):
        policy = make_policy("fluid")
        assert policy.best_standalone(WORKER).name == "upper50"


class TestScenarioPlans:
    def test_static_both_is_ha(self):
        plan = make_policy("static").plan_for_scenario(Scenario.BOTH)
        assert plan.mode is ExecutionMode.HIGH_ACCURACY
        assert plan.combined_subnet == "lower100"

    def test_static_fails_alone(self):
        policy = make_policy("static")
        assert policy.plan_for_scenario(Scenario.ONLY_MASTER).mode is ExecutionMode.FAILED
        assert policy.plan_for_scenario(Scenario.ONLY_WORKER).mode is ExecutionMode.FAILED

    def test_dynamic_survives_worker_death_only(self):
        policy = make_policy("dynamic")
        master_plan = policy.plan_for_scenario(Scenario.ONLY_MASTER)
        assert master_plan.mode is ExecutionMode.SOLO
        assert master_plan.assignments[0].subnet == "lower50"
        assert policy.plan_for_scenario(Scenario.ONLY_WORKER).mode is ExecutionMode.FAILED

    def test_fluid_survives_either_death(self):
        policy = make_policy("fluid")
        m = policy.plan_for_scenario(Scenario.ONLY_MASTER)
        w = policy.plan_for_scenario(Scenario.ONLY_WORKER)
        assert m.assignments[0].subnet == "lower50"
        assert w.assignments[0].subnet == "upper50"

    def test_no_devices_fails(self):
        assert make_policy("fluid").plan(frozenset()).mode is ExecutionMode.FAILED


class TestTargetSelection:
    def test_fluid_throughput_target_picks_ht(self):
        plan = make_policy("fluid", TARGET_THROUGHPUT).plan_for_scenario(Scenario.BOTH)
        assert plan.mode is ExecutionMode.HIGH_THROUGHPUT
        subnets = {a.device: a.subnet for a in plan.assignments}
        assert subnets == {"master": "lower50", "worker": "upper50"}

    def test_fluid_accuracy_target_picks_ha(self):
        plan = make_policy("fluid", TARGET_ACCURACY).plan_for_scenario(Scenario.BOTH)
        assert plan.mode is ExecutionMode.HIGH_ACCURACY

    def test_dynamic_throughput_target_degrades_to_solo(self):
        # Dynamic has no independent pair: its best throughput lever is the
        # lone 50% model on the Master (paper: 14.4 > 11.1 image/s).
        plan = make_policy("dynamic", TARGET_THROUGHPUT).plan_for_scenario(Scenario.BOTH)
        assert plan.mode is ExecutionMode.SOLO
        assert plan.assignments[0].subnet == "lower50"

    def test_static_target_is_irrelevant(self):
        ht = make_policy("static", TARGET_THROUGHPUT).plan_for_scenario(Scenario.BOTH)
        ha = make_policy("static", TARGET_ACCURACY).plan_for_scenario(Scenario.BOTH)
        assert ht == ha

    def test_unknown_target_rejected(self):
        model = build_model("fluid", rng=make_rng(0))
        tm = SystemThroughputModel(
            model.net, jetson_nx_master(), jetson_nx_worker(), CommLatencyModel()
        )
        with pytest.raises(ValueError):
            AdaptationPolicy(model, tm, target="vibes")
