"""Setup shim.

The build environment has no ``wheel`` package (offline), so PEP 517
editable installs fail; this shim lets ``pip install -e .`` use the legacy
``setup.py develop`` path.  Metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
