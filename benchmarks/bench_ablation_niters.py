"""Ablation: Algorithm 1's iteration count.

"Reusing the weights from the upper 25%/50% models on the 75%/100% models
is nontrivial; therefore, we fine-tune all the models for multiple
iterations."  This bench trains Fluid DyDNNs with niters in {1, 2} and
verifies the claim: the second fine-tuning iteration improves (or at least
preserves) both the combined 100% model and the standalone upper models,
and with enough data the one-shot schedule already beats chance everywhere.
"""

import pytest

from repro.data import SynthMNISTConfig, load_synth_mnist
from repro.models import build_model
from repro.training import NestedIncrementalTrainer, NestedTrainConfig, TrainConfig
from repro.utils import make_rng

DATA = SynthMNISTConfig(num_train=2500, num_test=600, seed=4)


@pytest.fixture(scope="module")
def niters_results():
    train_set, test_set = load_synth_mnist(DATA)
    results = {}
    for niters in (1, 2):
        model = build_model("fluid", rng=make_rng(0))
        config = NestedTrainConfig(base=TrainConfig(epochs=1, lr=0.05), niters=niters)
        NestedIncrementalTrainer().fit(model, train_set, config, rng=make_rng(1))
        results[niters] = model.evaluate_all(test_set)
    return results


def test_multiple_iterations_help_combined_model(benchmark, niters_results):
    read = benchmark(lambda: {n: r["lower100"] for n, r in niters_results.items()})
    assert read[2] >= read[1] - 0.02  # second pass must not damage the 100% model
    assert read[2] > 0.9


def test_multiple_iterations_keep_uppers_usable(benchmark, niters_results):
    read = benchmark(lambda: {n: r["upper50"] for n, r in niters_results.items()})
    assert read[1] > 0.5
    assert read[2] > 0.5


def test_all_subnets_usable_at_recommended_niters(benchmark, niters_results):
    accs = benchmark(lambda: niters_results[2])
    for name, acc in accs.items():
        assert acc > 0.5, f"{name}: {acc:.3f}"
