"""Ablation: number of sub-networks.

Algorithm 1 "is applicable to any number" of sub-networks.  This bench
trains Fluid DyDNNs with two- and four-member lower families over the same
16-channel architecture and checks that (a) both configurations produce
usable standalone halves, and (b) the finer-grained family costs some
combined-model accuracy relative to the coarse one (more weight-sharing
constraints), which is the trade-off the sub-network count controls.
"""

import pytest

from repro.data import SynthMNISTConfig, load_synth_mnist
from repro.models import FluidDyDNN
from repro.slimmable import SlimmableConvNet, WidthSpec
from repro.training import NestedIncrementalTrainer, NestedTrainConfig, TrainConfig
from repro.utils import make_rng

DATA = SynthMNISTConfig(num_train=2500, num_test=600, seed=9)

FAMILIES = {
    "two_subnets": WidthSpec(max_width=16, lower_widths=(8, 16), split=8, num_convs=3),
    "four_subnets": WidthSpec(max_width=16, lower_widths=(4, 8, 12, 16), split=8, num_convs=3),
}


@pytest.fixture(scope="module")
def subnet_count_results():
    train_set, test_set = load_synth_mnist(DATA)
    results = {}
    for name, spec in FAMILIES.items():
        model = FluidDyDNN(SlimmableConvNet(spec, rng=make_rng(0)))
        config = NestedTrainConfig(base=TrainConfig(epochs=1, lr=0.05), niters=2)
        NestedIncrementalTrainer().fit(model, train_set, config, rng=make_rng(1))
        results[name] = model.evaluate_all(test_set)
    return results


def test_both_family_sizes_are_fluid(benchmark, subnet_count_results):
    """The reliability property holds regardless of family size."""
    results = benchmark(lambda: subnet_count_results)
    for name, accs in results.items():
        assert accs["lower50"] > 0.7, (name, accs)
        assert accs["upper50"] > 0.7, (name, accs)
        assert accs["lower100"] > 0.8, (name, accs)


def test_four_subnets_expose_more_operating_points(benchmark, subnet_count_results):
    results = benchmark(lambda: subnet_count_results)
    assert len(results["four_subnets"]) > len(results["two_subnets"])
    # The extra operating points (25%/75%) are themselves usable.
    assert results["four_subnets"]["lower25"] > 0.5
    assert results["four_subnets"]["upper25"] > 0.5
