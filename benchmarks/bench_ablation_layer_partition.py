"""Ablation: width partitioning (the paper's choice) vs depth partitioning.

MoDNN-style width splitting is what the paper builds on; the obvious
alternative is a depth (pipeline) split.  This bench quantifies why the
paper's choice is right for its goals:

* per-image latency: width wins (devices work in parallel on every layer);
* steady-state pipelined throughput: the best depth cut lands between HA
  and HT — but a pipeline *never* survives a device failure, because a
  weight prefix/suffix cannot produce logits no matter how it is trained;
* Fluid HT dominates every depth cut outright.
"""

import pytest

from repro.comm import CommLatencyModel
from repro.device import jetson_nx_master, jetson_nx_worker
from repro.distributed import (
    LayerCut,
    LayerPartitionModel,
    SystemThroughputModel,
)


@pytest.fixture(scope="module")
def both_models(bench_net):
    master, worker, comm = jetson_nx_master(), jetson_nx_worker(), CommLatencyModel()
    return (
        SystemThroughputModel(bench_net, master, worker, comm),
        LayerPartitionModel(bench_net, master, worker, comm),
    )


def full_comparison(bench_net, tm, lp):
    ws = bench_net.width_spec
    spec = ws.full()
    rows = {
        "width_ha": tm.ha_throughput(spec).throughput_ips,
        "width_ht": tm.ht_throughput(ws.find("lower50"), ws.find("upper50")).throughput_ips,
        "depth_seq_best": lp.best_cut(spec, pipelined=False)[1],
        "depth_pipe_best": lp.best_cut(spec, pipelined=True)[1],
    }
    rows["depth_cuts_seq"] = {
        c: lp.latency(spec, LayerCut(c, 4)).throughput_ips for c in range(1, 4)
    }
    return rows


def test_width_vs_depth_partitioning(benchmark, bench_net, both_models):
    tm, lp = both_models
    rows = benchmark(full_comparison, bench_net, tm, lp)
    # Per-image latency: width-parallel beats the best sequential depth cut.
    assert rows["width_ha"] > rows["depth_seq_best"]
    # Fluid HT dominates even the best overlapped pipeline.
    assert rows["width_ht"] > rows["depth_pipe_best"]
    # Depth pipelining helps but stays in the expected band.
    assert rows["depth_seq_best"] < rows["depth_pipe_best"] < rows["width_ht"]


def test_depth_split_reliability(benchmark, both_models):
    """No depth cut survives a single failure — structural, not statistical."""
    _, lp = both_models
    survives = benchmark(LayerPartitionModel.survives_single_failure)
    assert survives is False


def test_best_depth_cut_minimises_the_bottleneck(benchmark, bench_net, both_models):
    """The search picks the cut whose slowest stage (incl. the cut transfer)
    is fastest — perfect balance is impossible with 4 coarse layers, where
    conv2 alone is ~66% of the FLOPs."""
    _, lp = both_models
    spec = bench_net.width_spec.full()
    cut, best_ips = benchmark(lp.best_cut, spec, True)
    for other in range(1, 4):
        ips = lp.pipelined_throughput(spec, LayerCut(other, 4))
        assert best_ips >= ips - 1e-12
    # And the chosen bottleneck genuinely beats the sequential execution.
    assert best_ips > lp.latency(spec, cut).throughput_ips
