"""Benchmarks of the live master/worker protocol (in-process channel).

Times end-to-end HA/HT rounds through the real codec and protocol state
machine, and asserts the numerical contract: the distributed result matches
the monolithic forward.
"""

import threading

import numpy as np
import pytest

from repro.comm import InProcChannel
from repro.device import EmulatedDevice, jetson_nx_master, jetson_nx_worker
from repro.distributed import MasterRuntime, WorkerServer
from repro.slimmable import SlimmableConvNet, paper_width_spec
from repro.utils import make_rng


@pytest.fixture(scope="module")
def protocol():
    net = SlimmableConvNet(paper_width_spec(), rng=make_rng(0))
    chan = InProcChannel()
    server = WorkerServer(
        EmulatedDevice(jetson_nx_worker(), net), chan.b, partition_split=8
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    master = MasterRuntime(
        EmulatedDevice(jetson_nx_master(), net), chan.a, partition_split=8
    )
    yield master, net
    master.shutdown_worker()
    thread.join(timeout=5.0)


def test_ha_round(benchmark, protocol):
    master, net = protocol
    spec = net.width_spec.full()
    x = make_rng(1).standard_normal((16, 1, 28, 28))
    logits = benchmark(master.run_ha, spec, x)
    view = net.view(spec)
    view.train(False)
    np.testing.assert_allclose(logits, view(x), atol=1e-4)


def test_ht_round(benchmark, protocol):
    master, net = protocol
    ws = net.width_spec
    x = make_rng(2).standard_normal((16, 1, 28, 28))

    def run():
        return master.run_ht(ws.find("lower50"), ws.find("upper50"), x, x)

    logits_m, logits_w = benchmark(run)
    assert logits_m.shape == (16, 10)
    assert logits_w.shape == (16, 10)


def test_remote_subnet_round(benchmark, protocol):
    master, net = protocol
    spec = net.width_spec.find("upper50")
    x = make_rng(3).standard_normal((16, 1, 28, 28))
    logits = benchmark(master.run_remote, spec, x)
    assert logits.shape == (16, 10)


def test_heartbeat(benchmark, protocol):
    master, _ = protocol
    assert benchmark(master.ping_worker)
