"""Extension bench: energy per image across execution modes.

The paper's evaluation stops at throughput and accuracy; the authors'
research programme (EPSRC "Optimising Resource Management for Embedded
ML") also optimises energy, so this bench extends Fig. 2 with a
joules-per-image column and asserts the ordering the model implies:
Fluid HT is the most energy-efficient way to use two devices, the parked
Worker of the Dynamic "HT" burns idle power for nothing, and HA pays both
radio energy and idle gaps.
"""

import pytest

from repro.comm import CommLatencyModel
from repro.device import EnergyModel, jetson_nx_master, jetson_nx_power, jetson_nx_worker
from repro.distributed import MASTER, SystemThroughputModel


@pytest.fixture(scope="module")
def models(bench_net):
    tm = SystemThroughputModel(
        bench_net, jetson_nx_master(), jetson_nx_worker(), CommLatencyModel()
    )
    return tm, EnergyModel(jetson_nx_power(), jetson_nx_power())


def all_modes(bench_net, tm, em):
    ws = bench_net.width_spec
    ha = tm.ha_throughput(ws.full())
    ht = tm.ht_throughput(ws.find("lower50"), ws.find("upper50"))
    solo = tm.standalone_throughput(MASTER, ws.find("lower50"))
    return {
        "fluid_ht": em.joules_per_image(ht),
        "parked_worker": em.joules_per_image(solo, devices_online=2),
        "ha": em.joules_per_image(ha),
        "lone_survivor": em.joules_per_image(solo, devices_online=1),
    }


def test_energy_ordering(benchmark, bench_net, models):
    tm, em = models
    joules = benchmark(all_modes, bench_net, tm, em)
    # Fluid HT beats both alternative two-device deployments...
    assert joules["fluid_ht"] < joules["parked_worker"] < joules["ha"]
    # ...and costs about the same per image as a single busy device.
    assert joules["fluid_ht"] == pytest.approx(joules["lone_survivor"], rel=0.05)


def test_ha_energy_breakdown(benchmark, bench_net, models):
    tm, em = models
    breakdown = tm.ha_throughput(bench_net.width_spec.full())
    energy = benchmark(em.for_breakdown, breakdown)
    assert energy.compute_j > energy.comm_j  # compute-bound, paper regime
    assert energy.comm_j > 0
    assert energy.total_j == pytest.approx(
        energy.compute_j + energy.comm_j + energy.idle_j
    )


def test_efficiency_tracks_throughput_for_ht(benchmark, bench_net, models):
    """In HT, energy per image is rate-independent (both devices saturated),
    so efficiency scales exactly with throughput."""
    tm, em = models
    ws = bench_net.width_spec
    ht = tm.ht_throughput(ws.find("lower50"), ws.find("upper50"))
    eff = benchmark(em.efficiency_images_per_joule, ht)
    power_total = 2 * jetson_nx_power().active_w  # both devices saturated
    assert eff == pytest.approx(ht.throughput_ips / power_total, rel=1e-6)
