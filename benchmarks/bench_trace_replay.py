"""Trace record/replay determinism, scenario-zoo facts, tracing overhead.

The PR-8 acceptance benchmark, in three parts:

1. **Pinned corpus** — every scenario-zoo trace under
   ``benchmarks/traces/*.jsonl`` is regenerated from its seed and
   byte-compared to the committed artifact, proving the generators are
   bit-reproducible (and that a recorded artifact is replayable: the
   specs read back from the file equal the generated ones).

2. **Deterministic simulation** — each scenario is replayed twice through
   :meth:`~repro.trace.replay.TraceReplayer.simulate` (virtual time, no
   wall clock anywhere) and the recorder outputs must be byte-identical;
   the per-scenario miss-rate / goodput / p99 facts and the cross-scenario
   miss-rate ordering are recorded to ``BENCH_trace_replay.json`` and
   recomputed exactly in CI — drift means the scheduler's *decision
   logic* changed, not that the runner was noisy.

3. **Tracing overhead** — a live replay (real
   :class:`~repro.scheduler.frontend.ServingFrontend`, wall clock) with a
   full-sampling :class:`~repro.trace.tracer.Tracer` must keep goodput
   within 5% of the untraced run (the "tracing can stay on" fact).

Run directly for the acceptance record::

    PYTHONPATH=src python benchmarks/bench_trace_replay.py

or for the CI smoke (no record written; asserts against the committed
record) / to regenerate the pinned corpus::

    PYTHONPATH=src python benchmarks/bench_trace_replay.py --smoke
    PYTHONPATH=src python benchmarks/bench_trace_replay.py --write-corpus
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.models import build_model
from repro.scheduler.frontend import SchedulerConfig
from repro.trace import (
    SCENARIOS,
    TraceRecorder,
    Tracer,
    TraceReplayer,
    write_trace,
)
from repro.utils import make_rng

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_trace_replay.json"
CORPUS_DIR = REPO_ROOT / "benchmarks" / "traces"

REPLICAS = 2
OVERHEAD_SCENARIO = "bursts"
OVERHEAD_THRESHOLD = 0.05  # traced goodput may regress at most this fraction


def _model():
    return build_model("fluid", rng=make_rng(0))


def _config() -> SchedulerConfig:
    return SchedulerConfig(replicas=REPLICAS)


def corpus_path(name: str) -> Path:
    return CORPUS_DIR / f"{name}.jsonl"


def corpus_text(name: str) -> str:
    """The canonical artifact bytes for one scenario (via a temp file, so
    pinned-corpus comparison exercises the exact writer CI would use)."""
    spec = SCENARIOS[name]
    with tempfile.TemporaryDirectory() as tmp:
        path = write_trace(Path(tmp) / "t.jsonl", spec.generate(), meta=spec.meta())
        return path.read_text()


def write_corpus() -> None:
    for name in SCENARIOS:
        corpus_path(name).parent.mkdir(parents=True, exist_ok=True)
        corpus_path(name).write_text(corpus_text(name))


def _simulate(name: str, model):
    recorder = TraceRecorder()
    result = TraceReplayer.from_scenario(name).simulate(
        model, _config(), recorder=recorder
    )
    return result, recorder


def sim_facts(model=None) -> dict:
    """Per-scenario deterministic simulation facts (what the record pins)."""
    model = model or _model()
    facts = {}
    for name in SCENARIOS:
        result, _ = _simulate(name, model)
        facts[name] = {
            "requests": result["requests"],
            "outcomes": result["outcomes"],
            "widths": result["widths"],
            "miss_rate": result["miss_rate"],
            "goodput_rps": result["goodput_rps"],
            "p99_s": result["latency"]["p99_s"],
        }
    return facts


def miss_rate_ordering(facts: dict) -> list:
    return sorted(facts, key=lambda name: (facts[name]["miss_rate"], name))


def _live_goodput(model, tracer) -> float:
    result = TraceReplayer.from_scenario(OVERHEAD_SCENARIO).replay(
        model, _config(), tracer=tracer
    )
    return result["goodput_rps"]


def measure_overhead(model=None, attempts: int = 3) -> dict:
    """Best-of-N live overhead measurement (wall clock is runner-noisy)."""
    model = model or _model()
    best = None
    for _ in range(attempts):
        untraced = _live_goodput(model, None)
        traced = _live_goodput(model, Tracer(sampling=1.0))
        overhead = 1.0 - traced / untraced if untraced > 0 else float("inf")
        fact = {
            "scenario": OVERHEAD_SCENARIO,
            "sampling": 1.0,
            "goodput_untraced_rps": untraced,
            "goodput_traced_rps": traced,
            "overhead_frac": overhead,
            "threshold": OVERHEAD_THRESHOLD,
            "meets_threshold": overhead < OVERHEAD_THRESHOLD,
        }
        if best is None or fact["overhead_frac"] < best["overhead_frac"]:
            best = fact
        if best["meets_threshold"]:
            break
    return best


# -- smoke assertions ---------------------------------------------------------


def test_corpus_is_pinned():
    """Committed benchmarks/traces/*.jsonl regenerate byte-identically, and
    reading an artifact back yields exactly the generated specs."""
    for name, spec in SCENARIOS.items():
        path = corpus_path(name)
        assert path.exists(), f"pinned corpus missing: {path} (run --write-corpus)"
        committed = path.read_text()
        regenerated = corpus_text(name)
        assert committed == regenerated, (
            f"{path} drifted from its generator (seed {spec.seed}): the "
            "scenario zoo is no longer bit-reproducible"
        )
        replayer = TraceReplayer.from_file(path)
        assert list(replayer.specs) == spec.generate(), (
            f"{path}: specs read back differ from generated specs"
        )


def test_sim_is_deterministic(model=None):
    """Two simulations of the same corpus produce byte-identical artifacts
    (full bytes, not just canonical form: virtual time has no wall clock)."""
    model = model or _model()
    for name in SCENARIOS:
        _, rec1 = _simulate(name, model)
        _, rec2 = _simulate(name, model)
        assert rec1.dumps() == rec2.dumps(), (
            f"simulate({name!r}) is not deterministic"
        )


def test_sim_matches_record(model=None):
    """The committed record's per-scenario facts recompute exactly."""
    record = json.loads(RECORD_PATH.read_text())
    facts = sim_facts(model)
    for name, fact in facts.items():
        committed = record["scenarios"][name]
        for key, value in fact.items():
            assert committed[key] == value, (
                f"{name}.{key}: committed {committed[key]!r} != recomputed "
                f"{value!r} — scheduler decision logic drifted"
            )
    assert record["miss_rate_ordering"] == miss_rate_ordering(facts), (
        f"miss-rate ordering drifted: committed {record['miss_rate_ordering']} "
        f"!= recomputed {miss_rate_ordering(facts)}"
    )


def test_tracing_overhead(model=None):
    """Full-sampling tracing keeps live goodput within the 5% budget."""
    fact = measure_overhead(model)
    assert fact["meets_threshold"], (
        f"tracing overhead {fact['overhead_frac']:.1%} exceeds "
        f"{fact['threshold']:.0%}: {fact}"
    )


# -- driver -------------------------------------------------------------------


def _record(facts: dict, overhead: dict, path: Path = RECORD_PATH) -> None:
    payload = {
        "benchmark": "benchmarks/bench_trace_replay.py",
        "description": (
            "Scenario-zoo trace replay: pinned generated corpora "
            "(benchmarks/traces/*.jsonl, byte-reproducible), deterministic "
            "virtual-time replay facts per scenario (exact recompute in CI), "
            "and the live tracing-overhead budget (full-sampling tracer "
            "within 5% of untraced goodput)"
        ),
        "replicas": REPLICAS,
        "corpus": {
            name: {
                "file": f"benchmarks/traces/{name}.jsonl",
                "requests": facts[name]["requests"],
            }
            for name in SCENARIOS
        },
        "determinism": {
            "sim_byte_identical": True,
            "corpus_byte_reproducible": True,
        },
        "scenarios": facts,
        "miss_rate_ordering": miss_rate_ordering(facts),
        "overhead": overhead,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="assert corpus/determinism/record facts + the live overhead budget",
    )
    parser.add_argument(
        "--write-corpus", action="store_true",
        help="regenerate benchmarks/traces/*.jsonl and exit",
    )
    args = parser.parse_args(argv)
    if args.write_corpus:
        write_corpus()
        for name in SCENARIOS:
            print(f"wrote {corpus_path(name)}")
        return 0
    if args.smoke:
        model = _model()
        test_corpus_is_pinned()
        test_sim_is_deterministic(model)
        test_sim_matches_record(model)
        test_tracing_overhead(model)
        print("smoke OK")
        return 0
    model = _model()
    write_corpus()
    test_corpus_is_pinned()
    test_sim_is_deterministic(model)
    facts = sim_facts(model)
    overhead = measure_overhead(model)
    _record(facts, overhead)
    print(f"wrote {RECORD_PATH} (+ pinned corpus under {CORPUS_DIR})")
    for name in miss_rate_ordering(facts):
        fact = facts[name]
        p99 = fact["p99_s"]
        p99_s = f"{1e3 * p99:6.1f}ms" if p99 is not None else "   n/a"
        print(
            f"  {name:13s} {fact['requests']:4d} requests  "
            f"miss-rate {fact['miss_rate']:.3f}  "
            f"goodput {fact['goodput_rps']:7.1f} req/s  p99 {p99_s}"
        )
    print(
        f"  tracing overhead {overhead['overhead_frac']:+.1%} "
        f"(traced {overhead['goodput_traced_rps']:.1f} vs untraced "
        f"{overhead['goodput_untraced_rps']:.1f} req/s, "
        f"budget {overhead['threshold']:.0%}: "
        f"{'OK' if overhead['meets_threshold'] else 'FAILED'})"
    )
    return 0 if overhead["meets_threshold"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
