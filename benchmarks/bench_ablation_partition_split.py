"""Ablation: where to split the width partition.

The paper splits 50/50.  This bench sweeps the split point and verifies the
design choice: the balanced split maximises HA throughput on (near-)equal
devices, because the slower side's compute bounds the lock-step pipeline.
"""

import pytest

from repro.comm import CommLatencyModel
from repro.device import jetson_nx_master, jetson_nx_worker
from repro.distributed import SystemThroughputModel, WidthPartition

SPLITS = [2, 4, 6, 8, 10, 12, 14]


def sweep(bench_net):
    results = {}
    for split in SPLITS:
        tm = SystemThroughputModel(
            bench_net,
            jetson_nx_master(),
            jetson_nx_worker(),
            CommLatencyModel(),
            partition=WidthPartition(bench_net.width_spec, split),
        )
        results[split] = tm.ha_throughput(bench_net.width_spec.full()).throughput_ips
    return results


def test_balanced_split_is_best(benchmark, bench_net):
    results = benchmark(sweep, bench_net)
    best_split = max(results, key=results.get)
    assert best_split == 8, results
    # And the curve is unimodal around it.
    series = [results[s] for s in SPLITS]
    peak = series.index(max(series))
    assert all(a <= b for a, b in zip(series[:peak], series[1 : peak + 1]))
    assert all(a >= b for a, b in zip(series[peak:], series[peak + 1 :]))


def test_extreme_splits_approach_lone_device(benchmark, bench_net):
    """Pushing nearly all channels to one device degenerates toward lone
    full-model latency plus pointless comm."""
    results = benchmark(sweep, bench_net)
    from repro.distributed import MASTER

    tm = SystemThroughputModel(
        bench_net, jetson_nx_master(), jetson_nx_worker(), CommLatencyModel()
    )
    lone_full = tm.standalone_throughput(MASTER, bench_net.width_spec.full()).throughput_ips
    assert results[2] < results[8]
    assert results[14] < results[8]
    assert results[14] < lone_full * 1.4  # barely better than not distributing
