"""Fig. 2, throughput panel.

Regenerates every throughput bar of the paper's Fig. 2 from the calibrated
analytical model and asserts each against the paper's reported value, plus
the abstract's 2.5x / 2x speedup claims.  Throughput depends only on the
architecture and the calibrated testbed, not on training, so the match is
exact (<0.5% relative error).
"""

import pytest

from repro.comm import CommLatencyModel
from repro.device import jetson_nx_master, jetson_nx_worker
from repro.distributed import SystemThroughputModel, ha_plan, ht_plan, solo_plan
from repro.experiments import PAPER_FIG2


@pytest.fixture(scope="module")
def tm(bench_net):
    return SystemThroughputModel(
        bench_net, jetson_nx_master(), jetson_nx_worker(), CommLatencyModel()
    )


PLANS = {
    ("static", "master_and_worker", "HA"): ha_plan("lower100"),
    ("dynamic", "master_and_worker", "HT"): solo_plan("master", "lower50"),
    ("dynamic", "master_and_worker", "HA"): ha_plan("lower100"),
    ("dynamic", "only_master", "solo"): solo_plan("master", "lower50"),
    ("fluid", "master_and_worker", "HT"): ht_plan("lower50", "upper50"),
    ("fluid", "master_and_worker", "HA"): ha_plan("lower100"),
    ("fluid", "only_master", "solo"): solo_plan("master", "lower50"),
    ("fluid", "only_worker", "solo"): solo_plan("worker", "upper50"),
}


@pytest.mark.parametrize("key", sorted(PLANS), ids=lambda k: "-".join(k))
def test_fig2_throughput_bar(benchmark, tm, key):
    plan = PLANS[key]
    breakdown = benchmark(tm.evaluate_plan, plan)
    paper_ips = PAPER_FIG2[key][0]
    assert breakdown.throughput_ips == pytest.approx(paper_ips, rel=0.005), key


def test_fig2_speedup_claims(benchmark, tm):
    """Abstract: 'achieve 2.5x and 2x throughput compared with Static and
    Dynamic DNNs, respectively.'"""

    def compute_ratios():
        ht = tm.evaluate_plan(ht_plan("lower50", "upper50")).throughput_ips
        static = tm.evaluate_plan(ha_plan("lower100")).throughput_ips
        dynamic = tm.evaluate_plan(solo_plan("master", "lower50")).throughput_ips
        return ht / static, ht / dynamic

    vs_static, vs_dynamic = benchmark(compute_ratios)
    assert vs_static == pytest.approx(2.5, rel=0.02)
    assert vs_dynamic == pytest.approx(2.0, rel=0.02)


def test_fig2_failed_bars_are_zero(benchmark, tm, bench_net):
    """Static loses everything on any failure; Dynamic loses the Worker-only
    scenario — asserted through the policy, not hard-coded."""
    from repro.models import DynamicDNN, StaticDNN
    from repro.runtime import AdaptationPolicy
    from repro.distributed import Scenario, ExecutionMode

    def failed_scenarios():
        static_policy = AdaptationPolicy(StaticDNN(bench_net), tm)
        dynamic_policy = AdaptationPolicy(DynamicDNN(bench_net), tm)
        return (
            static_policy.plan_for_scenario(Scenario.ONLY_MASTER).mode,
            static_policy.plan_for_scenario(Scenario.ONLY_WORKER).mode,
            dynamic_policy.plan_for_scenario(Scenario.ONLY_WORKER).mode,
        )

    modes = benchmark(failed_scenarios)
    assert all(m is ExecutionMode.FAILED for m in modes)
