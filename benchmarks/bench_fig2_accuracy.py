"""Fig. 2, accuracy panel.

Trains all three families at full fidelity (session fixture) and
regenerates every accuracy bar.  Absolute numbers differ slightly from the
paper (synthetic MNIST stand-in — see DESIGN.md §2); the asserted contract
is the paper's band and ordering:

* every surviving full/half-width configuration lands in the high-90s;
* failed configurations report exactly 0;
* Fluid HT (the mixed independent streams) trails Fluid HA;
* Fluid HA is within a point of Static (paper: slightly above it).
"""

import pytest

from repro.experiments import run_fig2, shape_checks


@pytest.fixture(scope="module")
def fig2_result(fig2_models, fig2_data):
    _, test_set = fig2_data
    return run_fig2(fig2_models, test_set)


SURVIVING_BARS = [
    ("static", "master_and_worker", "HA"),
    ("dynamic", "master_and_worker", "HT"),
    ("dynamic", "master_and_worker", "HA"),
    ("dynamic", "only_master", "solo"),
    ("fluid", "master_and_worker", "HT"),
    ("fluid", "master_and_worker", "HA"),
    ("fluid", "only_master", "solo"),
    ("fluid", "only_worker", "solo"),
]

FAILED_BARS = [
    ("static", "only_master", "failed"),
    ("static", "only_worker", "failed"),
    ("dynamic", "only_worker", "failed"),
]


@pytest.mark.parametrize("key", SURVIVING_BARS, ids=lambda k: "-".join(k))
def test_surviving_bar_in_paper_band(benchmark, fig2_result, fig2_models, fig2_data, key):
    family, scenario, mode = key
    cell = fig2_result.get(family, scenario, mode)
    # Benchmark the evaluation pass that produced this bar.
    _, test_set = fig2_data
    model = fig2_models[family]
    subnet = "lower100" if mode == "HA" else "lower50"
    benchmark(model.evaluate, subnet, test_set)
    assert cell.accuracy_pct >= 93.0, f"{key}: {cell.accuracy_pct:.1f}%"


def test_failed_bars_zero(benchmark, fig2_result):
    def read_bars():
        return [fig2_result.get(*key).accuracy_pct for key in FAILED_BARS]

    values = benchmark(read_bars)
    assert values == [0.0, 0.0, 0.0]


def test_accuracy_shape_checks(benchmark, fig2_result):
    """All qualitative Fig. 2 claims (DESIGN.md §5) at full fidelity."""
    checks = benchmark(shape_checks, fig2_result)
    failures = [c for c in checks if not c.passed]
    assert not failures, "\n".join(f"{c.name}: {c.detail}" for c in failures)


def test_fluid_ht_between_its_halves(benchmark, fig2_result, fig2_models, fig2_data):
    _, test_set = fig2_data
    model = fig2_models["fluid"]
    lo = benchmark(model.evaluate, "lower50", test_set)
    hi = model.evaluate("upper50", test_set)
    ht = fig2_result.get("fluid", "master_and_worker", "HT").accuracy_pct / 100
    assert min(lo, hi) - 1e-9 <= ht <= max(lo, hi) + 1e-9


def test_dynamic_upper_is_chance_level(benchmark, fig2_models, fig2_data):
    """The mechanism behind Dynamic's Fig. 1c failure: its upper slice is
    untrained for standalone use and scores at chance."""
    _, test_set = fig2_data
    acc = benchmark(fig2_models["dynamic"].evaluate, "upper50", test_set)
    assert acc < 0.3


def test_static_slices_are_chance_level(benchmark, fig2_models, fig2_data):
    _, test_set = fig2_data
    acc = benchmark(fig2_models["static"].evaluate, "lower25", test_set)
    assert acc < 0.5
