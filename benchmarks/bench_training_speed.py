"""Benchmarks of the training pipeline itself.

Times one optimisation step and one stage-epoch of each training recipe on
a fixed small dataset so regressions in the framework's backward pass or
the freeze-mask machinery show up as timing shifts.
"""

import numpy as np
import pytest

from repro.data import ArrayDataset, DataLoader
from repro.models import build_model
from repro.nn import SGD, SoftmaxCrossEntropy
from repro.training import IncrementalTrainer, TrainConfig, Trainer
from repro.utils import make_rng


@pytest.fixture(scope="module")
def step_data():
    rng = make_rng(0)
    x = rng.standard_normal((64, 1, 28, 28))
    y = rng.integers(0, 10, 64)
    return x, y


@pytest.fixture(scope="module")
def small_train_set():
    rng = make_rng(1)
    images = rng.standard_normal((512, 1, 28, 28))
    labels = rng.integers(0, 10, 512)
    return ArrayDataset(images, labels)


def test_full_model_training_step(benchmark, step_data):
    x, y = step_data
    model = build_model("fluid", rng=make_rng(2))
    view = model.full_view()
    opt = SGD(view.parameters(), lr=0.05, momentum=0.9)
    loss_fn = SoftmaxCrossEntropy()

    def step():
        logits = view(x)
        loss, grad = loss_fn(logits, y)
        opt.zero_grad()
        view.backward(grad)
        opt.step()
        return loss

    loss = benchmark(step)
    assert np.isfinite(loss)


def test_masked_step_overhead(benchmark, step_data):
    """A frozen-region step must cost about the same as an unmasked one —
    freezing is a mask multiply, not a recomputation."""
    x, y = step_data
    model = build_model("fluid", rng=make_rng(3))
    net = model.net
    from repro.slimmable import RegionTracker

    tracker = RegionTracker()
    spec25 = net.width_spec.find("lower25")
    for param, region in net.region_masks(spec25):
        tracker.mark(param, region)
    spec50 = net.width_spec.find("lower50")
    net.apply_freeze(spec50, tracker)
    view = net.view(spec50)
    opt = SGD(view.parameters(), lr=0.05, momentum=0.9)
    loss_fn = SoftmaxCrossEntropy()

    def step():
        logits = view(x)
        loss, grad = loss_fn(logits, y)
        opt.zero_grad()
        view.backward(grad)
        opt.step()
        return loss

    loss = benchmark(step)
    assert np.isfinite(loss)


def test_plain_trainer_epoch(benchmark, small_train_set):
    def epoch():
        model = build_model("static", rng=make_rng(4))
        return Trainer().fit(
            model.full_view(),
            small_train_set,
            TrainConfig(epochs=1, lr=0.05),
            rng=make_rng(5),
        )

    history = benchmark.pedantic(epoch, rounds=1, iterations=1)
    assert len(history.records) == 1


def test_incremental_pass(benchmark, small_train_set):
    def incremental():
        model = build_model("dynamic", rng=make_rng(6))
        return IncrementalTrainer().fit(
            model, small_train_set, TrainConfig(epochs=1, lr=0.05), rng=make_rng(7)
        )

    history = benchmark.pedantic(incremental, rounds=1, iterations=1)
    assert history.stages() == ["lower25", "lower50", "lower75", "lower100"]
