"""Unified benchmark smoke driver: one CI entry point for every bench.

CI used to run four copy-pasted inline bench steps; this driver replaces
them.  It does two things, in order:

1. **Re-verifies the committed ``BENCH_*.json`` records**: each record
   asserts functional facts (equality/allclose contracts, allocation
   budgets, miss-rate ordering, zero-copy serving) that must still hold
   as committed — a drifted record means the repo is telling a stale
   story and the job fails.  Wall-clock *numbers* are machine-dependent
   and are never gated here; the record checks gate the facts' internal
   consistency, the live smokes gate behaviour.  Records are checked
   *before* the smokes run because the nn micro-bench smoke regenerates
   ``BENCH_nn_micro.json`` in place — checking afterwards would validate
   the fresh artifact instead of the committed record.

2. **Runs every bench smoke** as a subprocess (the same commands the old
   inline steps ran): the nn micro-bench suite (which regenerates
   ``BENCH_nn_micro.json`` for the CI artifact), the micro-batched
   serving smoke, the SLA scheduler smoke, and the compiled-plan smoke —
   which itself covers all three conv backends, the batch-rows ladder,
   and the out-of-rung eager fallback.

Usage::

    PYTHONPATH=src python benchmarks/run_smokes.py            # everything
    PYTHONPATH=src python benchmarks/run_smokes.py --list
    PYTHONPATH=src python benchmarks/run_smokes.py --only plan
    PYTHONPATH=src python benchmarks/run_smokes.py --records-only
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent


@dataclass(frozen=True)
class Smoke:
    """One bench smoke: a name and the argv that runs it."""

    name: str
    argv: Tuple[str, ...]
    description: str


SMOKES: Tuple[Smoke, ...] = (
    Smoke(
        "nn_micro",
        (
            sys.executable, "-m", "pytest", "benchmarks/bench_nn_micro.py", "-q",
            "--benchmark-disable-gc", "--benchmark-json=BENCH_nn_micro.json",
        ),
        "nn kernel micro-benchmarks incl. the dtype-policy speedup check",
    ),
    Smoke(
        "serving",
        (sys.executable, "-m", "pytest", "benchmarks/bench_serving_throughput.py", "-q"),
        "micro-batched vs serial serving (zero-copy shared weights)",
    ),
    Smoke(
        "scheduler",
        (sys.executable, "-m", "pytest", "benchmarks/bench_scheduler.py", "-q"),
        "SLA scheduler vs fixed-widest under overload + replica failure",
    ),
    Smoke(
        "plan",
        (sys.executable, "benchmarks/bench_plan.py", "--smoke"),
        "compiled plans vs eager: all conv backends, ladder, eager fallback",
    ),
    Smoke(
        "multiproc",
        (sys.executable, "benchmarks/bench_multiproc.py", "--smoke"),
        "process-pool replicas over shm weights: zero-copy, invalidation, parity",
    ),
    Smoke(
        "dist_plan",
        (sys.executable, "benchmarks/bench_dist_plan.py", "--smoke"),
        "compiled HA vs eager: bitwise parity, delta halos, zero steady-state alloc",
    ),
    Smoke(
        "trace_replay",
        (sys.executable, "benchmarks/bench_trace_replay.py", "--smoke"),
        "scenario-zoo replay: pinned corpus, sim determinism, tracing overhead",
    ),
    Smoke(
        "chaos",
        (sys.executable, "benchmarks/bench_chaos.py", "--smoke"),
        "self-healing: zero-lost supervised incident, chaos sim, brown-out",
    ),
    Smoke(
        "tuning",
        (sys.executable, "benchmarks/bench_tuning.py", "--smoke"),
        "offline autotuner: tuned beats default across the zoo, byte-deterministic",
    ),
)


# -- committed-record fact checks --------------------------------------------
#
# Each checker receives the parsed record and raises AssertionError with a
# precise message when a committed fact no longer holds.  Checks cover the
# *functional* facts a record asserts — never machine-dependent wall-clock.


def check_plan_record(record: dict) -> None:
    backends = record["backends"]
    expected = {"im2col", "im2col-blocked", "shifted-gemm"}
    assert set(backends) == expected, (
        f"BENCH_plan.json covers backends {sorted(backends)}, expected {sorted(expected)}"
    )
    budget = record["alloc_budget_bytes"]
    for name, stats in backends.items():
        assert stats["alloc_bytes_per_request"] < budget, (
            f"{name} recorded {stats['alloc_bytes_per_request']:.0f} B/request, "
            f"over the {budget} B budget"
        )
        assert stats["alloc_bytes_per_request"] < record["eager_alloc_bytes_per_request"]
    assert backends["im2col"]["exact"] and backends["im2col-blocked"]["exact"], (
        "im2col backends must record the bitwise contract"
    )
    assert not backends["shifted-gemm"]["exact"], (
        "shifted-gemm must record the relaxed (allclose) contract"
    )
    assert record["shifted_vs_default_widest"] >= 1.3, (
        f"recorded shifted-vs-default ratio {record['shifted_vs_default_widest']:.2f} "
        "below the 1.3 acceptance floor"
    )
    ladder = record["ladder"]
    assert ladder["eager_fallback_verified"], "ladder fallback fact missing"
    arenas = {int(k): v for k, v in ladder["arena_bytes_per_rung"].items()}
    rungs = sorted(arenas)
    assert rungs == sorted(ladder["rungs"])
    sizes = [arenas[r] for r in rungs]
    assert sizes == sorted(sizes) and sizes[0] < sizes[-1], (
        f"ladder arena bytes must grow with the rung ceiling, got {arenas}"
    )


def check_scheduler_record(record: dict) -> None:
    comp = record["comparison"]
    assert comp["miss_rate_scheduler"] < comp["miss_rate_fixed_widest"], (
        f"scheduler miss-rate {comp['miss_rate_scheduler']:.3f} not below "
        f"fixed-widest {comp['miss_rate_fixed_widest']:.3f}"
    )
    assert comp["goodput_ratio"] >= 1.0, (
        f"scheduler goodput ratio {comp['goodput_ratio']:.2f} below 1.0"
    )
    assert comp["scheduler_lost"] == 0, (
        f"scheduler lost {comp['scheduler_lost']} requests (must be 0)"
    )
    # The two sides must describe the same trace.
    assert record["fixed_widest"]["requests"] == record["scheduler"]["requests"] == record["arrivals"]


def check_serving_record(record: dict) -> None:
    assert record["zero_copy"] is True, "serving record lost the zero-copy fact"
    speedup = record["speedup"]["micro_batched_vs_serial"]
    assert speedup > 1.0, (
        f"recorded micro-batched speedup {speedup:.2f} does not beat serial"
    )
    modes = record["modes"]
    assert modes["micro_batched"]["mean_batch_rows"] > 1.0, (
        "micro-batching record shows no actual batching"
    )


def check_dtype_policy_record(record: dict) -> None:
    assert record["meets_threshold"] is True
    assert record["speedup"] >= record["acceptance_threshold"], (
        f"recorded dtype-policy speedup {record['speedup']} below its own "
        f"threshold {record['acceptance_threshold']}"
    )


def check_nn_micro_record(record: dict) -> None:
    names = {b["name"] for b in record["benchmarks"]}
    assert names, "BENCH_nn_micro.json records no benchmarks"
    for required in ("test_conv_forward", "test_conv_backward"):
        assert any(required in n for n in names), f"{required} missing from record"


def check_multiproc_record(record: dict) -> None:
    zero_copy = record["zero_copy"]
    assert zero_copy["single_weight_segment_set"] is True, (
        "multiproc record lost the zero-copy fact (one weight segment set "
        "regardless of worker count)"
    )
    counts = set(zero_copy["weight_segments_by_worker_count"].values())
    assert counts == {1}, (
        f"weight segment counts vary with worker count: "
        f"{zero_copy['weight_segments_by_worker_count']}"
    )
    invalidation = record["invalidation"]
    assert invalidation["repacks_observed"] is True, (
        "multiproc record lost the cross-process invalidation fact"
    )
    assert invalidation["parity_after_update"] is True, (
        "multiproc record lost the post-update parity fact"
    )
    workers = record["workers"]
    assert sorted(int(k) for k in workers) == [1, 2, 4, 8], (
        f"multiproc record covers worker counts {sorted(workers)}, expected 1/2/4/8"
    )
    for count, stats in workers.items():
        assert stats["thread_rows_per_s"] > 0 and stats["process_rows_per_s"] > 0, (
            f"non-positive rows/s recorded at {count} workers"
        )
        assert stats["ring_segments"] == int(count), (
            f"{stats['ring_segments']} I/O rings for {count} workers (expected one each)"
        )
    # Wall-clock ordering facts are machine-conditional (see the record's
    # scaling note): gate them on the core count the record was made with.
    if record["cores"] >= 4:
        at4 = workers["4"]
        assert at4["process_rows_per_s"] >= 2.0 * at4["thread_rows_per_s"], (
            f"process backend {at4['process_rows_per_s']:.0f} rows/s not >= 2x "
            f"thread {at4['thread_rows_per_s']:.0f} at 4 workers on a "
            f"{record['cores']}-core recorder"
        )
        widest = str(max(int(k) for k in workers))
        assert (
            workers[widest]["process_rows_per_s"]
            > workers[widest]["thread_rows_per_s"]
        ), f"thread >= process at {widest} workers on a multi-core recorder"


def check_dist_plan_record(record: dict) -> None:
    parity = record["parity"]
    assert all(parity.values()), f"compiled/eager parity facts failed: {parity}"
    assert record["meets_threshold"] is True
    assert record["speedup_ha_batch1_inprocess"] >= record["acceptance_threshold"], (
        f"recorded compiled-HA speedup {record['speedup_ha_batch1_inprocess']:.2f} "
        f"below its own threshold {record['acceptance_threshold']}"
    )
    ex = record["exchange_bytes"]
    eager, compiled = ex["eager_per_round"], ex["compiled_per_round"]
    assert len(compiled) == len(eager) and sum(compiled) < sum(eager), (
        f"delta halos did not reduce exchange bytes: {compiled} vs {eager}"
    )
    assert all(c < e for c, e in zip(compiled[1:], eager[1:])), (
        "every post-input round must record fewer compiled bytes"
    )
    assert ex["reduction"] > 0.25, (
        f"recorded exchange-byte reduction {ex['reduction']:.0%} below 25%"
    )
    alloc = record["zero_alloc"]
    assert all(alloc.values()), f"steady-state allocation facts failed: {alloc}"
    for transport in ("inprocess", "wire_inproc", "tcp"):
        assert record["figure2"][transport]["ha"], f"{transport} HA results missing"


def check_trace_replay_record(record: dict) -> None:
    names = set(record["scenarios"])
    expected = {"diurnal", "heavy_tail", "bursts", "adversarial", "multi_tenant"}
    assert names == expected, (
        f"BENCH_trace_replay.json covers scenarios {sorted(names)}, "
        f"expected {sorted(expected)}"
    )
    determinism = record["determinism"]
    assert determinism["sim_byte_identical"] is True, (
        "trace-replay record lost the byte-identical simulation fact"
    )
    assert determinism["corpus_byte_reproducible"] is True, (
        "trace-replay record lost the byte-reproducible corpus fact"
    )
    for name, fact in record["scenarios"].items():
        assert fact["requests"] > 0, f"{name} records no requests"
        assert sum(fact["outcomes"].values()) == fact["requests"], (
            f"{name}: outcomes {fact['outcomes']} do not sum to "
            f"{fact['requests']} requests"
        )
        assert record["corpus"][name]["requests"] == fact["requests"], (
            f"{name}: pinned corpus size differs from the replayed stream"
        )
    ordering = record["miss_rate_ordering"]
    rates = [record["scenarios"][n]["miss_rate"] for n in ordering]
    assert sorted(ordering) == sorted(names) and rates == sorted(rates), (
        f"miss_rate_ordering {ordering} does not sort the recorded "
        f"miss rates {rates}"
    )
    overhead = record["overhead"]
    assert overhead["meets_threshold"] is True, (
        f"trace-replay record lost the tracing-overhead fact: {overhead}"
    )
    assert overhead["overhead_frac"] < overhead["threshold"], (
        f"recorded overhead {overhead['overhead_frac']:.3f} is not under "
        f"its own threshold {overhead['threshold']}"
    )


def check_chaos_record(record: dict) -> None:
    live = record["live"]
    assert live["lost"] == 0, (
        f"chaos record shows {live['lost']} lost requests in the supervised "
        "live incident (the zero-lost fact)"
    )
    assert live["crashes"] == 2, (
        f"the bursts_faulty incident scripts 2 crashes, record has {live['crashes']}"
    )
    assert live["respawns"] >= live["crashes"], (
        f"supervisor respawned {live['respawns']} workers for "
        f"{live['crashes']} crashes"
    )
    assert live["gave_up"] == [], (
        f"restart budget tripped for replicas {live['gave_up']}"
    )
    assert live["recovered_full_capacity"] is True, (
        "chaos record lost the full-capacity-recovery fact"
    )
    assert live["recovery_within_bound"] is True, (
        f"recorded recovery {live['recovery_s']}s exceeds the record's own "
        f"bound {live['recovery_bound_s']}s"
    )
    sim = record["sim"]
    assert sim["byte_identical"] is True, (
        "chaos record lost the byte-identical fault simulation fact"
    )
    assert sim["lost"] == 0, f"sim incident lost {sim['lost']} requests"
    for part in (live, sim):
        assert sum(part["outcomes"].values()) == part["requests"], (
            f"outcomes {part['outcomes']} do not sum to {part['requests']}"
        )
    brown = record["brownout"]
    base_miss = brown["baseline"]["critical_miss_rate"]
    shed_miss = brown["brownout"]["critical_miss_rate"]
    assert shed_miss < base_miss, (
        f"brown-out critical miss {shed_miss:.4f} not strictly below "
        f"baseline {base_miss:.4f}"
    )
    assert abs(brown["critical_miss_improvement"] - (base_miss - shed_miss)) < 1e-12, (
        "brown-out improvement is inconsistent with its own miss rates"
    )


def check_tuning_record(record: dict) -> None:
    tuning = record["tuning"]
    assert tuning["byte_identical"] is True, (
        "tuning record lost the byte-deterministic artifact fact"
    )
    gated = tuning["must_beat"]
    assert set(gated) >= {"multi_tenant", "adversarial"}, (
        f"tuning record gates only {gated}; the acceptance criterion names "
        "multi_tenant and adversarial"
    )
    for name in gated:
        row = tuning["scenarios"][name]
        assert row["tuned_miss_rate"] < row["default_miss_rate"], (
            f"tuning record shows tuned not beating default on {name}: "
            f"{row['tuned_miss_rate']} >= {row['default_miss_rate']}"
        )
        assert row["improved"] is True, f"{name}: improved flag inconsistent"
    config = tuning["config"]
    winner = tuning["winner_mapping"]
    for key, value in winner.items():
        if key in ("retry", "restart_backoff_s"):
            continue  # flattened into the policy objects / scalar defaults
        assert config.get(key) == value, (
            f"emitted config diverges from the winner on {key}: "
            f"{config.get(key)!r} != {value!r}"
        )
    derived = tuning["derived"]
    assert config["rows_ladder"] == derived["rows_ladder"], (
        "emitted config does not carry the derived rows_ladder"
    )
    assert config["conv_backend_per_rung"] == derived["conv_backend_per_rung"], (
        "emitted config does not carry the derived per-rung backends"
    )
    chaos = record["chaos"]
    assert chaos["improved"] is True, (
        f"chaos-tuned config not better than default under faults: "
        f"{chaos['tuned_miss_rate']} >= {chaos['default_miss_rate']}"
    )
    assert chaos["tuned_miss_rate"] < chaos["default_miss_rate"]
    assert chaos["supervise"] is True and chaos["retry"] is True, (
        "chaos-tuned config must record the live fault plane switched on"
    )


RECORD_CHECKS: Tuple[Tuple[str, Callable[[dict], None]], ...] = (
    ("BENCH_plan.json", check_plan_record),
    ("BENCH_scheduler.json", check_scheduler_record),
    ("BENCH_serving.json", check_serving_record),
    ("BENCH_dtype_policy.json", check_dtype_policy_record),
    ("BENCH_nn_micro.json", check_nn_micro_record),
    ("BENCH_multiproc.json", check_multiproc_record),
    ("BENCH_dist_plan.json", check_dist_plan_record),
    ("BENCH_trace_replay.json", check_trace_replay_record),
    ("BENCH_chaos.json", check_chaos_record),
    ("BENCH_tuning.json", check_tuning_record),
)


# -- driver ------------------------------------------------------------------


def run_smoke(smoke: Smoke) -> Tuple[bool, float]:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    started = time.monotonic()
    proc = subprocess.run(smoke.argv, cwd=REPO_ROOT, env=env)
    return proc.returncode == 0, time.monotonic() - started


def verify_records(only: Sequence[str] = ()) -> List[Tuple[str, str]]:
    """Check every committed record; returns ``(name, error)`` failures."""
    failures: List[Tuple[str, str]] = []
    for filename, check in RECORD_CHECKS:
        if only and not any(sel in filename for sel in only):
            continue
        path = REPO_ROOT / filename
        try:
            check(json.loads(path.read_text()))
        except FileNotFoundError:
            failures.append((filename, "committed record is missing"))
        except (AssertionError, KeyError, TypeError, ValueError) as exc:
            failures.append((filename, f"{type(exc).__name__}: {exc}"))
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--list", action="store_true", help="list smokes and exit")
    parser.add_argument(
        "--only", action="append", default=[],
        help="run only smokes/records whose name contains this (repeatable)",
    )
    parser.add_argument(
        "--records-only", action="store_true",
        help="skip the live smokes; only re-verify committed BENCH_*.json facts",
    )
    args = parser.parse_args(argv)

    if args.list:
        for smoke in SMOKES:
            print(f"{smoke.name:10s} {smoke.description}")
        for filename, _ in RECORD_CHECKS:
            print(f"{'record':10s} {filename}")
        return 0

    failed: List[str] = []
    # Committed records first: the nn_micro smoke regenerates its record
    # in place, so checking afterwards would miss a drifted committed file.
    record_failures = verify_records(args.only)
    for filename, error in record_failures:
        print(f"=== record: {filename} FAILED — {error}")
        failed.append(f"record:{filename}")
    checked = [
        f for f, _ in RECORD_CHECKS
        if not args.only or any(sel in f for sel in args.only)
    ]
    passed_records = [f for f in checked if all(f != name for name, _ in record_failures)]
    for filename in passed_records:
        print(f"=== record: {filename} OK")

    if not args.records_only:
        for smoke in SMOKES:
            if args.only and not any(sel in smoke.name for sel in args.only):
                continue
            print(f"=== smoke: {smoke.name} — {smoke.description}")
            ok, elapsed = run_smoke(smoke)
            print(f"=== smoke: {smoke.name} {'OK' if ok else 'FAILED'} ({elapsed:.0f}s)")
            if not ok:
                failed.append(f"smoke:{smoke.name}")

    if failed:
        print(f"FAILED: {', '.join(failed)}")
        return 1
    print("all smokes and committed records OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
