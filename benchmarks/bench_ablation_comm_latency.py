"""Ablation: communication-latency sweep.

The paper attributes the Static DNN's 11.1 img/s ceiling to "inevitable
communication overhead between devices."  This bench sweeps the link cost
and checks the implied structure: HA throughput degrades monotonically with
comm cost while HT is immune, so the HT/HA gap widens; and below roughly
half the calibrated comm cost, HA still cannot catch a lone 50% model
(per-layer compute overhead, not just the link, is in the way).
"""

import pytest

from repro.comm import CommLatencyModel
from repro.device import jetson_nx_master, jetson_nx_worker
from repro.distributed import MASTER, SystemThroughputModel

SCALES = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0]


def sweep(bench_net):
    base = CommLatencyModel()
    rows = []
    for scale in SCALES:
        comm = CommLatencyModel(
            base_latency_s=base.base_latency_s * scale,
            bandwidth_bytes_per_s=base.bandwidth_bytes_per_s / scale if scale else 1e15,
        )
        tm = SystemThroughputModel(bench_net, jetson_nx_master(), jetson_nx_worker(), comm)
        ws = bench_net.width_spec
        rows.append(
            {
                "scale": scale,
                "ha": tm.ha_throughput(ws.full()).throughput_ips,
                "ht": tm.ht_throughput(ws.find("lower50"), ws.find("upper50")).throughput_ips,
                "solo": tm.standalone_throughput(MASTER, ws.find("lower50")).throughput_ips,
            }
        )
    return rows


def test_comm_latency_sweep(benchmark, bench_net):
    rows = benchmark(sweep, bench_net)

    ha_series = [r["ha"] for r in rows]
    ht_series = [r["ht"] for r in rows]
    # HA strictly degrades with link cost; HT never touches the link.
    assert all(a > b for a, b in zip(ha_series, ha_series[1:]))
    assert ht_series == pytest.approx([ht_series[0]] * len(ht_series))
    # The HT/HA advantage widens monotonically.
    ratios = [ht / ha for ht, ha in zip(ht_series, ha_series)]
    assert all(a < b for a, b in zip(ratios, ratios[1:]))
    # At the calibrated point (scale=1.0) the ratio is the paper's ~2.5x.
    calibrated = rows[SCALES.index(1.0)]
    assert calibrated["ht"] / calibrated["ha"] == pytest.approx(2.55, abs=0.05)
    # Even a free link does not let HA catch a lone 50% model on this
    # overhead-dominated workload.
    assert rows[0]["ha"] < rows[0]["solo"]


def test_bandwidth_only_vs_latency_only(benchmark, bench_net):
    """Splitting the link cost: the per-message base latency, not bandwidth,
    dominates for the paper's tiny activations (~6 KB)."""
    ws = bench_net.width_spec

    def components():
        base = CommLatencyModel()
        lat_only = CommLatencyModel(base.base_latency_s, 1e15)
        bw_only = CommLatencyModel(0.0, base.bandwidth_bytes_per_s)
        out = {}
        for name, comm in [("full", base), ("latency_only", lat_only), ("bandwidth_only", bw_only)]:
            tm = SystemThroughputModel(
                bench_net, jetson_nx_master(), jetson_nx_worker(), comm
            )
            out[name] = tm.ha_throughput(ws.full()).comm_s
        return out

    comm = benchmark(components)
    assert comm["latency_only"] > comm["bandwidth_only"]
    assert comm["full"] == pytest.approx(comm["latency_only"] + comm["bandwidth_only"])
