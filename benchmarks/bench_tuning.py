"""Offline autotuning: the PR-10 acceptance benchmark.

Three parts, all in the deterministic virtual-time simulator:

1. **Tuned beats default across traffic shapes** — ``tune()`` on the
   ``multi_tenant`` scenario (seed 0, the full default search space),
   then the emitted config is scored against the default
   :class:`~repro.scheduler.frontend.SchedulerConfig` on *every* zoo
   scenario.  The acceptance gate: strictly lower miss rate on
   ``multi_tenant`` AND ``adversarial`` — a tuned config that only wins
   on the trace it saw has merely memorized it.

2. **Byte-determinism** — two independent ``tune()`` runs with the same
   ``(trace, space, seed)`` must serialize to byte-identical
   ``repro-tuned-config`` artifacts (the whole search is virtual-time
   and every tie-break is by candidate index).

3. **Tuning under chaos** — ``tune(use_faults=True)`` on the
   ``bursts_faulty`` incident: every candidate is scored *with the
   fault plan injected*, and the emitted config must beat the default
   under the same chaos while switching the live fault plane
   (supervision + bounded retries) on.

Run directly for the acceptance record::

    PYTHONPATH=src python benchmarks/bench_tuning.py

or for the CI smoke (asserts against the committed record)::

    PYTHONPATH=src python benchmarks/bench_tuning.py --smoke
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.faults.scenarios import faulty_replayer
from repro.models import build_model
from repro.scheduler.frontend import SchedulerConfig
from repro.trace.replay import TraceReplayer
from repro.trace.scenarios import SCENARIOS
from repro.tuning import dumps, tune
from repro.utils import make_rng

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_tuning.json"

TUNE_SCENARIO = "multi_tenant"
CHAOS_SCENARIO = "bursts_faulty"
SEED = 0
#: Scenarios the tuned config must strictly beat the default on (the
#: target trace plus the adversarial shape it never saw).
MUST_BEAT = ("multi_tenant", "adversarial")


def _model():
    return build_model("fluid", rng=make_rng(0))


def tuning_facts(model=None) -> dict:
    """Tune on one scenario, score the winner across the whole zoo."""
    model = model or _model()
    results = [
        tune(
            TraceReplayer.from_scenario(TUNE_SCENARIO), model,
            seed=SEED, workers=1,
        )
        for _ in range(2)
    ]
    artifacts = [dumps(r) for r in results]
    result = results[0]
    scenarios = {}
    default = SchedulerConfig()
    for name in sorted(SCENARIOS):
        replayer = TraceReplayer.from_scenario(name)
        base = replayer.simulate(model, default)
        tuned = TraceReplayer.from_scenario(name).simulate(model, result.config)
        scenarios[name] = {
            "default_miss_rate": base["miss_rate"],
            "tuned_miss_rate": tuned["miss_rate"],
            "default_goodput_rps": base["goodput_rps"],
            "tuned_goodput_rps": tuned["goodput_rps"],
            "improved": tuned["miss_rate"] < base["miss_rate"],
        }
    return {
        "scenario": TUNE_SCENARIO,
        "seed": SEED,
        "must_beat": list(MUST_BEAT),
        "evaluations": result.evaluations,
        "stages": result.stages,
        "winner_mapping": dict(sorted(result.winner.mapping.items())),
        "derived": result.derived,
        "config": result.config.to_mapping(),
        "byte_identical": artifacts[0] == artifacts[1],
        "scenarios": scenarios,
    }


def chaos_tuning_facts(model=None) -> dict:
    """Best config *under* the bursts_faulty incident (faults injected)."""
    model = model or _model()
    result = tune(
        faulty_replayer(CHAOS_SCENARIO), model,
        seed=SEED, workers=1, use_faults=True,
    )
    return {
        "scenario": CHAOS_SCENARIO,
        "seed": SEED,
        "default_miss_rate": result.baseline.miss_rate,
        "tuned_miss_rate": result.tuned.miss_rate,
        "default_goodput_rps": result.baseline.goodput_rps,
        "tuned_goodput_rps": result.tuned.goodput_rps,
        "improved": result.improved,
        "supervise": result.config.supervise,
        "retry": result.config.retry_policy is not None,
    }


# -- smoke assertions ---------------------------------------------------------


def test_tuned_beats_default(facts) -> None:
    for name in MUST_BEAT:
        row = facts["scenarios"][name]
        assert row["tuned_miss_rate"] < row["default_miss_rate"], (
            f"tuned config does not beat the default on {name}: "
            f"{row['tuned_miss_rate']:.4f} >= {row['default_miss_rate']:.4f}"
        )


def test_tuner_is_deterministic(facts) -> None:
    assert facts["byte_identical"], (
        "two tune() runs with the same (trace, space, seed) produced "
        "different artifacts"
    )


def test_chaos_tuning(chaos) -> None:
    assert chaos["improved"], (
        f"chaos-tuned config does not beat the default under faults: "
        f"{chaos['tuned_miss_rate']:.4f} >= {chaos['default_miss_rate']:.4f}"
    )
    assert chaos["supervise"] and chaos["retry"], (
        "a chaos-tuned config must enable the live fault plane "
        "(supervise + retry)"
    )


def test_matches_record(facts, chaos) -> None:
    """Every committed fact recomputes exactly (all sims are virtual-time)."""
    record = json.loads(RECORD_PATH.read_text())
    # The committed record went through JSON, which stringifies int dict
    # keys (e.g. the batch-rows histogram) — compare on JSON's terms.
    facts = json.loads(json.dumps(facts))
    chaos = json.loads(json.dumps(chaos))
    for key, value in facts.items():
        assert record["tuning"][key] == value, (
            f"tuning.{key}: committed {record['tuning'][key]!r} != "
            f"recomputed {value!r} — the tuner or simulator drifted"
        )
    for key, value in chaos.items():
        assert record["chaos"][key] == value, (
            f"chaos.{key}: committed {record['chaos'][key]!r} != "
            f"recomputed {value!r}"
        )


# -- driver -------------------------------------------------------------------


def _record(facts: dict, chaos: dict, path: Path = RECORD_PATH) -> None:
    payload = {
        "benchmark": "benchmarks/bench_tuning.py",
        "description": (
            "Trace-driven offline autotuning: successive halving over "
            "SchedulerConfig space in the virtual-time simulator.  The "
            "config tuned on multi_tenant strictly beats the default on "
            "every zoo scenario (gated on multi_tenant + adversarial); "
            "the run is byte-deterministic per (trace, space, seed); and "
            "tuning with the bursts_faulty fault plan injected beats the "
            "default under the same chaos with supervision + retries on"
        ),
        "tuning": facts,
        "chaos": chaos,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="recompute the tuning facts and assert the committed record",
    )
    args = parser.parse_args(argv)
    model = _model()
    facts = tuning_facts(model)
    chaos = chaos_tuning_facts(model)
    test_tuned_beats_default(facts)
    test_tuner_is_deterministic(facts)
    test_chaos_tuning(chaos)
    if args.smoke:
        test_matches_record(facts, chaos)
        print("smoke OK")
        return 0
    _record(facts, chaos)
    print(f"wrote {RECORD_PATH}")
    row = facts["scenarios"]
    for name in sorted(row):
        gate = " (gated)" if name in MUST_BEAT else ""
        print(
            f"  {name:14s} miss {row[name]['default_miss_rate']:.4f} -> "
            f"{row[name]['tuned_miss_rate']:.4f}  goodput "
            f"{row[name]['default_goodput_rps']:7.1f} -> "
            f"{row[name]['tuned_goodput_rps']:7.1f} req/s{gate}"
        )
    print(
        f"  chaos ({chaos['scenario']}): miss "
        f"{chaos['default_miss_rate']:.4f} -> {chaos['tuned_miss_rate']:.4f} "
        f"(supervise={chaos['supervise']}, retry={chaos['retry']})"
    )
    print(
        f"  determinism: byte_identical={facts['byte_identical']} over "
        f"{facts['evaluations']} simulations x 2 runs"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
