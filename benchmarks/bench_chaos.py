"""Self-healing under chaos: the PR-9 acceptance benchmark.

Three parts, all driven by the scripted incidents in
:mod:`repro.faults.scenarios`:

1. **Live incident** — ``bursts_faulty`` replayed against a real
   four-replica *process* pool with ``supervise=True``: replicas 1 and 2
   are SIGKILLed mid-burst and replica 3 stalls for a window.  The
   supervised frontend must lose **zero** requests, the supervisor must
   respawn every crashed worker (no tripped restart budget), and the
   pool must return to full capacity; the crash-to-rejoin time is
   recorded against ``RECOVERY_BOUND_S``.  Wall-clock recovery time is
   machine-dependent, so CI gates the *facts* (zero lost, respawns,
   full capacity back) — never the seconds.

2. **Deterministic chaos simulation** — the same incident through
   :meth:`~repro.trace.replay.TraceReplayer.simulate` (virtual time):
   two runs must produce byte-identical artifacts, and the outcome
   counts are recorded for exact recompute in CI.

3. **Brown-out comparison** — ``multi_tenant_faulty`` on two replicas,
   with and without a :class:`~repro.faults.policy.BrownoutPolicy`.
   Shedding sheddable (low-priority) traffic must yield a *strictly
   lower* critical-priority miss rate than serving everyone — the
   degrade-don't-fail fact, deterministic in the simulator.

Run directly for the acceptance record::

    PYTHONPATH=src python benchmarks/bench_chaos.py

or for the CI smoke (asserts against the committed record)::

    PYTHONPATH=src python benchmarks/bench_chaos.py --smoke
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from repro.faults.injector import FaultInjector
from repro.faults.policy import BrownoutPolicy, RetryPolicy
from repro.faults.scenarios import FAULTY_REPLICAS, faulty_replayer
from repro.models import build_model
from repro.scheduler.admission import CRITICAL_PRIORITY
from repro.scheduler.frontend import SchedulerConfig, ServingFrontend
from repro.trace.recorder import LATE, LOST, OK, REJECTED, TraceRecorder
from repro.trace.replay import payload_for, sla_for, summarize_outcomes
from repro.trace.tracer import EVENT_FAULT, EVENT_RESPAWN, Tracer
from repro.runtime.batching import DeadlineExceeded
from repro.utils import make_rng

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_chaos.json"

LIVE_SCENARIO = "bursts_faulty"
BROWNOUT_SCENARIO = "multi_tenant_faulty"
BROWNOUT_REPLICAS = 2
BROWNOUT_POLICY = BrownoutPolicy(enter_queue_depth=8, exit_queue_depth=2)

#: Crash-to-last-rejoin bound the record asserts (recording machine only).
RECOVERY_BOUND_S = 10.0
#: How long the bench waits for the pool to heal after the trace drains.
RECOVERY_TIMEOUT_S = 30.0


def _model():
    return build_model("fluid", rng=make_rng(0))


# -- live incident ------------------------------------------------------------


def _drive_open_loop(frontend, replayer, net):
    """Submit every spec at its arrival offset; return outcome records."""
    specs = replayer.specs
    payloads = [payload_for(s, net) for s in specs]
    records = [
        {
            "request_id": s.request_id,
            "arrival_s": s.arrival_s,
            "outcome": LOST,
            "width": None,
            "latency_s": None,
        }
        for s in specs
    ]
    done = threading.Event()
    remaining = [len(specs)]
    lock = threading.Lock()

    def _finish(index, submit_t, future):
        now = time.monotonic()
        record, spec = records[index], specs[index]
        exc = future.exception()
        if exc is None:
            record["latency_s"] = now - submit_t
            record["outcome"] = (
                OK if record["latency_s"] <= spec.deadline_s else LATE
            )
        else:
            record["outcome"] = (
                REJECTED if isinstance(exc, DeadlineExceeded) else LOST
            )
        with lock:
            remaining[0] -= 1
            if remaining[0] == 0:
                done.set()

    start = time.monotonic()
    for index, spec in enumerate(specs):
        delay = (start + spec.arrival_s) - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        submit_t = time.monotonic()
        future = frontend.submit(payloads[index], sla_for(spec), spec=spec)
        future.add_done_callback(lambda f, i=index, t=submit_t: _finish(i, t, f))
    if not done.wait(timeout=120.0):
        raise RuntimeError(f"chaos drive did not drain: {remaining[0]} unresolved")
    return records


def live_chaos_facts(model=None) -> dict:
    """The acceptance incident against a real supervised process pool."""
    model = model or _model()
    net = getattr(model, "net", model)
    replayer = faulty_replayer(LIVE_SCENARIO)
    tracer = Tracer(sampling=1.0)
    config = SchedulerConfig(
        replicas=FAULTY_REPLICAS,
        replica_backend="process",
        supervise=True,
        retry_policy=RetryPolicy(),
    )
    frontend = ServingFrontend(model, config, tracer=tracer)
    injector = FaultInjector(frontend, replayer.faults)
    try:
        injector.start()
        records = _drive_open_loop(frontend, replayer, net)
        # The trace drained; now wait (bounded) for the supervisor to
        # finish returning crashed workers to routing.
        recovered = False
        deadline = time.monotonic() + RECOVERY_TIMEOUT_S
        while time.monotonic() < deadline:
            if len(frontend.pool.healthy()) == FAULTY_REPLICAS:
                recovered = True
                break
            time.sleep(0.01)
        report = frontend.report()
    finally:
        injector.stop()
        frontend.close()
    events = tracer.events()
    crash_t = [
        e.t_s for e in events
        if e.kind == EVENT_FAULT and e.data.get("fault") == "crash"
    ]
    respawn_t = [e.t_s for e in events if e.kind == EVENT_RESPAWN]
    recovery_s = (
        max(respawn_t) - min(crash_t) if respawn_t and crash_t else None
    )
    summary = summarize_outcomes(records, replayer.duration_s)
    supervisor = report["supervisor"]
    return {
        "scenario": LIVE_SCENARIO,
        "replicas": FAULTY_REPLICAS,
        "backend": "process",
        "faults": replayer.faults.to_json(),
        "requests": summary["requests"],
        "outcomes": summary["outcomes"],
        "lost": summary["lost"],
        "miss_rate": summary["miss_rate"],
        "goodput_rps": summary["goodput_rps"],
        "crashes": len(crash_t),
        "respawns": supervisor["respawns"],
        "gave_up": supervisor["gave_up"],
        "recovered_full_capacity": recovered,
        "recovery_s": recovery_s,
        "recovery_bound_s": RECOVERY_BOUND_S,
        "recovery_within_bound": (
            recovery_s is not None and recovery_s <= RECOVERY_BOUND_S
        ),
    }


# -- deterministic chaos simulation -------------------------------------------


def sim_chaos_facts(model=None) -> dict:
    """The same incident in virtual time: byte-determinism + outcome facts."""
    model = model or _model()
    config = SchedulerConfig(replicas=FAULTY_REPLICAS, warmup=False)
    dumps, result = [], None
    for _ in range(2):
        replayer = faulty_replayer(LIVE_SCENARIO)
        recorder = TraceRecorder(kind="simulated", meta=replayer.meta)
        result = replayer.simulate(model, config, recorder=recorder)
        dumps.append(recorder.dumps())
    return {
        "scenario": LIVE_SCENARIO,
        "replicas": FAULTY_REPLICAS,
        "requests": result["requests"],
        "outcomes": result["outcomes"],
        "lost": result["lost"],
        "miss_rate": result["miss_rate"],
        "goodput_rps": result["goodput_rps"],
        "byte_identical": dumps[0] == dumps[1],
    }


# -- brown-out comparison -----------------------------------------------------


def _critical_miss_rate(replayer, result) -> float:
    critical = {
        s.request_id for s in replayer.specs
        if s.priority >= CRITICAL_PRIORITY
    }
    records = [r for r in result["records"] if r["request_id"] in critical]
    misses = sum(1 for r in records if r["outcome"] != OK)
    return misses / len(records) if records else 0.0


def brownout_facts(model=None) -> dict:
    """Brown-out vs serve-everyone on the grey-failure incident (sim)."""
    model = model or _model()

    def _run(brownout):
        replayer = faulty_replayer(BROWNOUT_SCENARIO)
        config = SchedulerConfig(
            replicas=BROWNOUT_REPLICAS, warmup=False, brownout=brownout
        )
        result = replayer.simulate(model, config)
        return {
            "critical_miss_rate": _critical_miss_rate(replayer, result),
            "miss_rate": result["miss_rate"],
            "outcomes": result["outcomes"],
            "lost": result["lost"],
        }

    baseline = _run(None)
    browned = _run(BROWNOUT_POLICY)
    return {
        "scenario": BROWNOUT_SCENARIO,
        "replicas": BROWNOUT_REPLICAS,
        "policy": {
            "enter_queue_depth": BROWNOUT_POLICY.enter_queue_depth,
            "exit_queue_depth": BROWNOUT_POLICY.exit_queue_depth,
        },
        "baseline": baseline,
        "brownout": browned,
        "critical_miss_improvement": (
            baseline["critical_miss_rate"] - browned["critical_miss_rate"]
        ),
    }


# -- smoke assertions ---------------------------------------------------------


def test_sim_chaos_matches_record(model=None):
    """Committed sim facts (chaos + brown-out) recompute exactly."""
    record = json.loads(RECORD_PATH.read_text())
    facts = sim_chaos_facts(model)
    for key, value in facts.items():
        assert record["sim"][key] == value, (
            f"sim.{key}: committed {record['sim'][key]!r} != recomputed "
            f"{value!r} — fault-aware simulation drifted"
        )
    brown = brownout_facts(model)
    for key, value in brown.items():
        assert record["brownout"][key] == value, (
            f"brownout.{key}: committed {record['brownout'][key]!r} != "
            f"recomputed {value!r}"
        )


def test_sim_chaos_is_deterministic(model=None):
    facts = sim_chaos_facts(model)
    assert facts["byte_identical"], "fault-aware simulation is not deterministic"
    assert facts["lost"] == 0, (
        f"sim incident lost {facts['lost']} requests (must be 0)"
    )


def test_brownout_spares_critical_traffic(model=None):
    facts = brownout_facts(model)
    assert (
        facts["brownout"]["critical_miss_rate"]
        < facts["baseline"]["critical_miss_rate"]
    ), (
        f"brown-out critical miss {facts['brownout']['critical_miss_rate']:.4f} "
        f"not below baseline {facts['baseline']['critical_miss_rate']:.4f}"
    )


def test_live_chaos(model=None):
    """Zero lost + every crashed worker respawned + full capacity back."""
    facts = live_chaos_facts(model)
    assert facts["lost"] == 0, (
        f"supervised frontend lost {facts['lost']} requests: {facts['outcomes']}"
    )
    assert facts["crashes"] == 2, f"expected 2 crash injections: {facts}"
    assert facts["respawns"] >= facts["crashes"], (
        f"supervisor respawned {facts['respawns']} < {facts['crashes']} crashes"
    )
    assert facts["gave_up"] == [], (
        f"restart budget tripped for replicas {facts['gave_up']}"
    )
    assert facts["recovered_full_capacity"], (
        f"pool never returned to {facts['replicas']} healthy replicas"
    )
    assert sum(facts["outcomes"].values()) == facts["requests"]
    return facts


# -- driver -------------------------------------------------------------------


def _record(live: dict, sim: dict, brownout: dict, path: Path = RECORD_PATH) -> None:
    payload = {
        "benchmark": "benchmarks/bench_chaos.py",
        "description": (
            "Self-healing under scripted chaos: the bursts_faulty incident "
            "(2 of 4 process replicas SIGKILLed mid-burst, a third stalled) "
            "loses zero requests under a supervised frontend and recovers "
            "full capacity; the same incident simulates byte-identically in "
            "virtual time; brown-out shedding yields a strictly lower "
            "critical-priority miss rate than serving everyone"
        ),
        "live": live,
        "sim": sim,
        "brownout": brownout,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="assert sim determinism + committed record facts + the live incident",
    )
    args = parser.parse_args(argv)
    model = _model()
    if args.smoke:
        test_sim_chaos_is_deterministic(model)
        test_sim_chaos_matches_record(model)
        test_brownout_spares_critical_traffic(model)
        test_live_chaos(model)
        print("smoke OK")
        return 0
    sim = sim_chaos_facts(model)
    brownout = brownout_facts(model)
    live = test_live_chaos(model)
    _record(live, sim, brownout)
    print(f"wrote {RECORD_PATH}")
    print(
        f"  live  {live['requests']:4d} requests  lost {live['lost']}  "
        f"respawns {live['respawns']}/{live['crashes']} crashes  "
        f"recovery {live['recovery_s']:.2f}s "
        f"(bound {live['recovery_bound_s']:.0f}s: "
        f"{'OK' if live['recovery_within_bound'] else 'OVER'})"
    )
    print(
        f"  sim   {sim['requests']:4d} requests  lost {sim['lost']}  "
        f"byte-identical {sim['byte_identical']}"
    )
    print(
        f"  brown-out critical miss "
        f"{brownout['brownout']['critical_miss_rate']:.4f} vs baseline "
        f"{brownout['baseline']['critical_miss_rate']:.4f} "
        f"(improvement {brownout['critical_miss_improvement']:+.4f})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
