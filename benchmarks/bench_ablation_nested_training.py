"""Ablation: nested incremental training vs the naive alternatives.

Algorithm 1 shares one weight store between the base family and the upper
models, reconciling them with iterated fine-tuning.  The two naive
alternatives it beats are both measured here:

* **Dynamic-only** (no upper phase): the upper slices stay at chance, so
  the Worker can never survive a Master failure — reliability lost.
* **Disjoint uppers** (a separate standalone model for the Worker, on its
  own weights): reliability works, but the Worker must now store its
  partition rows *plus* the extra model — beyond the paper's device memory
  budget, and the extra weights contribute nothing to the combined
  75%/100% models.

Fluid training keeps both properties in one weight store.
"""

import pytest

from repro.data import SynthMNISTConfig, load_synth_mnist
from repro.device import subnet_param_count
from repro.device.profiles import jetson_nx_worker
from repro.models import build_model
from repro.training import (
    IncrementalTrainer,
    NestedIncrementalTrainer,
    NestedTrainConfig,
    TrainConfig,
)
from repro.utils import make_rng

DATA = SynthMNISTConfig(num_train=2500, num_test=600, seed=2)
STAGE = TrainConfig(epochs=1, lr=0.05)


@pytest.fixture(scope="module")
def ablation_results():
    train_set, test_set = load_synth_mnist(DATA)
    results = {}

    # (a) Full Algorithm 1.
    fluid = build_model("fluid", rng=make_rng(0))
    NestedIncrementalTrainer().fit(
        fluid, train_set, NestedTrainConfig(base=STAGE, niters=2), rng=make_rng(1)
    )
    results["fluid"] = fluid.evaluate_all(test_set)
    results["fluid_model"] = fluid

    # (b) Dynamic-only: same budget, no upper phase.
    dynamic = build_model("dynamic", rng=make_rng(0))
    trainer = IncrementalTrainer()
    for i in range(2):
        trainer.fit(
            dynamic, train_set, STAGE.scaled_lr(0.5**i), rng=make_rng(1),
            stage_prefix=f"iter{i}/",
        )
    results["dynamic_only"] = dynamic.evaluate_all(test_set)
    results["dynamic_model"] = dynamic
    return results


def test_fluid_keeps_uppers_and_combined(benchmark, ablation_results):
    accs = benchmark(lambda: ablation_results["fluid"])
    assert accs["upper50"] > 0.7
    assert accs["lower100"] > 0.9


def test_dynamic_only_loses_reliability(benchmark, ablation_results):
    """Without the nested phase the upper slice is useless — the Fig. 1c
    failure is a training-procedure property, not bad luck."""
    accs = benchmark(lambda: ablation_results["dynamic_only"])
    assert accs["upper50"] < 0.3
    assert accs["lower100"] > 0.9  # combined quality was never the issue


def test_disjoint_uppers_break_the_memory_budget(benchmark, ablation_results):
    """The naive fix for Dynamic's reliability gap — give the Worker its own
    separate standalone model next to its partition rows — does not fit the
    device: partition rows (~half the full model) plus a standalone 50%
    model exceed the worker's capacity, while the Fluid worker's rows ARE
    its standalone model (zero extra parameters)."""
    fluid = ablation_results["fluid_model"]
    net = fluid.net

    def footprints():
        full = subnet_param_count(net, net.width_spec.full())
        standalone_50 = subnet_param_count(net, net.width_spec.find("upper50"))
        partition_rows = full // 2  # the worker's share of the joint model
        return {
            "disjoint_worker": partition_rows + standalone_50,
            "fluid_worker": partition_rows,
            "capacity": jetson_nx_worker().memory_capacity_params,
        }

    result = benchmark(footprints)
    assert result["fluid_worker"] <= result["capacity"]
    assert result["disjoint_worker"] > result["capacity"]
