"""Benchmark fixtures.

The trained-model fixture uses the full-fidelity recipe (the one
EXPERIMENTS.md records); it takes a few minutes once per benchmark session.
"""

from __future__ import annotations

import pytest

from repro.data import SynthMNISTConfig, load_synth_mnist
from repro.slimmable import SlimmableConvNet, paper_width_spec
from repro.training import RecipeConfig, TrainConfig, train_family
from repro.utils import make_rng

FIG2_DATA = SynthMNISTConfig(num_train=4000, num_test=1000, seed=0)
FIG2_RECIPE = RecipeConfig(
    stage=TrainConfig(epochs=1, batch_size=64, lr=0.05, momentum=0.9),
    niters=2,
)
FIG2_SEED = 7


@pytest.fixture(scope="session")
def fig2_data():
    return load_synth_mnist(FIG2_DATA)


@pytest.fixture(scope="session")
def fig2_models(fig2_data):
    """All three families trained at full fidelity (several minutes, once)."""
    train_set, _ = fig2_data
    models = {}
    for family in ("static", "dynamic", "fluid"):
        models[family], _ = train_family(
            family, train_set, rng=make_rng(FIG2_SEED), config=FIG2_RECIPE
        )
    return models


@pytest.fixture(scope="session")
def bench_net():
    """An untrained paper-architecture net (throughput benches need only shape)."""
    return SlimmableConvNet(paper_width_spec(), rng=make_rng(0))
