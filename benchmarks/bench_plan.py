"""Compiled inference plans vs the eager serving path, per conv backend.

The PR-4/PR-5 acceptance benchmark.  The serving workload — micro-batches
at every certified sub-network width — is driven single-stream through
the eager :class:`~repro.engine.session.InferenceSession` path (per-call
slice/cast/allocate) and through compiled
:class:`~repro.nn.plan.InferencePlan` objects, once per **convolution
backend** (``im2col`` / ``im2col-blocked`` / ``shifted-gemm``).  The
report — per-(backend, width, batch) throughput, per-backend overall
speedup, the shifted-vs-default ratio at the widest width, tracemalloc
steady-state allocations, and the batch-rows ladder's per-rung arena
footprint — is recorded to ``BENCH_plan.json``.

Functional facts asserted on every run (CI smoke included):

* exact backends (``im2col``, ``im2col-blocked``) are **bitwise
  identical** to the eager path at every width;
* ``shifted-gemm`` is allclose within
  :data:`~repro.nn.functional.SHIFTED_GEMM_TOLERANCE` (relaxed contract:
  its kernel-column reduction is re-associated);
* steady-state allocations stay under a small fixed budget;
* a :class:`~repro.nn.plan.PlanLadder` dispatches each batch to the
  smallest rung that fits, and a batch outside *every* rung falls back
  to the eager path through :class:`InferenceSession` (no plan arena is
  touched).

Wall-clock speedup varies on shared runners, so CI gates it only when
``REPRO_MIN_PLAN_SPEEDUP`` is set (local acceptance runs use 1.5 overall
for the default backend and 1.3 for shifted-gemm vs default at the
widest width).

Run directly for the acceptance record::

    PYTHONPATH=src python benchmarks/bench_plan.py

or as the CI smoke (same code paths, smaller grid, no record written)::

    PYTHONPATH=src python -m pytest benchmarks/bench_plan.py -q
    PYTHONPATH=src python benchmarks/bench_plan.py --smoke
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.engine.session import InferenceSession
from repro.models import build_model
from repro.nn import functional as F
from repro.nn.functional import CONV_BACKENDS
from repro.nn.plan import compile_plan_ladder, compile_width_plans
from repro.utils import make_rng
from repro.utils.dtypes import DtypePolicy, dtype_policy

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_plan.json"

#: Steady-state allocation ceiling per plan request (bytes); the plan's
#: only per-run allocation is the returned logits copy plus interpreter
#: noise — the eager path allocates hundreds of kilobytes per call.
ALLOC_BUDGET_BYTES = 16 * 1024

WIDTHS = ("lower25", "lower50", "lower75", "lower100")
WIDEST = WIDTHS[-1]

#: Acceptance floors for the full (non-smoke) run.  The default-vs-eager
#: floor was 1.5 when plans were recorded against the PR-4 eager path;
#: porting the pairwise maxpool fold to eager inference (this PR) made
#: the baseline itself much faster, so the plan's remaining edge is the
#: allocation-free arenas + packed weights — strongest at small batches.
MIN_DEFAULT_SPEEDUP = 1.15       # default backend vs eager, overall
MIN_SHIFTED_VS_DEFAULT = 1.3     # shifted-gemm vs im2col plan, widest width


def _throughput(run, x, iters: int) -> float:
    """Single-stream rows/second of ``run`` over ``iters`` calls."""
    run(x)  # warm
    started = time.perf_counter()
    for _ in range(iters):
        run(x)
    elapsed = time.perf_counter() - started
    return iters * x.shape[0] / elapsed


def _alloc_per_request(run, x, runs: int = 20) -> float:
    """tracemalloc peak bytes per request at steady state."""
    run(x)  # warm (arenas + packed cache)
    tracemalloc.start()
    for _ in range(runs):
        run(x)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak / runs


def check_contract(plan, plan_out: np.ndarray, eager_out: np.ndarray, where: str) -> None:
    """Assert the plan's equality contract: bitwise when ``plan.exact``,
    else allclose within the shifted-GEMM tolerance table."""
    if plan.exact:
        if not np.array_equal(plan_out, eager_out):
            raise AssertionError(f"{plan.conv_backend} diverged bitwise at {where}")
    else:
        tol = F.shifted_gemm_tolerance(plan.dtype)
        if not np.allclose(plan_out, eager_out, **tol):
            worst = np.abs(plan_out - eager_out).max()
            raise AssertionError(
                f"{plan.conv_backend} outside tolerance {tol} at {where} "
                f"(max abs err {worst:.3e})"
            )


def run_plan_comparison(
    *,
    backends=CONV_BACKENDS,
    batches=(1, 4, 16),
    iters: int = 200,
    policy: DtypePolicy = None,
) -> dict:
    """Eager vs compiled plans over the backend x width x batch grid.

    Every (backend, width, batch) cell asserts its equality contract
    against the same eager output before it is timed, so a recorded grid
    is also a verified one.
    """
    policy = policy or DtypePolicy.fast_inference()
    model = build_model("fluid", rng=make_rng(0))
    rng = make_rng(1)
    # One shared input per (width, batch) cell so backend columns are
    # directly comparable.
    inputs = {
        (width, batch): rng.standard_normal((batch, 1, 28, 28))
        for width in WIDTHS
        for batch in batches
    }
    report: dict = {"dtype_policy": policy.inference, "backends": {}}
    with dtype_policy(policy):
        sessions = {w: InferenceSession(model, w) for w in WIDTHS}
        eager_out = {key: sessions[key[0]].run(x) for key, x in inputs.items()}
        eager_rps = {
            key: _throughput(sessions[key[0]].run, x, iters)
            for key, x in inputs.items()
        }
        for backend in backends:
            plans = compile_width_plans(
                model, list(WIDTHS), batch_rows=max(batches), conv_backend=backend
            )
            grid = []
            eager_total = plan_total = 0.0
            for (width, batch), x in inputs.items():
                plan = plans[width]
                check_contract(plan, plan.run(x), eager_out[(width, batch)],
                               f"{width}, batch {batch}")
                plan_rps = _throughput(plan.run, x, iters)
                e_rps = eager_rps[(width, batch)]
                eager_total += iters * batch / e_rps
                plan_total += iters * batch / plan_rps
                grid.append(
                    {
                        "width": width,
                        "batch": batch,
                        "eager_rows_per_s": e_rps,
                        "plan_rows_per_s": plan_rps,
                        "speedup": plan_rps / e_rps,
                    }
                )
            probe = inputs[(WIDEST, max(batches))]
            report["backends"][backend] = {
                "exact": plans[WIDEST].exact,
                "grid": grid,
                "speedup_overall": eager_total / plan_total,
                "alloc_bytes_per_request": _alloc_per_request(plans[WIDEST].run, probe),
            }
        report["eager_alloc_bytes_per_request"] = _alloc_per_request(
            sessions[WIDEST].run, inputs[(WIDEST, max(batches))]
        )
        report["alloc_budget_bytes"] = ALLOC_BUDGET_BYTES
        report["ladder"] = _ladder_report(model, batches)
    default = report["backends"].get("im2col")
    shifted = report["backends"].get("shifted-gemm")
    if default is not None and shifted is not None:
        key = max(batches)
        d_rps = next(
            r["plan_rows_per_s"] for r in default["grid"]
            if r["width"] == WIDEST and r["batch"] == key
        )
        s_rps = next(
            r["plan_rows_per_s"] for r in shifted["grid"]
            if r["width"] == WIDEST and r["batch"] == key
        )
        report["shifted_vs_default_widest"] = s_rps / d_rps
    return report


def _ladder_report(model, batches) -> dict:
    """Compile one ladder at the widest width; record per-rung arenas and
    verify smallest-rung dispatch plus the out-of-rung eager fallback."""
    top = max(batches)
    ladder = compile_plan_ladder(model, WIDEST, batch_rows=top)
    rng = make_rng(2)
    # Every batch lands on the smallest rung that holds it.
    for rows in range(1, top + 1):
        rung = ladder.rung_for(rows)
        assert rung is not None and rung.batch_rows == min(
            r.batch_rows for r in ladder.rungs if rows <= r.batch_rows
        ), f"{rows} rows landed on rung {rung}"
    # A batch larger than every rung is not accepted by the ladder, and an
    # InferenceSession carrying it serves the request through the eager
    # path without touching any rung's arenas.
    oversized = rng.standard_normal((top + 1, 1, 28, 28))
    assert not ladder.accepts(oversized)
    session = InferenceSession(model, WIDEST, plan=ladder)
    checkouts_before = [r.workspaces.checkouts for r in ladder.rungs]
    out = session.run(oversized)
    assert out.shape == (top + 1, 10)
    assert [r.workspaces.checkouts for r in ladder.rungs] == checkouts_before, (
        "oversized request touched a plan arena instead of falling back to eager"
    )
    return {
        "rungs": [r.batch_rows for r in ladder.rungs],
        "arena_bytes_per_rung": ladder.arena_nbytes(),
        "eager_fallback_verified": True,
    }


# -- CI smoke ---------------------------------------------------------------


def test_plan_backends_match_eager_and_stay_in_alloc_budget_smoke():
    """CI smoke: every conv backend's equality contract + the allocation
    budget always; the wall-clock speedup is a hard gate only when
    REPRO_MIN_PLAN_SPEEDUP is set (shared runners are too noisy for an
    unconditional gate), with three attempts before failing."""
    threshold = float(os.environ.get("REPRO_MIN_PLAN_SPEEDUP", "0"))
    last = None
    for _ in range(3):
        report = run_plan_comparison(batches=(1, 8), iters=30)
        last = report
        for backend, stats in report["backends"].items():
            assert stats["alloc_bytes_per_request"] < ALLOC_BUDGET_BYTES, (
                f"{backend} allocates {stats['alloc_bytes_per_request']:.0f} "
                f"B/request (budget {ALLOC_BUDGET_BYTES})"
            )
            assert stats["alloc_bytes_per_request"] < report["eager_alloc_bytes_per_request"]
        assert report["ladder"]["eager_fallback_verified"]
        if report["backends"]["im2col"]["speedup_overall"] >= threshold:
            for backend, stats in report["backends"].items():
                print(
                    f"{backend}: overall {stats['speedup_overall']:.2f}x, "
                    f"{stats['alloc_bytes_per_request']:.0f} B/request"
                )
            return
    raise AssertionError(
        f"plan speedup below {threshold} in 3 attempts: last "
        f"{last['backends']['im2col']['speedup_overall']:.2f}x"
    )


def test_plan_equivalence_float64_smoke():
    """The float64 policy takes the same compiled paths: the grid asserts
    bitwise equality (exact backends) / tight allclose (shifted-gemm)
    internally for every backend."""
    report = run_plan_comparison(batches=(2,), iters=5, policy=DtypePolicy())
    assert report["dtype_policy"] == "float64"
    assert set(report["backends"]) == set(CONV_BACKENDS)


# -- acceptance record -------------------------------------------------------


def _record(report, path=RECORD_PATH) -> None:
    payload = {
        "benchmark": "benchmarks/bench_plan.py",
        "description": (
            "Single-stream serving workload (micro-batches at every certified "
            "width) through the eager per-request path vs compiled "
            "InferencePlans, one grid per conv backend (im2col bitwise-exact "
            "default, cache-blocked im2col, shifted-GEMM allclose); includes "
            "the batch-rows ladder's per-rung arena footprint"
        ),
        **report,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the CI functional assertions on a small grid (no record)",
    )
    parser.add_argument(
        "--conv-backend",
        choices=CONV_BACKENDS,
        action="append",
        dest="backends",
        help="restrict the full run to specific backends (repeatable; "
        "default: all three)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        test_plan_backends_match_eager_and_stay_in_alloc_budget_smoke()
        test_plan_equivalence_float64_smoke()
        print("smoke OK")
        return 0
    report = run_plan_comparison(backends=tuple(args.backends or CONV_BACKENDS))
    default = report["backends"].get("im2col")
    if default is not None and default["speedup_overall"] < MIN_DEFAULT_SPEEDUP:
        raise AssertionError(
            f"acceptance requires >={MIN_DEFAULT_SPEEDUP}x default-backend "
            f"speedup, measured {default['speedup_overall']:.2f}x"
        )
    ratio = report.get("shifted_vs_default_widest")
    if ratio is not None and ratio < MIN_SHIFTED_VS_DEFAULT:
        raise AssertionError(
            f"acceptance requires shifted-gemm >={MIN_SHIFTED_VS_DEFAULT}x the "
            f"default plan at {WIDEST}, measured {ratio:.2f}x"
        )
    _record(report)
    print(f"wrote {RECORD_PATH}")
    for backend, stats in report["backends"].items():
        print(f"{backend} ({'bitwise' if stats['exact'] else 'allclose'}):")
        for row in stats["grid"]:
            print(
                f"  {row['width']:9s} batch {row['batch']:3d}  "
                f"eager {row['eager_rows_per_s']:8.0f} rows/s  "
                f"plan {row['plan_rows_per_s']:8.0f} rows/s  "
                f"{row['speedup']:.2f}x"
            )
        print(
            f"  overall {stats['speedup_overall']:.2f}x; steady-state "
            f"{stats['alloc_bytes_per_request']:.0f} B/request "
            f"(eager {report['eager_alloc_bytes_per_request']:.0f})"
        )
    if ratio is not None:
        print(f"shifted-gemm vs default plan at {WIDEST}: {ratio:.2f}x")
    ladder = report["ladder"]
    arenas = ", ".join(
        f"{rows}: {nbytes / 1024:.0f}KiB"
        for rows, nbytes in ladder["arena_bytes_per_rung"].items()
    )
    print(f"ladder rungs {ladder['rungs']} arena bytes {{{arenas}}}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
