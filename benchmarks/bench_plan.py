"""Compiled inference plans vs the eager per-request serving path.

The PR-4 acceptance benchmark.  The serving workload — micro-batches at
every certified sub-network width — is driven single-stream through the
eager :class:`~repro.engine.session.InferenceSession` path (per-call
slice/cast/allocate) and through a compiled
:class:`~repro.nn.plan.InferencePlan` (packed width-sliced weights,
workspace arenas, fused zero-allocation kernels).  The report — per-width
throughput, overall speedup, and tracemalloc-measured steady-state
allocations per request — is recorded to ``BENCH_plan.json``.

Functional facts asserted on every run (CI smoke included): plan and
eager outputs are **bitwise identical** at every width, and the plan's
steady-state allocations stay under a small fixed budget.  Wall-clock
speedup varies on shared runners, so CI gates it only when
``REPRO_MIN_PLAN_SPEEDUP`` is set (local acceptance runs use 1.5).

Run directly for the acceptance record::

    PYTHONPATH=src python benchmarks/bench_plan.py

or as the CI smoke (same code path, smaller grid, no record written)::

    PYTHONPATH=src python -m pytest benchmarks/bench_plan.py -q
    PYTHONPATH=src python benchmarks/bench_plan.py --smoke
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.engine.session import InferenceSession
from repro.models import build_model
from repro.nn.plan import compile_width_plans
from repro.utils import make_rng
from repro.utils.dtypes import DtypePolicy, dtype_policy

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_plan.json"

#: Steady-state allocation ceiling per plan request (bytes); the plan's
#: only per-run allocation is the returned logits copy plus interpreter
#: noise — the eager path allocates hundreds of kilobytes per call.
ALLOC_BUDGET_BYTES = 16 * 1024

WIDTHS = ("lower25", "lower50", "lower75", "lower100")


def _throughput(run, x, iters: int) -> float:
    """Single-stream rows/second of ``run`` over ``iters`` calls."""
    run(x)  # warm
    started = time.perf_counter()
    for _ in range(iters):
        run(x)
    elapsed = time.perf_counter() - started
    return iters * x.shape[0] / elapsed


def _alloc_per_request(run, x, runs: int = 20) -> float:
    """tracemalloc peak bytes per request at steady state."""
    run(x)  # warm (arenas + packed cache)
    tracemalloc.start()
    for _ in range(runs):
        run(x)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak / runs


def run_plan_comparison(
    *, batches=(1, 4, 16), iters: int = 200, policy: DtypePolicy = None
) -> dict:
    """Eager vs compiled-plan serving over the width x batch grid."""
    policy = policy or DtypePolicy.fast_inference()
    model = build_model("fluid", rng=make_rng(0))
    rng = make_rng(1)
    with dtype_policy(policy):
        plans = compile_width_plans(model, list(WIDTHS), batch_rows=max(batches))
        sessions = {w: InferenceSession(model, w) for w in WIDTHS}
        grid = []
        eager_total = plan_total = 0.0
        for width in WIDTHS:
            for batch in batches:
                x = rng.standard_normal((batch, 1, 28, 28))
                # Functional acceptance fact, asserted on every run: the
                # compiled plan is bitwise identical to the eager path.
                eager_out = sessions[width].run(x)
                plan_out = plans[width].run(x)
                if not np.array_equal(plan_out, eager_out):
                    raise AssertionError(
                        f"plan output diverged from eager at {width}, batch {batch}"
                    )
                eager_rps = _throughput(sessions[width].run, x, iters)
                plan_rps = _throughput(plans[width].run, x, iters)
                eager_total += iters * batch / eager_rps
                plan_total += iters * batch / plan_rps
                grid.append(
                    {
                        "width": width,
                        "batch": batch,
                        "eager_rows_per_s": eager_rps,
                        "plan_rows_per_s": plan_rps,
                        "speedup": plan_rps / eager_rps,
                    }
                )
        probe = rng.standard_normal((max(batches), 1, 28, 28))
        plan_alloc = _alloc_per_request(plans["lower100"].run, probe)
        eager_alloc = _alloc_per_request(sessions["lower100"].run, probe)
    return {
        "dtype_policy": policy.inference,
        "grid": grid,
        "speedup_overall": eager_total / plan_total,
        "alloc_bytes_per_request": {
            "plan": plan_alloc,
            "eager": eager_alloc,
            "budget": ALLOC_BUDGET_BYTES,
        },
    }


# -- CI smoke ---------------------------------------------------------------


def test_plan_matches_eager_and_stays_in_alloc_budget_smoke():
    """CI smoke: bitwise equality + allocation budget always; the
    wall-clock speedup is a hard gate only when REPRO_MIN_PLAN_SPEEDUP is
    set (shared runners are too noisy for an unconditional gate), with
    three attempts before failing."""
    threshold = float(os.environ.get("REPRO_MIN_PLAN_SPEEDUP", "0"))
    last = None
    for _ in range(3):
        report = run_plan_comparison(batches=(1, 8), iters=30)
        last = report
        alloc = report["alloc_bytes_per_request"]
        assert alloc["plan"] < ALLOC_BUDGET_BYTES, (
            f"plan allocates {alloc['plan']:.0f} B/request "
            f"(budget {ALLOC_BUDGET_BYTES})"
        )
        assert alloc["plan"] < alloc["eager"]
        if report["speedup_overall"] >= threshold:
            print(
                f"overall speedup {report['speedup_overall']:.2f}x, "
                f"plan {alloc['plan']:.0f} B/request vs eager {alloc['eager']:.0f}"
            )
            return
    raise AssertionError(
        f"plan speedup below {threshold} in 3 attempts: last "
        f"{last['speedup_overall']:.2f}x"
    )


def test_plan_equivalence_float64_smoke():
    """The float64 policy takes the same compiled path (grid asserts
    bitwise equality internally)."""
    report = run_plan_comparison(batches=(2,), iters=5, policy=DtypePolicy())
    assert report["dtype_policy"] == "float64"


# -- acceptance record -------------------------------------------------------


def _record(report, path=RECORD_PATH) -> None:
    payload = {
        "benchmark": "benchmarks/bench_plan.py",
        "description": (
            "Single-stream serving workload (micro-batches at every certified "
            "width) through the eager per-request path vs a compiled "
            "InferencePlan (packed width-sliced weights, workspace arenas, "
            "fused zero-allocation kernels); outputs bitwise identical"
        ),
        **report,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the CI functional assertions on a small grid (no record)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        test_plan_matches_eager_and_stays_in_alloc_budget_smoke()
        test_plan_equivalence_float64_smoke()
        print("smoke OK")
        return 0
    report = run_plan_comparison()
    if report["speedup_overall"] < 1.5:
        raise AssertionError(
            f"acceptance requires >=1.5x, measured {report['speedup_overall']:.2f}x"
        )
    _record(report)
    print(f"wrote {RECORD_PATH}")
    for row in report["grid"]:
        print(
            f"  {row['width']:9s} batch {row['batch']:3d}  "
            f"eager {row['eager_rows_per_s']:8.0f} rows/s  "
            f"plan {row['plan_rows_per_s']:8.0f} rows/s  "
            f"{row['speedup']:.2f}x"
        )
    alloc = report["alloc_bytes_per_request"]
    print(
        f"  overall speedup {report['speedup_overall']:.2f}x; steady-state "
        f"allocations {alloc['plan']:.0f} B/request (eager {alloc['eager']:.0f})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
