"""Micro-benchmarks of the numpy DNN framework.

These time the primitives the whole reproduction is built on, and assert
the structural facts the cost model relies on (FLOPs scale with width, the
backward pass touches only the active slice, etc.).
"""

import numpy as np
import pytest

from repro.nn import Conv2d, Linear, SoftmaxCrossEntropy
from repro.slimmable import SlimmableConvNet, paper_width_spec
from repro.utils import dtype_policy, make_rng, resolve_dtype_policy


@pytest.fixture(scope="module")
def batch():
    return make_rng(0).standard_normal((64, 1, 28, 28))


def test_conv_forward(benchmark):
    rng = make_rng(1)
    conv = Conv2d(16, 16, 3, padding=1, rng=rng)
    x = rng.standard_normal((64, 16, 14, 14))
    y = benchmark(conv.forward, x)
    assert y.shape == (64, 16, 14, 14)


def test_conv_backward(benchmark):
    rng = make_rng(2)
    conv = Conv2d(16, 16, 3, padding=1, rng=rng)
    x = rng.standard_normal((64, 16, 14, 14))
    y = conv(x)
    g = rng.standard_normal(y.shape)

    def run():
        conv.zero_grad()
        return conv.backward(g)

    grad = benchmark(run)
    assert grad.shape == x.shape


def test_linear_forward(benchmark):
    rng = make_rng(3)
    lin = Linear(784, 10, rng=rng)
    x = rng.standard_normal((256, 784))
    y = benchmark(lin.forward, x)
    assert y.shape == (256, 10)


def test_loss_forward_backward(benchmark):
    rng = make_rng(4)
    logits = rng.standard_normal((256, 10))
    labels = rng.integers(0, 10, 256)
    loss_fn = SoftmaxCrossEntropy()
    loss, grad = benchmark(loss_fn, logits, labels)
    assert np.isfinite(loss)
    assert grad.shape == logits.shape


@pytest.mark.parametrize("subnet", ["lower25", "lower50", "lower100", "upper50"])
def test_subnet_forward(benchmark, batch, subnet):
    net = SlimmableConvNet(paper_width_spec(), rng=make_rng(5))
    view = net.view(net.width_spec.find(subnet))
    view.train(False)
    logits = benchmark(view.forward, batch)
    assert logits.shape == (64, 10)


@pytest.mark.parametrize("policy", ["float64", "float32"])
def test_full_inference_dtype_policy(benchmark, policy):
    """The headline dtype-policy comparison: full-width inference under the
    float64 baseline vs the float32 fast path (same weights, same input)."""
    net = SlimmableConvNet(paper_width_spec(), rng=make_rng(7))
    view = net.view(net.width_spec.find("lower100"))
    view.train(False)
    x = make_rng(8).standard_normal((256, 1, 28, 28))
    with dtype_policy(resolve_dtype_policy(policy)):
        logits = benchmark(view.forward, x)
    assert logits.shape == (256, 10)
    assert logits.dtype == np.dtype(policy)


def test_float32_policy_speedup():
    """The float32 inference fast path must measurably beat float64.

    Typical BLAS gives ~2x; the recorded acceptance number lives in
    BENCH_dtype_policy.json.  The hard gate here defaults to a slacker
    1.2x so shared CI runners don't flake, and can be tightened via
    REPRO_MIN_DTYPE_SPEEDUP for local acceptance runs.
    """
    import os
    import time

    threshold = float(os.environ.get("REPRO_MIN_DTYPE_SPEEDUP", "1.2"))

    net = SlimmableConvNet(paper_width_spec(), rng=make_rng(9))
    view = net.view(net.width_spec.find("lower100"))
    view.train(False)
    x = make_rng(10).standard_normal((256, 1, 28, 28))

    def time_policy(policy, reps=5):
        with dtype_policy(resolve_dtype_policy(policy)):
            view(x)  # warm-up: casts + allocator
            start = time.perf_counter()
            for _ in range(reps):
                view(x)
            return (time.perf_counter() - start) / reps

    t64 = time_policy("float64")
    t32 = time_policy("float32")
    assert t64 / t32 >= threshold, f"float32 speedup only {t64 / t32:.2f}x"


def test_subnet_forward_scales_with_width(benchmark, batch):
    """Wall-clock sanity behind the latency model: the 25% sub-network's
    forward pass is measurably cheaper than the 100% one."""
    import time

    net = SlimmableConvNet(paper_width_spec(), rng=make_rng(6))
    small = net.view(net.width_spec.find("lower25"))
    full = net.view(net.width_spec.find("lower100"))
    small.train(False)
    full.train(False)

    def time_view(view, reps=5):
        start = time.perf_counter()
        for _ in range(reps):
            view(batch)
        return time.perf_counter() - start

    t_small = benchmark(time_view, small)
    t_full = time_view(full)
    assert t_full > t_small
