"""Compiled vs eager distributed execution over the Fig. 2 scenarios.

The PR-7 acceptance benchmark.  Every Fig. 2 serving scenario — solo,
High-Throughput, High-Accuracy — is re-run on the unified engine over
in-process endpoints, the in-process wire protocol (InProcChannel), and a
real TCP subprocess worker, eager vs compiled (``compiled=True`` routes the
HA rounds through :class:`~repro.engine.dist_plan.DevicePartitionPlan` with
delta halo exchange).  Functional facts measured alongside the wall-clock:

* **bitwise parity**: compiled logits equal eager logits exactly, on every
  transport;
* **delta halos**: the compiled path ships strictly fewer engine-boundary
  activation bytes per round (the last conv round ships none at all);
* **zero steady-state allocation**: after warmup, no new plans are
  compiled and no new arenas are allocated — batches only check
  workspaces out and back in.

The wall-clock gate is the paper's serving regime: Fig. 2 drives single
images, so acceptance is compiled >= 1.3x eager on in-process HA at batch
1 (larger batches are GEMM-bound and converge; they are recorded, not
gated).  ``--smoke`` asserts only the functional facts unless
``REPRO_MIN_DIST_SPEEDUP`` is set (shared CI runners are too noisy for an
unconditional wall-clock gate).

Run directly for the acceptance record::

    PYTHONPATH=src python benchmarks/bench_dist_plan.py

or the CI functional check::

    PYTHONPATH=src python benchmarks/bench_dist_plan.py --smoke
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.comm import InProcChannel
from repro.device import EmulatedDevice, jetson_nx_master, jetson_nx_worker
from repro.distributed import LocalCluster, MasterRuntime, WorkerServer
from repro.distributed.multidevice import MultiDeviceRuntime
from repro.engine import BlockPartition
from repro.slimmable import SlimmableConvNet, paper_width_spec
from repro.utils import make_rng

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_dist_plan.json"
SPLIT = 8
SEED = 0
ACCEPTANCE_THRESHOLD = 1.3


def _net() -> SlimmableConvNet:
    return SlimmableConvNet(paper_width_spec(), rng=make_rng(SEED))


def _batch(n: int, seed: int = 42) -> np.ndarray:
    return make_rng(seed).standard_normal((n, 1, 28, 28))


def _median_ms(fn: Callable[[], object], trials: int, warmup: int = 10) -> float:
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(trials):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return float(np.median(times)) * 1e3


def _paired_ms(
    a: Callable[[], object],
    b: Callable[[], object],
    trials: int,
    chunks: int = 5,
) -> tuple:
    """Noise-robust A/B timing: alternate chunks, min-of-medians per side.

    Interleaving the two sides cancels slow machine-state drift (frequency
    scaling, cache pressure from earlier measurements) that a single long
    back-to-back pass folds entirely into whichever side ran second.
    """
    per_chunk = max(trials // chunks, 10)
    medians_a, medians_b = [], []
    for _ in range(chunks):
        medians_a.append(_median_ms(a, per_chunk, warmup=5))
        medians_b.append(_median_ms(b, per_chunk, warmup=5))
    return min(medians_a), min(medians_b)


# -- runtimes over the three endpoint transports ------------------------------


def _multidevice(net: SlimmableConvNet, *, compiled: bool) -> MultiDeviceRuntime:
    return MultiDeviceRuntime(
        net,
        [jetson_nx_master(), jetson_nx_worker()],
        BlockPartition.two_way(SPLIT, net.width_spec.max_width),
        compiled=compiled,
    )


class _InProcMaster:
    """MasterRuntime + served WorkerServer over an in-process channel."""

    def __init__(self, net: SlimmableConvNet, *, compiled: bool) -> None:
        chan = InProcChannel()
        server = WorkerServer(
            EmulatedDevice(jetson_nx_worker(), net), chan.b, partition_split=SPLIT
        )
        self._thread = threading.Thread(target=server.serve_forever, daemon=True)
        self._thread.start()
        self.runtime = MasterRuntime(
            EmulatedDevice(jetson_nx_master(), net),
            chan.a,
            partition_split=SPLIT,
            compiled=compiled,
        )

    def __enter__(self) -> MasterRuntime:
        return self.runtime

    def __exit__(self, *exc) -> None:
        self.runtime.shutdown_worker()
        self._thread.join(timeout=5.0)


# -- measurements -------------------------------------------------------------


def measure_inprocess(batch_sizes=(1, 4, 16), trials: int = 300) -> Dict:
    """Fig. 2 over pure in-process endpoints: solo, HT, and eager-vs-compiled HA."""
    net = _net()
    out: Dict[str, object] = {}
    rt = _multidevice(net, compiled=False)
    try:
        x = _batch(8)
        out["solo_ms"] = _median_ms(lambda: rt.run_ht(x, alive=[0]), trials // 2)
        out["ht_ms"] = _median_ms(lambda: rt.run_ht(x), trials // 2)
    finally:
        rt.engine.shutdown()

    ha: Dict[str, Dict[str, float]] = {}
    parity = True
    exchange: Dict[str, List[int]] = {}
    for rows in batch_sizes:
        x = _batch(rows)
        eager = _multidevice(net, compiled=False)
        compiled = _multidevice(net, compiled=True)
        try:
            eager_ms, compiled_ms = _paired_ms(
                lambda: eager.run_ha(x), lambda: compiled.run_ha(x), trials
            )
            parity = parity and bool(
                np.array_equal(eager.run_ha(x), compiled.run_ha(x))
            )
            if rows == batch_sizes[0]:
                exchange = {
                    "eager_per_round": [int(b) for b in eager.engine.last_exchange_bytes],
                    "compiled_per_round": [
                        int(b) for b in compiled.engine.last_exchange_bytes
                    ],
                }
                out["overlap_ewma"] = float(
                    compiled.engine.metrics.ewma("round.overlap").value
                )
                out["zero_alloc"] = measure_zero_alloc(compiled, x)
            ha[str(rows)] = {
                "eager_ms": eager_ms,
                "compiled_ms": compiled_ms,
                "speedup": eager_ms / compiled_ms,
            }
        finally:
            eager.engine.shutdown()
            compiled.engine.shutdown()
    out["ha"] = ha
    out["parity"] = parity
    e, c = exchange["eager_per_round"], exchange["compiled_per_round"]
    exchange["reduction"] = 1.0 - sum(c) / sum(e)
    out["exchange_bytes"] = exchange
    return out


def measure_zero_alloc(rt: MultiDeviceRuntime, x: np.ndarray, extra: int = 10) -> Dict:
    """Plans/arenas stable across repeat executes; only checkouts move."""
    endpoints = list(rt.engine.endpoints.values())
    plans = [ep._plan for ep in endpoints]
    plan_counts = [len(ep._compiler) for ep in endpoints]
    created = [p.workspaces.created for p in plans]
    checkouts = [p.workspaces.checkouts for p in plans]
    for _ in range(extra):
        rt.run_ha(x)
    return {
        "plans_stable": all(
            len(ep._compiler) == n for ep, n in zip(endpoints, plan_counts)
        ),
        "arenas_stable": all(
            p.workspaces.created == c for p, c in zip(plans, created)
        ),
        "checkouts_grew": all(
            p.workspaces.checkouts == k + extra for p, k in zip(plans, checkouts)
        ),
    }


def measure_wire(batch_sizes=(1, 8), trials: int = 200) -> Dict:
    """Fig. 2 over the master/worker wire protocol on an in-process channel."""
    net = _net()
    spec_full = net.width_spec.full()
    lower, upper = net.width_spec.find("lower50"), net.width_spec.find("upper50")
    out: Dict[str, object] = {}
    with _InProcMaster(net, compiled=False) as master:
        x = _batch(8)
        out["solo_ms"] = _median_ms(lambda: master.run_local(lower, x), trials // 2)
        out["ht_ms"] = _median_ms(
            lambda: master.run_ht(lower, upper, x, x), trials // 2
        )

    ha: Dict[str, Dict[str, float]] = {}
    parity = True
    for rows in batch_sizes:
        x = _batch(rows)
        with _InProcMaster(net, compiled=False) as eager:
            eager_ms = _median_ms(lambda: eager.run_ha(spec_full, x), trials)
            out_eager = eager.run_ha(spec_full, x)
        with _InProcMaster(net, compiled=True) as compiled:
            compiled_ms = _median_ms(lambda: compiled.run_ha(spec_full, x), trials)
            parity = parity and bool(
                np.array_equal(out_eager, compiled.run_ha(spec_full, x))
            )
        ha[str(rows)] = {
            "eager_ms": eager_ms,
            "compiled_ms": compiled_ms,
            "speedup": eager_ms / compiled_ms,
        }
    out["ha"] = ha
    out["parity"] = parity
    return out


def measure_tcp(trials: int = 60) -> Dict:
    """HA over a real subprocess worker on localhost TCP."""
    net = _net()
    spec_full = net.width_spec.full()
    x = _batch(1)
    with LocalCluster(net, compiled=False) as cluster:
        eager_ms = _median_ms(lambda: cluster.master.run_ha(spec_full, x), trials)
        out_eager = cluster.master.run_ha(spec_full, x)
    with LocalCluster(net, compiled=True) as cluster:
        compiled_ms = _median_ms(lambda: cluster.master.run_ha(spec_full, x), trials)
        parity = bool(np.array_equal(out_eager, cluster.master.run_ha(spec_full, x)))
    return {
        "ha": {
            "1": {
                "eager_ms": eager_ms,
                "compiled_ms": compiled_ms,
                "speedup": eager_ms / compiled_ms,
            }
        },
        "parity": parity,
    }


# -- acceptance record --------------------------------------------------------


def run_benchmark() -> Dict:
    inprocess = measure_inprocess()
    wire = measure_wire()
    tcp = measure_tcp()
    gated = inprocess["ha"]["1"]["speedup"]
    return {
        "cores": len(os.sched_getaffinity(0)),
        "acceptance_threshold": ACCEPTANCE_THRESHOLD,
        "speedup_ha_batch1_inprocess": gated,
        "meets_threshold": gated >= ACCEPTANCE_THRESHOLD,
        "parity": {
            "inprocess": inprocess["parity"],
            "wire_inproc": wire["parity"],
            "tcp": tcp["parity"],
        },
        "exchange_bytes": inprocess["exchange_bytes"],
        "zero_alloc": inprocess["zero_alloc"],
        "overlap_ewma": inprocess["overlap_ewma"],
        "figure2": {"inprocess": inprocess, "wire_inproc": wire, "tcp": tcp},
    }


def _record(report: Dict) -> None:
    payload = {
        "benchmark": "dist_plan",
        "description": (
            "Fig. 2 serving scenarios (solo/HT/HA) re-run eager vs compiled "
            "over in-process endpoints, the InProcChannel wire protocol, and "
            "a TCP subprocess worker; compiled HA uses per-device partition "
            "plans with delta halo exchange.  Gated fact: compiled >= 1.3x "
            "eager on in-process HA at batch 1 (the paper's single-image "
            "serving regime), with bitwise parity, engine-boundary exchange "
            "byte reduction, and zero steady-state allocation"
        ),
        **report,
    }
    RECORD_PATH.write_text(json.dumps(payload, indent=2) + "\n")


# -- smoke --------------------------------------------------------------------


def smoke() -> None:
    """CI functional check: parity, delta halos, zero-alloc on a small run."""
    net = _net()
    x = _batch(4)
    eager = _multidevice(net, compiled=False)
    compiled = _multidevice(net, compiled=True)
    try:
        out_eager = eager.run_ha(x)
        out_compiled = compiled.run_ha(x)
        assert np.array_equal(out_eager, out_compiled), (
            "compiled HA logits are not bitwise equal to eager"
        )
        e = eager.engine.last_exchange_bytes
        c = compiled.engine.last_exchange_bytes
        assert len(c) == len(e) and sum(c) < sum(e), (
            f"delta halos did not reduce exchange bytes: {c} vs {e}"
        )
        assert all(cb < eb for cb, eb in zip(c[1:], e[1:])), (
            "every post-input round must ship fewer bytes compiled"
        )
        alloc = measure_zero_alloc(compiled, x, extra=6)
        assert all(alloc.values()), f"steady-state allocation facts failed: {alloc}"
    finally:
        eager.engine.shutdown()
        compiled.engine.shutdown()

    # Wire-protocol parity (covers the PARTITION_ROUND messages end to end).
    spec_full = net.width_spec.full()
    with _InProcMaster(net, compiled=False) as m:
        wire_eager = m.run_ha(spec_full, x)
    with _InProcMaster(net, compiled=True) as m:
        wire_compiled = m.run_ha(spec_full, x)
    assert np.array_equal(wire_eager, wire_compiled), (
        "compiled HA over the wire protocol is not bitwise equal to eager"
    )

    # Wall-clock is opt-in: shared runners are too noisy to gate by default.
    threshold = float(os.environ.get("REPRO_MIN_DIST_SPEEDUP", "0"))
    if threshold > 0:
        x1 = _batch(1)
        e_rt = _multidevice(net, compiled=False)
        c_rt = _multidevice(net, compiled=True)
        try:
            eager_ms, compiled_ms = _paired_ms(
                lambda: e_rt.run_ha(x1), lambda: c_rt.run_ha(x1), trials=200
            )
        finally:
            e_rt.engine.shutdown()
            c_rt.engine.shutdown()
        speedup = eager_ms / compiled_ms
        assert speedup >= threshold, (
            f"compiled HA speedup {speedup:.2f}x below REPRO_MIN_DIST_SPEEDUP="
            f"{threshold}"
        )
        print(f"smoke speedup {speedup:.2f}x (threshold {threshold})")
    print("smoke OK")


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the CI functional assertions on a small run (no record)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        smoke()
        return 0

    report = run_benchmark()
    assert all(report["parity"].values()), f"parity failed: {report['parity']}"
    assert report["meets_threshold"], (
        f"acceptance requires >={ACCEPTANCE_THRESHOLD}x compiled-vs-eager on "
        f"in-process HA at batch 1; measured "
        f"{report['speedup_ha_batch1_inprocess']:.2f}x"
    )
    _record(report)
    print(f"wrote {RECORD_PATH} (cores={report['cores']})")
    for transport, stats in report["figure2"].items():
        for rows, ha in sorted(stats["ha"].items(), key=lambda kv: int(kv[0])):
            print(
                f"  {transport:10s} HA batch {rows:>2s}: eager {ha['eager_ms']:7.2f}ms  "
                f"compiled {ha['compiled_ms']:7.2f}ms  ({ha['speedup']:.2f}x)"
            )
    ex = report["exchange_bytes"]
    print(
        f"  exchange bytes/round: eager {ex['eager_per_round']} -> compiled "
        f"{ex['compiled_per_round']} ({ex['reduction']:.0%} less)"
    )
    print(f"  zero-alloc: {report['zero_alloc']}  overlap {report['overlap_ewma']:.2f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
