"""Extension bench: scaling the Fluid scheme beyond two devices.

The paper notes its training "is applicable to any number" of
sub-networks.  This bench evaluates the analytical N-device generalisation:
HT throughput scales with device count, reliability degrades gracefully
(losing k of N devices costs exactly the k streams), and the HA all-gather
becomes relatively more expensive as blocks multiply.
"""

import pytest

from repro.comm import CommLatencyModel
from repro.device import jetson_nx_master
from repro.distributed.multidevice import BlockPartition, MultiDeviceModel
from repro.slimmable import SlimmableConvNet, WidthSpec
from repro.utils import make_rng


def make_model(num_blocks: int, max_width: int = 16) -> MultiDeviceModel:
    spec = WidthSpec(
        max_width=max_width,
        lower_widths=tuple(
            max_width * k // num_blocks for k in range(1, num_blocks + 1)
        ),
        split=max_width // num_blocks,
        num_convs=3,
    )
    net = SlimmableConvNet(spec, rng=make_rng(0))
    return MultiDeviceModel(
        net,
        [jetson_nx_master()] * num_blocks,
        CommLatencyModel(),
        BlockPartition.even(num_blocks, max_width),
    )


def scaling_sweep():
    results = {}
    for n in (2, 4, 8):
        model = make_model(n)
        results[n] = {
            "ht": model.ht_throughput(range(n)),
            "ha": model.ha_throughput(range(n)),
            "reliability": model.reliability_profile(),
        }
    return results


def test_ht_scales_with_devices(benchmark):
    results = benchmark(scaling_sweep)
    ht = {n: results[n]["ht"] for n in results}
    # More devices -> more independent streams -> more throughput.
    assert ht[2] < ht[4] < ht[8]


def test_reliability_degrades_gracefully(benchmark):
    results = benchmark(scaling_sweep)
    for n, res in results.items():
        profile = res["reliability"]
        # Any single failure leaves the system serving.
        assert profile[1] > 0
        # Monotone decay to zero only when every device is gone.
        values = [profile[k] for k in sorted(profile)]
        assert all(a >= b for a, b in zip(values, values[1:]))
        assert profile[n] == 0.0


def test_ha_all_gather_penalty_grows(benchmark):
    """Relative HA cost grows with block count: the HT/HA ratio widens."""
    results = benchmark(scaling_sweep)
    ratios = {n: results[n]["ht"] / results[n]["ha"] for n in results}
    assert ratios[2] < ratios[4] < ratios[8]
