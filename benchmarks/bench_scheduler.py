"""SLA scheduler vs fixed-widest serving under overload and failure.

The PR-3 acceptance benchmark.  A deterministic open-loop arrival trace
(steady -> overload burst -> steady, with one replica killed mid-burst)
is driven through the SLA-aware control plane (admission + deadline-driven
width selection + hedged failure-aware routing) and through a fixed-widest
baseline sharing the same pool and micro-batching.  The report — goodput,
deadline-miss rate, p50/p95/p99 latency and lost-request counts — is
recorded to ``BENCH_scheduler.json`` at the repo root.

Run directly for the acceptance record::

    PYTHONPATH=src python benchmarks/bench_scheduler.py

or through pytest (or directly with ``--smoke``) for the CI smoke
(smaller trace, same code path, no record written)::

    PYTHONPATH=src python -m pytest benchmarks/bench_scheduler.py -q
    PYTHONPATH=src python benchmarks/bench_scheduler.py --smoke
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.models import build_model
from repro.scheduler.bench import (
    ACCEPTANCE_TRACE,
    SMOKE_TRACE,
    run_scheduler_comparison,
)
from repro.utils import make_rng

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_scheduler.json"


def _run(trace, replicas: int = 2):
    model = build_model("fluid", rng=make_rng(0))
    return run_scheduler_comparison(model, trace, replicas=replicas)


def _record(report, path=RECORD_PATH) -> None:
    payload = {
        "benchmark": "benchmarks/bench_scheduler.py",
        "description": (
            "Open-loop synthetic trace (steady/burst/steady Poisson arrivals, "
            "one replica killed mid-burst) served by the SLA-aware scheduler "
            "(admission, deadline-driven width selection, hedged failure-aware "
            "routing) vs the same pool pinned to the widest sub-network"
        ),
        **report,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


def test_scheduler_beats_fixed_widest_smoke():
    """CI smoke for the serving control plane.

    CI asserts the *functional* facts on the synthetic overload+failure
    trace: the scheduler's deadline-miss rate is strictly lower than the
    fixed-widest baseline at equal-or-better goodput, and the mid-burst
    replica kill loses zero requests (rerouted/hedged).  Wall-clock
    numbers vary on shared runners, so the run retries up to three times
    before failing; local acceptance runs set REPRO_MIN_SCHED_GOODPUT
    (e.g. 1.2) to hard-gate the goodput ratio as well.
    """
    threshold = float(os.environ.get("REPRO_MIN_SCHED_GOODPUT", "0"))
    last = None
    for _ in range(3):
        report = _run(SMOKE_TRACE)
        comp = report["comparison"]
        last = comp
        # Every acceptance fact is checked inside the loop so a transient
        # wall-clock hiccup on a shared runner burns a retry, not the run.
        if (
            comp["scheduler_lost"] == 0
            and report["scheduler"]["latency"]["p99_s"] > 0  # tail is reported
            and comp["miss_rate_scheduler"] < comp["miss_rate_fixed_widest"]
            and comp["goodput_ratio"] >= 1.0
            and comp["goodput_ratio"] >= threshold
        ):
            print(
                f"miss-rate {comp['miss_rate_scheduler']:.3f} vs "
                f"{comp['miss_rate_fixed_widest']:.3f} (fixed-widest), "
                f"goodput ratio {comp['goodput_ratio']:.2f}x"
            )
            return
    raise AssertionError(
        f"scheduler did not beat fixed-widest in 3 attempts: last comparison {last}"
    )


def test_trace_is_deterministic():
    """The seeded arrival process is bit-identical run-to-run."""
    assert SMOKE_TRACE.arrivals() == SMOKE_TRACE.arrivals()
    assert ACCEPTANCE_TRACE.arrivals() == ACCEPTANCE_TRACE.arrivals()


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the CI functional assertions on the small trace (no record)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        test_trace_is_deterministic()
        test_scheduler_beats_fixed_widest_smoke()
        print("smoke OK")
        return 0
    report = _run(ACCEPTANCE_TRACE)
    _record(report)
    print(f"wrote {RECORD_PATH}")
    for label in ("fixed_widest", "scheduler"):
        stats = report[label]
        print(
            f"  {label:13s} goodput {stats['goodput_rps']:7.1f} req/s  "
            f"miss-rate {stats['miss_rate']:.3f}  lost {stats['lost']}  "
            f"p99 {1e3 * stats['latency']['p99_s']:.1f}ms"
        )
    comp = report["comparison"]
    print(
        f"  miss-rate reduction {comp['miss_rate_reduction']:+.3f}, "
        f"goodput ratio {comp['goodput_ratio']:.2f}x"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
