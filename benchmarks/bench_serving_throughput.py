"""Serving throughput: serial vs concurrent vs micro-batched requests/sec.

The PR-2 acceptance benchmark.  One shared, untrained paper-architecture
model serves a stream of single-image requests three ways via the
:mod:`repro.serving_bench` harness; the report (with the measured
micro-batched-vs-serial speedup) is recorded to ``BENCH_serving.json`` at
the repo root.

Run directly for the acceptance record::

    PYTHONPATH=src python benchmarks/bench_serving_throughput.py

or through pytest for the CI smoke (fewer requests, slack thresholds)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving_throughput.py -q
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.models import build_model
from repro.serving_bench import run_serving_comparison
from repro.utils import make_rng

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_serving.json"

# Full acceptance load (direct invocation).
ACCEPTANCE = dict(num_requests=512, concurrency=4, max_batch=32, max_delay_s=0.002)
# CI smoke load (pytest): small enough for shared runners, same code path.
SMOKE = dict(num_requests=96, concurrency=4, max_batch=16, max_delay_s=0.005)


def _run(params, subnet: str = "lower100"):
    model = build_model("fluid", rng=make_rng(0))
    return run_serving_comparison(model, subnet, seed=1, **params)


def _record(report, path=RECORD_PATH) -> None:
    payload = {
        "benchmark": "benchmarks/bench_serving_throughput.py",
        "description": (
            "Single-image inference requests against one shared fluid model "
            f"({report['subnet']}): serial loop vs {report['concurrency']} "
            "concurrent zero-copy sessions vs dynamic micro-batching "
            f"(max_batch={report['config']['max_batch']}, "
            f"max_delay={1000 * report['config']['max_delay_s']:.1f}ms)"
        ),
        **report,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


def test_micro_batching_beats_serial_smoke():
    """CI smoke for the serving stack.

    CI asserts the *functional* facts (zero-copy serving; the queue really
    coalesced requests into multi-row batches) and only reports the
    measured speedup — wall-clock ratios on contended shared runners must
    not fail unrelated PRs.  Local acceptance runs set
    REPRO_MIN_SERVING_SPEEDUP (e.g. 1.2) to hard-gate the throughput gain,
    taking the best of three attempts; the recorded acceptance number
    lives in BENCH_serving.json.
    """
    threshold = float(os.environ.get("REPRO_MIN_SERVING_SPEEDUP", "0"))
    best = 0.0
    for _ in range(3):
        report = _run(SMOKE)
        assert report["zero_copy"], "sessions copied or rebound parameters"
        assert report["modes"]["micro_batched"]["mean_batch_rows"] >= 2.0, (
            "micro-batching queue never coalesced requests"
        )
        best = max(best, report["speedup"]["micro_batched_vs_serial"])
        if best >= threshold:
            break
    print(f"micro-batched vs serial: best of attempts {best:.2f}x")
    if threshold and best < threshold:
        raise AssertionError(f"micro-batched speedup only {best:.2f}x over 3 attempts")


def test_zero_copy_across_widths_smoke():
    """Concurrent mixed-width serving on one weight store stays zero-copy."""
    model = build_model("fluid", rng=make_rng(2))
    for subnet in ("lower25", "upper50"):
        report = run_serving_comparison(
            model, subnet, num_requests=32, concurrency=4, seed=3
        )
        assert report["zero_copy"]


def main() -> int:
    report = _run(ACCEPTANCE)
    _record(report)
    print(f"wrote {RECORD_PATH}")
    for mode, stats in report["modes"].items():
        print(f"  {mode:13s} {stats['requests_per_s']:9.1f} req/s")
    print(
        f"  micro-batched vs serial: "
        f"{report['speedup']['micro_batched_vs_serial']:.2f}x"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
