"""Micro-benchmarks of the wire codec and protocol messages.

Times the encode/decode path for the actual payloads the HA protocol ships
(batched half-activations), and asserts the codec's size accounting that
the analytical comm model depends on.
"""

import numpy as np
import pytest

from repro.comm import Message, MessageKind, decode_frame, encode_frame
from repro.utils import make_rng


@pytest.fixture(scope="module")
def half_activation():
    # The HA protocol's biggest regular payload: a batch of 64 pooled
    # half-activations (8 channels, 14x14) as float32.
    return make_rng(0).standard_normal((64, 8, 14, 14)).astype(np.float32)


def test_encode_half_activation(benchmark, half_activation):
    frame = benchmark(encode_frame, {"half": half_activation}, {"layer": 1})
    # Payload bytes + bounded header overhead.
    assert len(frame) < half_activation.nbytes + 1024
    assert len(frame) > half_activation.nbytes


def test_decode_half_activation(benchmark, half_activation):
    frame = encode_frame({"half": half_activation}, {"layer": 1})
    arrays, meta = benchmark(decode_frame, frame)
    np.testing.assert_array_equal(arrays["half"], half_activation)
    assert meta["layer"] == 1


def test_message_roundtrip(benchmark, half_activation):
    def roundtrip():
        msg = Message(
            MessageKind.PARTIAL_FORWARD,
            fields={"op": "layer", "layer": 1, "spec": "lower100"},
            arrays={"master_half": half_activation},
        )
        return Message.decode(msg.encode())

    out = benchmark(roundtrip)
    assert out.fields["spec"] == "lower100"


def test_input_batch_roundtrip(benchmark):
    images = make_rng(1).standard_normal((64, 1, 28, 28)).astype(np.float32)

    def roundtrip():
        frame = encode_frame({"input": images}, {"kind": "x"})
        return decode_frame(frame)[0]["input"]

    out = benchmark(roundtrip)
    assert out.shape == (64, 1, 28, 28)
