"""Extension bench: int8 weight quantization of trained models.

Static compression (the paper's ref [2]) composes with dynamic width: a
quantised checkpoint ships ~7x smaller and every sub-network — including
the standalone uppers — keeps its accuracy within a point.
"""

import pytest

from repro.nn.quantize import (
    compression_ratio,
    dequantize_state_dict,
    quantize_state_dict,
)


def test_compression_ratio(benchmark, bench_net):
    ratio = benchmark(compression_ratio, bench_net.state_dict())
    assert 6.0 < ratio <= 8.0


def test_quantized_fluid_keeps_all_subnets(benchmark, fig2_models, fig2_data):
    """Every certified sub-network survives the int8 round-trip."""
    _, test_set = fig2_data
    model = fig2_models["fluid"]
    original = model.state_dict()
    baseline = model.evaluate_all(test_set)

    def quantize_roundtrip():
        quantized = quantize_state_dict(original, per_channel=True)
        return dequantize_state_dict(quantized)

    restored = benchmark(quantize_roundtrip)
    model.load_state_dict(restored)
    try:
        degraded = model.evaluate_all(test_set)
        for name, acc in baseline.items():
            assert degraded[name] >= acc - 0.01, (
                f"{name}: {acc:.4f} -> {degraded[name]:.4f}"
            )
    finally:
        model.load_state_dict(original)


def test_per_channel_beats_per_tensor_on_trained_weights(benchmark, fig2_models):
    """Trained slimmable weights have width-dependent channel magnitudes, so
    per-channel scales quantise them measurably better."""
    import numpy as np

    from repro.nn.quantize import quantization_error

    state = fig2_models["fluid"].state_dict()
    conv_keys = [k for k in state if "conv" in k and "weight" in k]

    def errors():
        per_channel = np.mean([quantization_error(state[k], True) for k in conv_keys])
        per_tensor = np.mean([quantization_error(state[k], False) for k in conv_keys])
        return per_channel, per_tensor

    pc, pt = benchmark(errors)
    assert pc <= pt
