"""Thread-pool vs process-pool serving throughput over shared weights.

The PR-6 acceptance benchmark.  The same batched inference work is driven
through :class:`~repro.scheduler.pool.Replica` (N session sets sharing one
interpreter — and one GIL) and :class:`~repro.scheduler.procpool.ProcessReplica`
(N forked workers over one ``multiprocessing.shared_memory`` weight arena,
rows crossing per-worker shm rings) at 1/2/4/8 workers, recording rows/s
for each.  Two functional facts are measured alongside the wall-clock:

* **zero-copy**: the number of shm *weight* segments is the same (one)
  whether 1 or 8 workers serve — forked workers map the parent's pages,
  they never copy the weights;
* **cross-process invalidation**: a parent-side ``Parameter`` update (its
  ``version`` counter lives in the shared segment) makes a worker's
  :class:`~repro.nn.plan.PackedWeightCache` repack, and the worker's
  outputs match a parent-side session bitwise afterwards.

Wall-clock scaling is machine-conditional: the record carries ``cores``
(the CPU affinity count at record time) and the CI record check gates the
process>thread ordering facts only when the recording machine actually
had cores to scale onto — on a single-core runner every backend
serialises onto one core and IPC overhead decides the ordering.

Run directly for the acceptance record::

    PYTHONPATH=src python benchmarks/bench_multiproc.py

or with ``--smoke`` for the CI functional check (small run, no record)::

    PYTHONPATH=src python benchmarks/bench_multiproc.py --smoke
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.engine.session import InferenceSession
from repro.models import build_model
from repro.nn.plan import compile_width_plans
from repro.nn.shm import list_segments
from repro.scheduler.pool import Replica
from repro.scheduler.procpool import make_process_replicas
from repro.scheduler.telemetry import MetricsRegistry
from repro.utils import make_rng

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_multiproc.json"

WIDTH = "lower100"          # the widest (heaviest) sub-network: worst GIL case
WORKER_COUNTS = (1, 2, 4, 8)
BATCH_ROWS = 16


def _payload(rows: int, seed: int = 7) -> np.ndarray:
    return make_rng(seed).standard_normal((rows, 1, 28, 28))


def _drive(replicas, batch: np.ndarray, batches_each: int) -> float:
    """One feeder thread per replica, fixed work each; returns rows/s."""
    barrier = threading.Barrier(len(replicas) + 1)
    errors: List[BaseException] = []

    def _feeder(replica) -> None:
        try:
            barrier.wait()
            for _ in range(batches_each):
                replica.run_parts([batch], WIDTH)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors.append(exc)

    threads = [
        threading.Thread(target=_feeder, args=(r,), daemon=True) for r in replicas
    ]
    for t in threads:
        t.start()
    barrier.wait()
    started = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    total_rows = len(replicas) * batches_each * batch.shape[0]
    return total_rows / elapsed


def measure_backend(
    model, backend: str, workers: int, *, batches_each: int
) -> Dict[str, float]:
    """Rows/s for one backend at one pool size (plus shm segment counts)."""
    batch = _payload(BATCH_ROWS)
    plan_options = {"batch_rows": BATCH_ROWS}
    if backend == "process":
        replicas = make_process_replicas(
            model, workers, plan_options=plan_options, metrics=MetricsRegistry()
        )
    else:
        plans = compile_width_plans(model, [WIDTH], batch_rows=BATCH_ROWS)
        replicas = [Replica(i, model, plans) for i in range(workers)]
    try:
        for replica in replicas:  # warm: plan compile + first packs off the clock
            replica.run_parts([batch], WIDTH)
        rows_per_s = _drive(replicas, batch, batches_each)
        weight_segments = len(list_segments("w"))
        ring_segments = len(list_segments("r"))
    finally:
        for replica in replicas:
            replica.close()
    return {
        "rows_per_s": rows_per_s,
        "weight_segments": weight_segments,
        "ring_segments": ring_segments,
    }


def measure_invalidation(model) -> Dict[str, bool]:
    """Parent-side weight update -> worker repack + bitwise parity."""
    batch = _payload(BATCH_ROWS, seed=11)
    metrics = MetricsRegistry()
    replicas = make_process_replicas(
        model, 2, plan_options={"batch_rows": BATCH_ROWS}, metrics=metrics
    )
    try:
        for replica in replicas:
            replica.run_parts([batch], WIDTH)
        packs_before = metrics.counter("worker.0.repacks").value
        param = next(iter(getattr(model, "net", model).parameters()))
        param.data *= 1.0 + 1e-6
        param.bump_version()
        out = replicas[0].run_parts([batch], WIDTH)
        packs_after = metrics.counter("worker.0.repacks").value
        reference = InferenceSession(model, WIDTH).run(batch)
        return {
            "repacks_observed": packs_after > packs_before,
            "parity_after_update": bool(np.array_equal(out, reference)),
        }
    finally:
        for replica in replicas:
            replica.close()


def run_benchmark(batches_each: int = 24) -> Dict:
    model = build_model("fluid", rng=make_rng(0))
    try:
        cores = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        cores = os.cpu_count() or 1
    workers_section: Dict[str, Dict] = {}
    weight_segment_counts: Dict[str, int] = {}
    for count in WORKER_COUNTS:
        thread = measure_backend(model, "thread", count, batches_each=batches_each)
        process = measure_backend(model, "process", count, batches_each=batches_each)
        workers_section[str(count)] = {
            "thread_rows_per_s": thread["rows_per_s"],
            "process_rows_per_s": process["rows_per_s"],
            "process_vs_thread": process["rows_per_s"] / thread["rows_per_s"],
            "ring_segments": process["ring_segments"],
        }
        weight_segment_counts[str(count)] = process["weight_segments"]
    invalidation = measure_invalidation(model)
    least, most = str(min(WORKER_COUNTS)), str(max(WORKER_COUNTS))
    return {
        "cores": cores,
        "batch_rows": BATCH_ROWS,
        "batches_per_worker": batches_each,
        "width": WIDTH,
        "workers": workers_section,
        "zero_copy": {
            "weight_segments_by_worker_count": weight_segment_counts,
            "single_weight_segment_set": all(
                v == weight_segment_counts[least]
                for v in weight_segment_counts.values()
            )
            and weight_segment_counts[least] == 1,
        },
        "invalidation": invalidation,
        "scaling": {
            "process_vs_thread_at_4": workers_section["4"]["process_vs_thread"],
            "process_vs_thread_at_widest": workers_section[most]["process_vs_thread"],
            "note": (
                "wall-clock ordering is machine-conditional: with cores < 4 "
                "every backend serialises onto the same core and the process "
                "pool additionally pays IPC, so the >=2x-at-4-workers fact "
                "is gated on the recorded core count"
            ),
        },
    }


def _record(report: Dict, path: Path = RECORD_PATH) -> None:
    payload = {
        "benchmark": "benchmarks/bench_multiproc.py",
        "description": (
            "Batched inference rows/s through thread-backed replicas (one "
            "interpreter, one GIL) vs forked process replicas over one "
            "shared-memory weight arena (rows via per-worker shm rings) at "
            "1/2/4/8 workers, plus the measured zero-copy and cross-process "
            "packed-cache invalidation facts"
        ),
        **report,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


def smoke() -> None:
    """CI functional check: small live run asserting the hard facts."""
    model = build_model("fluid", rng=make_rng(0))
    thread = measure_backend(model, "thread", 2, batches_each=4)
    process = measure_backend(model, "process", 2, batches_each=4)
    assert thread["rows_per_s"] > 0 and process["rows_per_s"] > 0
    assert process["weight_segments"] == 1, (
        f"{process['weight_segments']} weight segments for 2 workers (expected "
        "one shared set)"
    )
    assert process["ring_segments"] == 2, "expected one I/O ring per worker"
    assert list_segments("r") == [], "ring segments leaked after close"
    invalidation = measure_invalidation(model)
    assert invalidation["repacks_observed"], (
        "parent-side version bump did not trigger a worker repack"
    )
    assert invalidation["parity_after_update"], (
        "worker output diverged from the parent session after a weight update"
    )
    # Parity between the two backends on identical inputs.
    batch = _payload(BATCH_ROWS, seed=3)
    replicas = make_process_replicas(model, 1, plan_options={"batch_rows": BATCH_ROWS})
    try:
        out = replicas[0].run_parts([batch], WIDTH)
    finally:
        replicas[0].close()
    reference = InferenceSession(model, WIDTH).run(batch)
    assert np.array_equal(out, reference), "process backend output not bitwise equal"
    print("smoke OK")


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the CI functional assertions on a small pool (no record)",
    )
    parser.add_argument(
        "--batches", type=int, default=24,
        help="batches per worker for the record run",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        smoke()
        return 0
    report = run_benchmark(batches_each=args.batches)
    _record(report)
    print(f"wrote {RECORD_PATH} (cores={report['cores']})")
    for count, stats in report["workers"].items():
        print(
            f"  {count:>2s} workers: thread {stats['thread_rows_per_s']:8.1f} rows/s  "
            f"process {stats['process_rows_per_s']:8.1f} rows/s  "
            f"({stats['process_vs_thread']:.2f}x)"
        )
    zc = report["zero_copy"]
    print(
        f"  zero-copy: {zc['single_weight_segment_set']} "
        f"(weight segments by worker count {zc['weight_segments_by_worker_count']})"
    )
    print(f"  invalidation: {report['invalidation']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
