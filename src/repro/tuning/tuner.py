"""Offline successive-halving autotuner over the virtual-time simulator.

``tune()`` replays one trace (a scenario-zoo stream, a recorded artifact,
or anything else a :class:`~repro.trace.replay.TraceReplayer` holds)
through candidate :class:`~repro.scheduler.frontend.SchedulerConfig`
mappings and returns the winner by **(miss rate, then goodput)** —
optionally scored with the trace's :class:`~repro.faults.plan.FaultPlan`
applied, so "best config under chaos" is the same cheap offline question.

The search is classic successive halving over the sim:

1. **Coarse**: every searched-dimension combination (seeded subsample if
   the grid exceeds ``max_candidates``) is scored on a *prefix* of the
   trace — arrivals in the first ``coarse_frac`` of the duration.
2. **Refine**: the best survivors are expanded over the carried knobs
   (hedge ratio, retry, supervisor backoff — see
   :mod:`repro.tuning.space`) and re-scored on the **full** trace.
2b. **Validate**: finalists within ``miss_tolerance`` of the best
   target-trace miss rate are re-ranked by mean miss across the pinned
   scenario zoo.  A hairline win on the target trace (a handful of
   requests) is statistical noise, and picking by it alone overfits —
   e.g. a long ``max_delay_s`` that coalesces two extra multi_tenant
   batches but blows every tight adversarial deadline.  The tolerance
   keeps the target trace in charge; the zoo only breaks its near-ties.
3. **Derive**: the winner's full-trace batch-rows histogram seeds the
   ladder rungs, and each rung gets the conv backend that wins its
   BENCH_plan grid row.  Under faults the emitted config also switches
   supervision on — a chaos-tuned config that couldn't respawn replicas
   would be self-contradictory.

Every simulation is virtual-time and every tie-break is by candidate
index, so the whole run — and the artifact serialized from it — is a
pure function of ``(trace, space, seed)``: byte-identical on every
machine.  Candidate sims are independent, so they fan out over a
fork-context process pool (sims inherit the model by fork, nothing is
pickled but the override mappings); ``workers=1`` forces the serial
path, which produces identical results by construction.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.scheduler.frontend import SchedulerConfig
from repro.trace.replay import TraceReplayer
from repro.tuning.space import (
    CARRIED_KEYS,
    SearchSpace,
    backends_for_rungs,
    rungs_from_histogram,
)
from repro.utils.rng import derive_seed, make_rng

#: Fraction of the trace (by arrival time) the coarse stage scores.
DEFAULT_COARSE_FRAC = 0.4

#: Coarse-grid cap; larger grids are subsampled deterministically.
DEFAULT_MAX_CANDIDATES = 128

#: Finalists within this miss rate of the target-trace best enter the
#: zoo-validation re-rank (see the module docstring's stage 2b).
DEFAULT_MISS_TOLERANCE = 0.01


@dataclass(frozen=True)
class Evaluation:
    """One candidate's simulated fitness."""

    index: int
    mapping: Dict[str, object]
    miss_rate: float
    goodput_rps: float
    requests: int
    batch_rows: Dict[int, int] = field(default_factory=dict)

    @property
    def score(self) -> Tuple[float, float, int]:
        """Lexicographic fitness: miss rate, then goodput, then index.

        The index term makes ties — including the carried knobs the sim
        is blind to — resolve to the *first* (default) variant, which is
        what keeps the whole run deterministic.
        """
        return (self.miss_rate, -self.goodput_rps, self.index)

    def to_json(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "mapping": dict(sorted(self.mapping.items())),
            "miss_rate": self.miss_rate,
            "goodput_rps": self.goodput_rps,
            "requests": self.requests,
        }


@dataclass(frozen=True)
class TuningResult:
    """Everything ``tune()`` decided, measured, and derived."""

    trace_name: str
    seed: int
    faults: bool
    baseline: Evaluation          # default SchedulerConfig on the full trace
    winner: Evaluation            # best refine-stage candidate (full trace)
    tuned: Evaluation             # the final emitted config, re-scored
    config: SchedulerConfig       # winner + derived rungs/backends (+ chaos knobs)
    derived: Dict[str, object]    # the histogram-derived dimensions
    leaderboard: Tuple[Evaluation, ...]  # refine stage, best first
    stages: Dict[str, object]     # candidate counts per stage
    validation: Optional[Dict[str, object]]  # zoo re-rank facts (None if skipped)
    evaluations: int              # total simulations run

    @property
    def improved(self) -> bool:
        """Strictly better than the default config on miss rate?"""
        return self.tuned.miss_rate < self.baseline.miss_rate


# Fork-inherited evaluation context: (specs, duration_s, faults, model).
# Set by tune() immediately before the pool forks; workers read it instead
# of unpickling a model (nets hold locks and big arrays — fork is free).
_EVAL_CONTEXT: Optional[Tuple] = None


def _evaluate(task: Tuple[int, Dict[str, object], float]) -> Tuple:
    index, mapping, frac = task
    specs, duration_s, faults, model = _EVAL_CONTEXT
    if frac < 1.0:
        horizon = duration_s * frac
        specs = tuple(s for s in specs if s.arrival_s <= horizon)
        duration_s = horizon
    replayer = TraceReplayer(specs, name="tune", duration_s=duration_s)
    config = SchedulerConfig.from_mapping(mapping)
    result = replayer.simulate(model, config, fault_plan=faults)
    return (
        index,
        result["miss_rate"],
        result["goodput_rps"],
        result["requests"],
        result["batches"]["rows"],
    )


def _evaluate_many(
    tasks: Sequence[Tuple[int, Dict[str, object], float]], workers: int
) -> List[Evaluation]:
    """Score candidates, results ordered by candidate index regardless of
    completion order (the parallel/serial parity contract)."""
    if workers > 1 and len(tasks) > 1:
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = None
        if context is not None:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(tasks)), mp_context=context
            ) as pool:
                raws = list(pool.map(_evaluate, tasks))
        else:  # no fork on this platform: fall back to the serial path
            raws = [_evaluate(task) for task in tasks]
    else:
        raws = [_evaluate(task) for task in tasks]
    out = []
    for (index, mapping, _), (ridx, miss, goodput, requests, rows) in zip(
        tasks, sorted(raws, key=lambda r: r[0])
    ):
        assert index == ridx
        out.append(
            Evaluation(
                index=index,
                mapping=mapping,
                miss_rate=miss,
                goodput_rps=goodput,
                requests=requests,
                batch_rows={int(k): v for k, v in rows.items()},
            )
        )
    return out


def default_workers() -> int:
    return max(1, min(4, os.cpu_count() or 1))


def tune(
    replayer: TraceReplayer,
    model,
    *,
    seed: int = 0,
    space: Optional[SearchSpace] = None,
    workers: Optional[int] = None,
    use_faults: bool = False,
    coarse_frac: float = DEFAULT_COARSE_FRAC,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
    survivors: Optional[int] = None,
    validate: bool = True,
    miss_tolerance: float = DEFAULT_MISS_TOLERANCE,
) -> TuningResult:
    """Search ``space`` for the best config on ``replayer``'s trace.

    ``use_faults`` scores every candidate (and the baseline) with the
    replayer's attached fault plan injected — tuning *for* the incident.
    It requires the replayer to carry one.

    ``validate`` enables the stage-2b zoo re-rank of near-tied finalists
    (fault-free sims of the pinned scenarios — robustness across traffic
    shapes, not across incidents).  ``validate=False`` ranks purely by
    the target trace.
    """
    global _EVAL_CONTEXT
    space = space or SearchSpace()
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise ValueError("workers must be positive")
    if not 0.0 < coarse_frac <= 1.0:
        raise ValueError("coarse_frac must be in (0, 1]")
    if not replayer.specs:
        raise ValueError("cannot tune an empty trace")
    faults = None
    if use_faults:
        faults = replayer.faults
        if faults is None:
            raise ValueError(
                "use_faults requires the replayer to carry a FaultPlan "
                "(a *_faulty scenario or a recorded incident)"
            )

    coarse = space.coarse_candidates()
    grid_size = len(coarse)
    if grid_size > max_candidates:
        rng = make_rng(derive_seed(seed, "tuning", "subsample"))
        keep = sorted(rng.permutation(grid_size)[:max_candidates].tolist())
        coarse = [coarse[i] for i in keep]

    _EVAL_CONTEXT = (replayer.specs, replayer.duration_s, faults, model)
    try:
        baseline = _evaluate_many([(0, {}, 1.0)], workers=1)[0]

        coarse_evals = _evaluate_many(
            [(i, mapping, coarse_frac) for i, mapping in enumerate(coarse)],
            workers,
        )
        keep_n = survivors if survivors is not None else max(4, len(coarse) // 6)
        keep_n = min(keep_n, len(coarse_evals))
        ranked = sorted(coarse_evals, key=lambda e: e.score)[:keep_n]

        refine: List[Dict[str, object]] = []
        for evaluation in ranked:
            refine.extend(space.refine_variants(evaluation.mapping))
        refine_evals = _evaluate_many(
            [(i, mapping, 1.0) for i, mapping in enumerate(refine)], workers
        )
        leaderboard = tuple(sorted(refine_evals, key=lambda e: e.score))
        winner = leaderboard[0]

        validation = None
        finalists = [
            e for e in leaderboard
            if e.miss_rate <= winner.miss_rate + miss_tolerance
        ]
        if validate and len(finalists) > 1:
            from repro.trace.scenarios import SCENARIOS

            zoo = {
                name: TraceReplayer.from_scenario(name) for name in SCENARIOS
            }
            # Carried-knob variants simulate identically (see space.py) —
            # memoize their zoo score by the searched dimensions alone.
            by_key: Dict[Tuple, float] = {}
            mean_miss: Dict[int, float] = {}
            for evaluation in finalists:
                key = tuple(sorted(
                    (k, v) for k, v in evaluation.mapping.items()
                    if k not in CARRIED_KEYS
                ))
                if key not in by_key:
                    config = SchedulerConfig.from_mapping(evaluation.mapping)
                    misses = [
                        z.simulate(model, config)["miss_rate"]
                        for z in zoo.values()
                    ]
                    by_key[key] = sum(misses) / len(misses)
                mean_miss[evaluation.index] = by_key[key]
            winner = min(
                finalists, key=lambda e: (mean_miss[e.index],) + e.score
            )
            validation = {
                "scenarios": sorted(zoo),
                "miss_tolerance": miss_tolerance,
                "finalists": len(finalists),
                "zoo_mean_miss": {
                    str(e.index): mean_miss[e.index] for e in finalists
                },
                "winner_index": winner.index,
                "simulations": len(by_key) * len(zoo),
            }

        # Derive the sim-invariant dimensions from the winner's own
        # full-trace batch shape, then re-score the exact config we emit.
        final_mapping = dict(winner.mapping)
        max_batch = int(final_mapping.get("max_batch", SchedulerConfig().max_batch))
        rungs = rungs_from_histogram(winner.batch_rows, max_batch)
        derived: Dict[str, object] = {
            "rows_ladder": list(rungs) if rungs else None,
            "conv_backend_per_rung": None,
            "batch_rows_histogram": dict(sorted(winner.batch_rows.items())),
        }
        if rungs is not None:
            backends = backends_for_rungs(rungs)
            final_mapping["rows_ladder"] = list(rungs)
            final_mapping["conv_backend_per_rung"] = [
                [rows, backend] for rows, backend in backends
            ]
            derived["conv_backend_per_rung"] = [
                [rows, backend] for rows, backend in backends
            ]
        if use_faults:
            # A chaos-tuned config must be able to live through the chaos:
            # supervised respawn and bounded retries are the live plane's
            # halves of what the sim models analytically.
            final_mapping["supervise"] = True
            final_mapping["retry"] = True
        tuned = _evaluate_many(
            [(winner.index, final_mapping, 1.0)], workers=1
        )[0]

        return TuningResult(
            trace_name=replayer.name,
            seed=seed,
            faults=use_faults,
            baseline=baseline,
            winner=winner,
            tuned=tuned,
            config=SchedulerConfig.from_mapping(final_mapping),
            derived=derived,
            leaderboard=leaderboard[: min(5, len(leaderboard))],
            stages={
                "grid": grid_size,
                "coarse": len(coarse),
                "coarse_frac": coarse_frac,
                "survivors": keep_n,
                "refine": len(refine),
                "validated": 0 if validation is None else validation["finalists"],
            },
            validation=validation,
            evaluations=(
                1 + len(coarse_evals) + len(refine_evals) + 1
                + (0 if validation is None else validation["simulations"])
            ),
        )
    finally:
        _EVAL_CONTEXT = None
