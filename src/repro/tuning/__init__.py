"""Trace-driven offline autotuning (ROADMAP item 3, closed).

``tune()`` searches :class:`SchedulerConfig` space against the
virtual-time simulator on any replayable trace — optionally under a
fault plan — and the ``repro-tuned-config`` artifact ships the winner
to ``serve --config``.  See :mod:`repro.tuning.tuner` for the search,
:mod:`repro.tuning.space` for what is searched vs derived, and
:mod:`repro.tuning.artifact` for the wire format.
"""

from repro.tuning.artifact import (
    TUNED_CONFIG_FORMAT,
    TUNED_CONFIG_VERSION,
    artifact_payload,
    dumps,
    load_config_mapping,
    load_scheduler_config,
    read_tuned_config,
    write_tuned_config,
)
from repro.tuning.space import (
    SHIFTED_GEMM_MIN_ROWS,
    SearchSpace,
    backends_for_rungs,
    rungs_from_histogram,
)
from repro.tuning.tuner import Evaluation, TuningResult, default_workers, tune

__all__ = [
    "Evaluation",
    "SHIFTED_GEMM_MIN_ROWS",
    "SearchSpace",
    "TUNED_CONFIG_FORMAT",
    "TUNED_CONFIG_VERSION",
    "TuningResult",
    "artifact_payload",
    "backends_for_rungs",
    "default_workers",
    "dumps",
    "load_config_mapping",
    "load_scheduler_config",
    "read_tuned_config",
    "rungs_from_histogram",
    "tune",
    "write_tuned_config",
]
