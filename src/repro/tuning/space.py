"""The autotuner's search space: what varies, what is derived, and why.

The virtual-time simulator (:meth:`repro.trace.replay.TraceReplayer.simulate`)
is the tuner's fitness function, so the space splits in two:

* **Searched dimensions** are the knobs the sim's outcome stream actually
  depends on — replica count, micro-batch ceiling and flush delay,
  admission headroom, and the brown-out entry depth.  These are
  enumerated as a grid and scored.

* **Carried dimensions** (hedge ratio, retry backoff, supervisor restart
  backoff) shape *live* behaviour the sim abstracts away — hedging and
  retries don't exist in virtual time, and the supervisor's respawn is an
  analytic constant.  The successive-halving refine stage still
  enumerates them (so the loop discriminates the moment the sim learns to
  model them), but today their sim fitness ties and the deterministic
  tie-break keeps the first — i.e. default — variant.

* **Derived dimensions** (ladder rungs, conv backend per rung) don't
  change sim outcomes either, but unlike the carried knobs they have a
  *measured* offline answer: rungs come from the winner's simulated
  batch-rows histogram, and each rung's conv lowering follows the
  ``BENCH_plan.json`` grid rule — im2col where the gather dominates
  (small rows), shifted-gemm where the GEMM does.  See
  :func:`rungs_from_histogram` / :func:`backends_for_rungs`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields
from typing import Dict, List, Mapping, Optional, Tuple

#: Mapping keys of the carried (sim-fitness-neutral) refine dimensions —
#: the keys :meth:`SearchSpace.refine_variants` varies.  The tuner's zoo
#: validation memoizes by everything *except* these, since variants
#: differing only here simulate identically.
CARRIED_KEYS = ("hedge_ratio", "restart_backoff_s", "retry")

#: Rows at and above which the shifted-GEMM lowering wins the
#: ``BENCH_plan.json`` grid row (im2col's gather amortises poorly as the
#: GEMM extent grows); below it the bitwise im2col default wins.
SHIFTED_GEMM_MIN_ROWS = 8


@dataclass(frozen=True)
class SearchSpace:
    """The grid of searched (and refine-stage carried) candidate values.

    ``brownout_enter_depth`` uses ``None`` for "no brown-out"; a depth
    engages a :class:`~repro.faults.policy.BrownoutPolicy` entering at
    that queue depth (exiting at a quarter of it).
    """

    replicas: Tuple[int, ...] = (2, 3, 4)
    max_batch: Tuple[int, ...] = (8, 16, 32)
    max_delay_s: Tuple[float, ...] = (0.0005, 0.001, 0.002)
    admission_headroom: Tuple[float, ...] = (1.0, 1.25)
    brownout_enter_depth: Tuple[Optional[int], ...] = (None, 32, 64)
    # Refine-stage carried knobs (fitness-neutral in the sim; see module
    # docstring).  First value of each is the default the tie-break keeps.
    hedge_ratio: Tuple[float, ...] = (0.1, 0.2)
    retry: Tuple[bool, ...] = (True, False)
    restart_backoff_s: Tuple[float, ...] = (0.05, 0.02)

    def __post_init__(self) -> None:
        for f in fields(self):
            if not getattr(self, f.name):
                raise ValueError(f"search space dimension {f.name} is empty")
        if any(r <= 0 for r in self.replicas):
            raise ValueError("replicas must be positive")
        if any(b <= 0 for b in self.max_batch):
            raise ValueError("max_batch must be positive")
        if any(d < 0 for d in self.max_delay_s):
            raise ValueError("max_delay_s must be non-negative")

    @classmethod
    def small(cls) -> "SearchSpace":
        """A reduced grid for tests and bench smokes (12 coarse candidates)."""
        return cls(
            replicas=(2, 4),
            max_batch=(16, 32),
            max_delay_s=(0.0005, 0.001),
            admission_headroom=(1.0,),
            brownout_enter_depth=(None, 64),
            hedge_ratio=(0.1,),
            retry=(True,),
            restart_backoff_s=(0.05,),
        )

    def coarse_candidates(self) -> List[Dict[str, object]]:
        """Every searched-dimension combination, as config-mapping overrides.

        Deterministic order (itertools.product over the tuple fields in
        declaration order) — candidate index is the tuner's tie-break.
        """
        out: List[Dict[str, object]] = []
        for replicas, max_batch, max_delay_s, headroom, depth in itertools.product(
            self.replicas,
            self.max_batch,
            self.max_delay_s,
            self.admission_headroom,
            self.brownout_enter_depth,
        ):
            mapping: Dict[str, object] = {
                "replicas": replicas,
                "max_batch": max_batch,
                "max_delay_s": max_delay_s,
                "admission_headroom": headroom,
            }
            if depth is not None:
                mapping["brownout"] = True
                mapping["brownout.enter_queue_depth"] = depth
                mapping["brownout.exit_queue_depth"] = max(depth // 4, 1)
            out.append(mapping)
        return out

    def refine_variants(self, mapping: Mapping[str, object]) -> List[Dict[str, object]]:
        """One survivor expanded over the carried knobs (see module docstring)."""
        out: List[Dict[str, object]] = []
        for hedge_ratio, retry, backoff in itertools.product(
            self.hedge_ratio, self.retry, self.restart_backoff_s
        ):
            variant = dict(mapping)
            variant["hedge_ratio"] = hedge_ratio
            variant["retry"] = retry
            variant["restart_backoff_s"] = backoff
            out.append(variant)
        return out


def rungs_from_histogram(
    histogram: Mapping[int, int], max_batch: int
) -> Optional[Tuple[int, ...]]:
    """Ladder rungs from a flushed-batch rows histogram: p50/p90 ceilings.

    Returns a rows_ladder whose top rung is ``max_batch`` (the
    :func:`~repro.nn.plan.normalize_rows_ladder` contract), or None when
    the histogram is empty or every percentile lands on the ceiling — a
    single max_batch plan then serves everything, and a ladder would only
    buy duplicate arenas.
    """
    rows = sorted(int(r) for r in histogram)
    if not rows:
        return None
    total = sum(histogram[r] for r in histogram)

    def percentile(p: float) -> int:
        acc = 0
        for r in rows:
            acc += histogram[r]
            if acc >= p * total:
                return r
        return rows[-1]

    rungs = {min(percentile(0.5), max_batch), min(percentile(0.9), max_batch)}
    rungs.discard(max_batch)
    if not rungs:
        return None
    return tuple(sorted(rungs)) + (max_batch,)


def backends_for_rungs(rungs: Tuple[int, ...]) -> Tuple[Tuple[int, str], ...]:
    """Per-rung conv lowering: the best column of each BENCH_plan grid row."""
    return tuple(
        (rows, "im2col" if rows < SHIFTED_GEMM_MIN_ROWS else "shifted-gemm")
        for rows in rungs
    )
