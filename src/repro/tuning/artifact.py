"""The ``repro-tuned-config`` artifact: a tuner run you can ship.

Mirrors the trace artifact's versioning discipline
(:mod:`repro.trace.recorder`): a format tag plus an integer version in
the header, foreign formats and newer versions rejected on read.  The
payload is the winner's full :meth:`SchedulerConfig.to_mapping` plus the
provenance needed to audit (or byte-reproduce) the run: trace name,
seed, fault plan, baseline-vs-tuned scores, stage sizes.

``dumps()`` is canonical (sorted keys, fixed indent), so two tuner runs
with the same ``(trace, space, seed)`` write byte-identical artifacts —
the determinism fact ``BENCH_tuning.json`` pins.

:func:`load_config_mapping` is the ``--config FILE`` loader: it accepts
either a full artifact (takes its ``config`` block) or a bare flat
mapping, so hand-written config files and tuner output go through the
same door.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.scheduler.frontend import SchedulerConfig
from repro.tuning.tuner import TuningResult

TUNED_CONFIG_FORMAT = "repro-tuned-config"
TUNED_CONFIG_VERSION = 1


def artifact_payload(result: TuningResult) -> Dict[str, object]:
    """The artifact's JSON payload for one tuner run."""
    return {
        "format": TUNED_CONFIG_FORMAT,
        "version": TUNED_CONFIG_VERSION,
        "trace": result.trace_name,
        "seed": result.seed,
        "faults": result.faults,
        "config": result.config.to_mapping(),
        "derived": result.derived,
        "baseline": result.baseline.to_json(),
        "winner": result.winner.to_json(),
        "tuned": result.tuned.to_json(),
        "leaderboard": [e.to_json() for e in result.leaderboard],
        "stages": result.stages,
        "validation": result.validation,
        "evaluations": result.evaluations,
    }


def dumps(result: TuningResult) -> str:
    """Canonical artifact text: a pure function of the tuner's result."""
    return json.dumps(artifact_payload(result), indent=2, sort_keys=True) + "\n"


def write_tuned_config(path: Union[str, Path], result: TuningResult) -> Path:
    path = Path(path)
    path.write_text(dumps(result))
    return path


def _check_header(data: Dict[str, object], source: str) -> None:
    if data.get("format") != TUNED_CONFIG_FORMAT:
        raise ValueError(
            f"{source}: not a {TUNED_CONFIG_FORMAT} artifact "
            f"(format={data.get('format')!r})"
        )
    version = data.get("version")
    if not isinstance(version, int) or version > TUNED_CONFIG_VERSION:
        raise ValueError(
            f"{source}: artifact version {version!r} is newer than this "
            f"build understands ({TUNED_CONFIG_VERSION})"
        )


def read_tuned_config(path: Union[str, Path]) -> Dict[str, object]:
    """Load and validate a full artifact; returns the parsed payload."""
    path = Path(path)
    data = json.loads(path.read_text())
    _check_header(data, str(path))
    if not isinstance(data.get("config"), dict):
        raise ValueError(f"{path}: artifact has no config mapping")
    return data


def load_config_mapping(path: Union[str, Path]) -> Dict[str, object]:
    """A ``--config FILE`` as a flat mapping: artifact or bare mapping.

    A file with a ``format`` key must be a tuned-config artifact (its
    ``config`` block is returned); without one, the whole object is
    treated as a :meth:`SchedulerConfig.from_mapping` input.  Validation
    of the keys themselves happens in ``from_mapping`` — this only
    decides which envelope the file used.
    """
    path = Path(path)
    data = json.loads(path.read_text())
    if not isinstance(data, dict):
        raise ValueError(f"{path}: config file must hold a JSON object")
    if "format" in data:
        _check_header(data, str(path))
        config = data.get("config")
        if not isinstance(config, dict):
            raise ValueError(f"{path}: artifact has no config mapping")
        return config
    return data


def load_scheduler_config(path: Union[str, Path]) -> SchedulerConfig:
    """``--config FILE`` straight to a validated :class:`SchedulerConfig`."""
    return SchedulerConfig.from_mapping(load_config_mapping(path))
