"""Experiment harnesses: Fig. 2 regeneration, calibration, reporting."""

from repro.experiments.calibration import (
    PAPER_FIG2,
    PAPER_HT_VS_DYNAMIC,
    PAPER_HT_VS_STATIC,
    OperatingPoint,
    calibration_points,
    check_calibration,
)
from repro.experiments.fig2 import Fig2Cell, Fig2Result, plan_accuracy, run_fig2
from repro.experiments.io import load_result, result_from_dict, result_to_dict, save_result
from repro.experiments.report import (
    ShapeCheck,
    format_fig2_table,
    format_shape_checks,
    shape_checks,
    subnet_accuracy_table,
)

__all__ = [
    "PAPER_FIG2",
    "PAPER_HT_VS_STATIC",
    "PAPER_HT_VS_DYNAMIC",
    "OperatingPoint",
    "calibration_points",
    "check_calibration",
    "Fig2Cell",
    "Fig2Result",
    "run_fig2",
    "plan_accuracy",
    "save_result",
    "load_result",
    "result_to_dict",
    "result_from_dict",
    "ShapeCheck",
    "shape_checks",
    "format_fig2_table",
    "format_shape_checks",
    "subnet_accuracy_table",
]
