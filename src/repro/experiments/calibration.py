"""Calibration of the emulated testbed against the paper's Fig. 2.

The paper reports four independent throughput operating points:

=====================================  ==========
Lone 50% model on the Master            14.4 img/s
Lone upper-50% model on the Worker      13.9 img/s
Fluid HT (both streams in parallel)     28.3 img/s
Distributed 100% model (HA / Static)    11.1 img/s
=====================================  ==========

Given the model's exact FLOP counts (402,976 for the 50% models; 685,216
per device for the partitioned 100% model) these four numbers over-determine
a two-parameter-per-device latency model plus an alpha-beta link model; the
constants in :mod:`repro.device.profiles` and
:mod:`repro.comm.latency_model` solve them:

* master: ``t = flops / 2.0e7 + layers * 12.3238 ms``
* worker: ``t = flops / 2.43e7 + layers * 13.8398 ms``
* link:   ``t = 1.4448 ms + bytes / 12.5 MB/s`` per exchange
  (four exchanges per HA image: three pooled conv activations of
  6272/1568/1568 bytes plus 40 bytes of partial logits).

This module exposes the paper's reference numbers and a self-check that the
calibrated emulation reproduces them, which doubles as a regression test —
if a cost-model refactor drifts the operating points, the check fails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.comm.latency_model import CommLatencyModel
from repro.device.profiles import DeviceProfile, jetson_nx_master, jetson_nx_worker
from repro.distributed.partition import MASTER, WORKER
from repro.distributed.throughput import SystemThroughputModel
from repro.slimmable.slim_net import SlimmableConvNet

# (family, scenario, mode) -> (throughput image/s, accuracy %)
# Transcribed from Fig. 2 of the paper.
PAPER_FIG2: Dict[Tuple[str, str, str], Tuple[float, float]] = {
    ("static", "master_and_worker", "HA"): (11.1, 98.9),
    ("static", "only_master", "failed"): (0.0, 0.0),
    ("static", "only_worker", "failed"): (0.0, 0.0),
    ("dynamic", "master_and_worker", "HT"): (14.4, 98.8),
    ("dynamic", "master_and_worker", "HA"): (11.1, 98.9),
    ("dynamic", "only_master", "solo"): (14.4, 98.8),
    ("dynamic", "only_worker", "failed"): (0.0, 0.0),
    ("fluid", "master_and_worker", "HT"): (28.3, 97.6),
    ("fluid", "master_and_worker", "HA"): (11.1, 99.2),
    ("fluid", "only_master", "solo"): (14.4, 98.8),
    ("fluid", "only_worker", "solo"): (13.9, 98.9),
}

# Headline ratios claimed in the abstract / §III.
PAPER_HT_VS_STATIC = 2.5
PAPER_HT_VS_DYNAMIC = 2.0


@dataclass(frozen=True)
class OperatingPoint:
    """One calibration target: predicted vs paper-reported throughput."""

    name: str
    paper_ips: float
    predicted_ips: float

    @property
    def relative_error(self) -> float:
        return abs(self.predicted_ips - self.paper_ips) / self.paper_ips


def calibration_points(
    net: SlimmableConvNet,
    master: DeviceProfile = None,
    worker: DeviceProfile = None,
    comm: CommLatencyModel = None,
) -> Dict[str, OperatingPoint]:
    """Predicted vs paper throughput for the four calibration targets."""
    master = master or jetson_nx_master()
    worker = worker or jetson_nx_worker()
    comm = comm or CommLatencyModel()
    tm = SystemThroughputModel(net, master, worker, comm)
    ws = net.width_spec
    half = ws.split
    lower50 = ws.lower(half)
    upper50 = ws.upper(ws.max_width - half)
    full = ws.full()

    solo_master = tm.standalone_throughput(MASTER, lower50).throughput_ips
    solo_worker = tm.standalone_throughput(WORKER, upper50).throughput_ips
    ht = tm.ht_throughput(lower50, upper50).throughput_ips
    ha = tm.ha_throughput(full).throughput_ips
    points = {
        "solo_master_50": OperatingPoint("solo_master_50", 14.4, solo_master),
        "solo_worker_upper50": OperatingPoint("solo_worker_upper50", 13.9, solo_worker),
        "fluid_ht": OperatingPoint("fluid_ht", 28.3, ht),
        "distributed_ha": OperatingPoint("distributed_ha", 11.1, ha),
    }
    return points


def check_calibration(net: SlimmableConvNet, tolerance: float = 0.02) -> bool:
    """True if every calibration point is within ``tolerance`` relative error."""
    return all(
        p.relative_error <= tolerance for p in calibration_points(net).values()
    )
