"""Persistence for experiment results.

Fig. 2 results round-trip through plain JSON so runs can be archived,
diffed across commits, and re-rendered without re-training.
"""

from __future__ import annotations

import json
import os
from typing import Dict

from repro.experiments.fig2 import Fig2Cell, Fig2Result

_SCHEMA_VERSION = 1


def result_to_dict(result: Fig2Result) -> Dict:
    return {
        "schema": _SCHEMA_VERSION,
        "cells": [
            {
                "family": c.family,
                "scenario": c.scenario,
                "mode": c.mode,
                "throughput_ips": c.throughput_ips,
                "accuracy_pct": c.accuracy_pct,
                "plan": c.plan,
            }
            for c in result.cells
        ],
    }


def result_from_dict(payload: Dict) -> Fig2Result:
    if payload.get("schema") != _SCHEMA_VERSION:
        raise ValueError(f"unsupported result schema {payload.get('schema')!r}")
    result = Fig2Result()
    for entry in payload["cells"]:
        result.add(
            Fig2Cell(
                family=entry["family"],
                scenario=entry["scenario"],
                mode=entry["mode"],
                throughput_ips=float(entry["throughput_ips"]),
                accuracy_pct=float(entry["accuracy_pct"]),
                plan=entry.get("plan", ""),
            )
        )
    return result


def save_result(path: str, result: Fig2Result) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result_to_dict(result), handle, indent=2, sort_keys=True)


def load_result(path: str) -> Fig2Result:
    with open(path, encoding="utf-8") as handle:
        return result_from_dict(json.load(handle))
