"""The Fig. 2 experiment: throughput and accuracy across availability scenarios.

For each model family (Static / Dynamic / Fluid) and each scenario
(Master+Worker, Only Master, Only Worker) the harness asks the adaptation
policy for its plan — High-Throughput and High-Accuracy variants where both
devices are up — then scores the plan with the analytical throughput model
(the paper's offline-measured methodology) and with measured accuracy on
the test set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.comm.latency_model import CommLatencyModel
from repro.data.dataset import ArrayDataset
from repro.device.profiles import DeviceProfile, jetson_nx_master, jetson_nx_worker
from repro.distributed.modes import ALL_SCENARIOS, ExecutionMode, Scenario
from repro.distributed.plan import DeploymentPlan
from repro.distributed.throughput import SystemThroughputModel
from repro.models.base import ModelFamily
from repro.runtime.policy import TARGET_ACCURACY, TARGET_THROUGHPUT, AdaptationPolicy


@dataclass(frozen=True)
class Fig2Cell:
    """One bar of Fig. 2."""

    family: str
    scenario: str
    mode: str  # "HA" | "HT" | "solo" | "failed"
    throughput_ips: float
    accuracy_pct: float
    plan: str  # human-readable plan description


@dataclass
class Fig2Result:
    """All bars, with lookup and ratio helpers."""

    cells: List[Fig2Cell] = field(default_factory=list)

    def add(self, cell: Fig2Cell) -> None:
        self.cells.append(cell)

    def get(self, family: str, scenario: str, mode: str) -> Fig2Cell:
        for cell in self.cells:
            if (cell.family, cell.scenario, cell.mode) == (family, scenario, mode):
                return cell
        raise KeyError(f"no cell for {(family, scenario, mode)}")

    def ht_speedup_vs_static(self) -> float:
        """The abstract's 2.5x claim."""
        fluid = self.get("fluid", Scenario.BOTH.value, "HT").throughput_ips
        static = self.get("static", Scenario.BOTH.value, "HA").throughput_ips
        return fluid / static

    def ht_speedup_vs_dynamic(self) -> float:
        """The abstract's 2x claim."""
        fluid = self.get("fluid", Scenario.BOTH.value, "HT").throughput_ips
        dynamic = self.get("dynamic", Scenario.BOTH.value, "HT").throughput_ips
        return fluid / dynamic


def plan_accuracy(
    model: ModelFamily,
    plan: DeploymentPlan,
    test_set: ArrayDataset,
    tm: SystemThroughputModel,
) -> float:
    """Accuracy (%) delivered by a deployment plan.

    * FAILED: 0 — no inference happens.
    * HA: accuracy of the jointly computed combined model.
    * SOLO: accuracy of the lone standalone sub-network.
    * HT: the two devices answer different inputs with different
      sub-networks; stream accuracy is the throughput-weighted mixture.
    """
    if plan.mode is ExecutionMode.FAILED:
        return 0.0
    if plan.mode is ExecutionMode.HIGH_ACCURACY:
        return 100.0 * model.evaluate(plan.combined_subnet, test_set)
    if plan.mode is ExecutionMode.SOLO:
        (assignment,) = plan.assignments
        return 100.0 * model.evaluate(assignment.subnet, test_set)
    # HIGH_THROUGHPUT: throughput-weighted mixture over the parallel streams.
    total_weighted = 0.0
    total_rate = 0.0
    for assignment in plan.assignments:
        spec = model.spec(assignment.subnet)
        rate = 1.0 / tm.standalone_latency(assignment.device, spec)
        total_weighted += rate * model.evaluate(assignment.subnet, test_set)
        total_rate += rate
    return 100.0 * total_weighted / total_rate


def run_fig2(
    models: Dict[str, ModelFamily],
    test_set: ArrayDataset,
    *,
    master: Optional[DeviceProfile] = None,
    worker: Optional[DeviceProfile] = None,
    comm: Optional[CommLatencyModel] = None,
) -> Fig2Result:
    """Regenerate Fig. 2 from trained models.

    Args:
        models: mapping with keys ``static``, ``dynamic``, ``fluid``.
        test_set: held-out evaluation data.
    """
    master = master or jetson_nx_master()
    worker = worker or jetson_nx_worker()
    comm = comm or CommLatencyModel()
    result = Fig2Result()

    for family in ("static", "dynamic", "fluid"):
        if family not in models:
            raise KeyError(f"models dict missing family {family!r}")
        model = models[family]
        tm = SystemThroughputModel(model.net, master, worker, comm)

        for scenario in ALL_SCENARIOS:
            if scenario is Scenario.BOTH:
                cells = _both_devices_cells(model, tm, scenario)
            else:
                policy = AdaptationPolicy(model, tm)
                plan = policy.plan_for_scenario(scenario)
                mode = "failed" if plan.mode is ExecutionMode.FAILED else "solo"
                cells = [(mode, plan)]
            for mode, plan in cells:
                breakdown = tm.evaluate_plan(plan)
                result.add(
                    Fig2Cell(
                        family=family,
                        scenario=scenario.value,
                        mode=mode,
                        throughput_ips=breakdown.throughput_ips,
                        accuracy_pct=plan_accuracy(model, plan, test_set, tm),
                        plan=plan.describe(),
                    )
                )
    return result


def _both_devices_cells(
    model: ModelFamily, tm: SystemThroughputModel, scenario: Scenario
) -> List[Tuple[str, DeploymentPlan]]:
    """HT and HA bars for the both-devices scenario (deduplicated)."""
    ht_policy = AdaptationPolicy(model, tm, target=TARGET_THROUGHPUT)
    ha_policy = AdaptationPolicy(model, tm, target=TARGET_ACCURACY)
    ht = ht_policy.plan_for_scenario(scenario)
    ha = ha_policy.plan_for_scenario(scenario)
    if ht == ha:
        # Static DNN: there is no throughput lever, only the HA deployment.
        label = "HA" if ha.mode is ExecutionMode.HIGH_ACCURACY else "failed"
        return [(label, ha)]
    return [("HT", ht), ("HA", ha)]
