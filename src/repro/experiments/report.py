"""Report formatting: Fig. 2 tables, paper comparison, shape checks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.experiments.calibration import (
    PAPER_FIG2,
    PAPER_HT_VS_DYNAMIC,
    PAPER_HT_VS_STATIC,
)
from repro.experiments.fig2 import Fig2Result


def format_fig2_table(result: Fig2Result, include_paper: bool = True) -> str:
    """Render the Fig. 2 bars as an aligned text table."""
    header = (
        f"{'family':8s} {'scenario':18s} {'mode':7s} "
        f"{'thr(img/s)':>10s} {'acc(%)':>7s}"
    )
    if include_paper:
        header += f" {'paper thr':>10s} {'paper acc':>10s}"
    lines = [header, "-" * len(header)]
    for cell in result.cells:
        line = (
            f"{cell.family:8s} {cell.scenario:18s} {cell.mode:7s} "
            f"{cell.throughput_ips:10.1f} {cell.accuracy_pct:7.1f}"
        )
        if include_paper:
            ref = PAPER_FIG2.get((cell.family, cell.scenario, cell.mode))
            if ref:
                line += f" {ref[0]:10.1f} {ref[1]:10.1f}"
            else:
                line += f" {'-':>10s} {'-':>10s}"
        lines.append(line)
    lines.append("")
    lines.append(
        f"Fluid HT speedup: {result.ht_speedup_vs_static():.2f}x vs Static "
        f"(paper {PAPER_HT_VS_STATIC}x), "
        f"{result.ht_speedup_vs_dynamic():.2f}x vs Dynamic "
        f"(paper {PAPER_HT_VS_DYNAMIC}x)"
    )
    return "\n".join(lines)


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative claim from the paper, verified against our numbers."""

    name: str
    passed: bool
    detail: str


def shape_checks(
    result: Fig2Result, accuracy_tolerance_pct: float = 1.0
) -> List[ShapeCheck]:
    """Verify the paper's qualitative claims (DESIGN.md §5) on a result.

    These are the repro contract: who wins, by roughly what factor, and
    which configurations fail outright.
    """
    checks: List[ShapeCheck] = []

    def cell(family: str, scenario: str, mode: str):
        return result.get(family, scenario, mode)

    # 1. Reliability pattern under single-device failure.
    static_m = cell("static", "only_master", "failed")
    static_w = cell("static", "only_worker", "failed")
    checks.append(
        ShapeCheck(
            "static fails on any single-device failure",
            static_m.throughput_ips == 0 and static_w.throughput_ips == 0,
            f"only_master={static_m.throughput_ips}, only_worker={static_w.throughput_ips}",
        )
    )
    dyn_m = cell("dynamic", "only_master", "solo")
    dyn_w = cell("dynamic", "only_worker", "failed")
    checks.append(
        ShapeCheck(
            "dynamic survives worker death only",
            dyn_m.throughput_ips > 0 and dyn_w.throughput_ips == 0,
            f"only_master={dyn_m.throughput_ips:.1f}, only_worker={dyn_w.throughput_ips}",
        )
    )
    fluid_m = cell("fluid", "only_master", "solo")
    fluid_w = cell("fluid", "only_worker", "solo")
    checks.append(
        ShapeCheck(
            "fluid survives either device death",
            fluid_m.throughput_ips > 0 and fluid_w.throughput_ips > 0,
            f"only_master={fluid_m.throughput_ips:.1f}, only_worker={fluid_w.throughput_ips:.1f}",
        )
    )

    # 2. Throughput ratios with both devices online.
    vs_static = result.ht_speedup_vs_static()
    checks.append(
        ShapeCheck(
            "fluid HT ~2.5x static (within 20%)",
            abs(vs_static - PAPER_HT_VS_STATIC) / PAPER_HT_VS_STATIC < 0.2,
            f"measured {vs_static:.2f}x",
        )
    )
    vs_dynamic = result.ht_speedup_vs_dynamic()
    checks.append(
        ShapeCheck(
            "fluid HT ~2x dynamic (within 20%)",
            abs(vs_dynamic - PAPER_HT_VS_DYNAMIC) / PAPER_HT_VS_DYNAMIC < 0.2,
            f"measured {vs_dynamic:.2f}x",
        )
    )

    # 3. HA deployments share the same partition => same throughput.
    ha_static = cell("static", "master_and_worker", "HA").throughput_ips
    ha_fluid = cell("fluid", "master_and_worker", "HA").throughput_ips
    checks.append(
        ShapeCheck(
            "HA throughput identical across families",
            abs(ha_static - ha_fluid) < 1e-6,
            f"static={ha_static:.2f}, fluid={ha_fluid:.2f}",
        )
    )

    # 4. Accuracy ordering.
    acc_full_static = cell("static", "master_and_worker", "HA").accuracy_pct
    acc_fluid_ha = cell("fluid", "master_and_worker", "HA").accuracy_pct
    acc_fluid_ht = cell("fluid", "master_and_worker", "HT").accuracy_pct
    checks.append(
        ShapeCheck(
            "all full-width models >= 95%",
            acc_full_static >= 95.0 and acc_fluid_ha >= 95.0,
            f"static={acc_full_static:.1f}, fluid HA={acc_fluid_ha:.1f}",
        )
    )
    checks.append(
        ShapeCheck(
            "fluid HT accuracy below its HA accuracy (temporary loss)",
            acc_fluid_ht < acc_fluid_ha,
            f"HT={acc_fluid_ht:.1f} < HA={acc_fluid_ha:.1f}",
        )
    )
    checks.append(
        ShapeCheck(
            f"fluid HA within {accuracy_tolerance_pct}pt of static (paper: above it)",
            acc_fluid_ha >= acc_full_static - accuracy_tolerance_pct,
            f"fluid HA={acc_fluid_ha:.1f} vs static={acc_full_static:.1f}",
        )
    )
    return checks


def subnet_accuracy_table(models: dict, test_set) -> str:
    """Per-sub-network accuracy table across families (EXPERIMENTS.md §3).

    ``models`` maps family name to a trained
    :class:`~repro.models.ModelFamily`; every sub-network of every family is
    evaluated, with uncertified entries marked.
    """
    families = sorted(models)
    any_model = models[families[0]]
    names = [spec.name for spec in any_model.width_spec.all_specs()]
    header = f"{'family':8s} " + " ".join(f"{n:>9s}" for n in names)
    lines = [header, "-" * len(header)]
    for family in families:
        model = models[family]
        cells = []
        for name in names:
            acc = 100 * model.evaluate(name, test_set)
            marker = "" if model.is_standalone_certified(name) else "*"
            cells.append(f"{acc:8.1f}{marker or ' '}")
        lines.append(f"{family:8s} " + " ".join(cells))
    lines.append("(* = not certified standalone; the runtime never deploys it)")
    return "\n".join(lines)


def format_shape_checks(checks: List[ShapeCheck]) -> str:
    lines = []
    for check in checks:
        status = "PASS" if check.passed else "FAIL"
        lines.append(f"[{status}] {check.name}: {check.detail}")
    return "\n".join(lines)
