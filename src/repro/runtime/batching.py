"""Dynamic micro-batching request queue.

Serving traffic arrives as many small requests; the numpy compute core is
far more efficient on one large GEMM than on many tiny ones.  A
:class:`MicroBatchQueue` sits between the two: callers :meth:`submit`
individual input arrays and get a :class:`concurrent.futures.Future` back;
a single collector thread accumulates requests until either the batch-size
budget (``max_batch`` rows) or the deadline budget (``max_delay_s`` after
the first queued request) is exhausted, runs **one** batched forward via
the supplied ``run_batch`` callable, and scatters the result rows back to
the per-request futures in submission order.

``run_batch`` is typically an
:class:`~repro.engine.session.InferenceSession`'s :meth:`run` (stateless,
shared weights), or :class:`~repro.runtime.live.LiveSystem.serve_batch`
via :meth:`LiveSystem.request_queue` for the full failover-aware stack.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

_SHUTDOWN = object()


class DeadlineExceeded(RuntimeError):
    """A request's deadline expired before it could be served.

    Raised through the request future — either immediately at submit time
    (fail-fast: an already-expired request must not occupy batch-row
    budget) or by the SLA-aware scheduler when it rejects an infeasible
    request at admission.
    """


@dataclass(frozen=True)
class BatchingConfig:
    """Budgets for one micro-batching queue."""

    max_batch: int = 32       # flush when this many *rows* are pending
    max_delay_s: float = 0.002  # flush this long after the first pending request

    def __post_init__(self) -> None:
        if self.max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if self.max_delay_s < 0:
            raise ValueError("max_delay_s must be non-negative")


#: How many recent per-batch row counts BatchingStats retains (the totals
#: are exact; only the per-batch trace is windowed, so a long-lived serving
#: queue does not grow without bound).
RECENT_BATCH_WINDOW = 256


@dataclass
class BatchingStats:
    """Counters describing how the queue flushed.

    Mutated only by the owning queue (collector thread, plus the submit
    path for ``expired_rejects``) under ``lock``; concurrent readers must
    use :meth:`snapshot` rather than iterating ``recent_batch_sizes``
    directly, which the flush path appends to.
    """

    requests: int = 0
    batches: int = 0
    rows: int = 0
    full_flushes: int = 0      # flushed because max_batch rows were pending
    deadline_flushes: int = 0  # flushed because max_delay_s expired
    expired_rejects: int = 0   # requests failed fast: deadline already past at submit
    recent_batch_sizes: "deque" = field(
        default_factory=lambda: deque(maxlen=RECENT_BATCH_WINDOW)
    )
    lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def mean_batch_rows(self) -> float:
        return self.rows / self.batches if self.batches else 0.0

    def snapshot(self) -> dict:
        """A consistent, JSON-friendly copy taken under the stats lock."""
        with self.lock:
            return {
                "requests": self.requests,
                "batches": self.batches,
                "rows": self.rows,
                "full_flushes": self.full_flushes,
                "deadline_flushes": self.deadline_flushes,
                "expired_rejects": self.expired_rejects,
                "mean_batch_rows": self.mean_batch_rows(),
                "recent_batch_sizes": list(self.recent_batch_sizes),
            }


class MicroBatchQueue:
    """Accumulate requests, run one batched forward, scatter the results."""

    def __init__(
        self,
        run_batch: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        config: Optional[BatchingConfig] = None,
        *,
        run_batch_parts: Optional[Callable[[List[np.ndarray]], np.ndarray]] = None,
        on_batch: Optional[Callable[[List[object], int], None]] = None,
        autostart: bool = True,
    ) -> None:
        if (run_batch is None) == (run_batch_parts is None):
            raise ValueError("pass exactly one of run_batch / run_batch_parts")
        self.run_batch = run_batch
        # run_batch_parts receives the per-request arrays unconcatenated
        # (stacked row order preserved) — a compiled-plan backend scatters
        # them straight into its input arena, skipping the np.concatenate
        # temporary this queue would otherwise build per flush.  With a
        # PlanLadder backend the flush's total row count also picks the
        # smallest arena rung, so deadline flushes of one or two requests
        # never touch the max_batch-sized buffers.
        self.run_batch_parts = run_batch_parts
        # Called on the collector thread with ([tags...], total_rows)
        # immediately before each batched forward — the hook tracing uses
        # to pair a request (its submit-time ``tag``) with the batch it
        # actually rode.  Tags of dropped (cancelled) requests are absent.
        self.on_batch = on_batch
        self.config = config or BatchingConfig()
        self.stats = BatchingStats()
        self._queue: "queue.Queue" = queue.Queue()
        self._closed = False
        self._submit_lock = threading.Lock()
        self._thread = threading.Thread(
            target=self._collector, name="micro-batcher", daemon=True
        )
        self._started = False
        if autostart:
            self.start()

    def start(self) -> None:
        """Start the collector (no-op if already running).

        ``autostart=False`` + submit-then-start gives tests deterministic
        batch composition.
        """
        if not self._started:
            self._started = True
            self._thread.start()

    # -- client side -----------------------------------------------------------

    def submit(
        self, x: np.ndarray, *, deadline: Optional[float] = None, tag: object = None
    ) -> "Future[np.ndarray]":
        """Enqueue one request (rows = ``x.shape[0]``); returns its future.

        ``deadline`` is an absolute :func:`time.monotonic` timestamp.  A
        request whose deadline has already passed at submit time resolves
        its future with :class:`DeadlineExceeded` immediately and never
        enters the queue — an expired request must not occupy batch-row
        budget that live requests could use.

        ``tag`` is an opaque caller handle carried alongside the request
        and handed back through the ``on_batch`` hook with the batch it
        flushed in.
        """
        if x.ndim < 1 or x.shape[0] == 0:
            raise ValueError(f"request must have at least one row, got shape {x.shape}")
        future: "Future[np.ndarray]" = Future()
        if deadline is not None and time.monotonic() >= deadline:
            with self.stats.lock:
                self.stats.expired_rejects += 1
            future.set_exception(
                DeadlineExceeded(f"deadline {deadline:.6f} already passed at submit")
            )
            return future
        # The lock orders the closed-check against close()'s sentinel put, so
        # no request can land behind _SHUTDOWN and silently never resolve.
        with self._submit_lock:
            if self._closed:
                raise RuntimeError("submit on a closed MicroBatchQueue")
            self._queue.put((x, future, tag))
        return future

    def close(self, timeout: Optional[float] = None) -> None:
        """Flush everything already submitted, then stop the collector."""
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(_SHUTDOWN)
        self.start()  # a never-started queue still drains on close
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "MicroBatchQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- collector side ---------------------------------------------------------

    def _collector(self) -> None:
        carry: Optional[Tuple[np.ndarray, Future, object]] = None
        while True:
            if carry is not None:
                item, carry = carry, None
            else:
                item = self._queue.get()
            if item is _SHUTDOWN:
                return
            batch, saw_shutdown, full, carry = self._gather(item)
            self._flush(batch, full=full)
            if saw_shutdown:
                return

    def _gather(
        self, first: Tuple[np.ndarray, Future, object]
    ) -> Tuple[
        List[Tuple[np.ndarray, Future, object]],
        bool,
        bool,
        Optional[Tuple[np.ndarray, Future, object]],
    ]:
        """Collect requests until the row or deadline budget is spent.

        Returns ``(batch, saw_shutdown, full, carry)`` where ``full`` means
        the row budget (not the deadline) ended collection.  A request that
        would push the batch *past* ``max_batch`` rows is carried over to
        seed the next batch instead of overflowing this one — downstream
        backends (compiled-plan arenas in particular) size themselves to
        exactly ``max_batch`` rows.  Only a single request larger than
        ``max_batch`` on its own ever produces an oversized batch.
        """
        batch = [first]
        rows = first[0].shape[0]
        flush_at = time.monotonic() + self.config.max_delay_s
        while rows < self.config.max_batch:
            remaining = flush_at - time.monotonic()
            if remaining <= 0:
                return batch, False, False, None
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                return batch, False, False, None
            if item is _SHUTDOWN:
                return batch, True, False, None
            if rows + item[0].shape[0] > self.config.max_batch:
                return batch, False, True, item
            batch.append(item)
            rows += item[0].shape[0]
        return batch, False, True, None

    def _flush(self, batch: List[Tuple[np.ndarray, Future, object]], *, full: bool) -> None:
        # Claim every future before computing: set_running_or_notify_cancel
        # returns False for futures the client already cancelled (dropped
        # here), and afterwards cancel() can no longer succeed — so the
        # set_result/set_exception calls below cannot race a cancellation
        # and kill the collector.
        batch = [(x, f, t) for x, f, t in batch if f.set_running_or_notify_cancel()]
        if not batch:
            return
        arrays = [x for x, _, _ in batch]
        futures = [f for _, f, _ in batch]
        rows = [x.shape[0] for x in arrays]
        try:
            # The hook failing must fail this batch's futures, not the
            # collector thread — later submissions still get served.
            if self.on_batch is not None:
                self.on_batch([t for _, _, t in batch], sum(rows))
            if self.run_batch_parts is not None:
                out = self.run_batch_parts(arrays)
            else:
                stacked = arrays[0] if len(arrays) == 1 else np.concatenate(arrays, axis=0)
                out = self.run_batch(stacked)
            if out.shape[0] != sum(rows):
                raise RuntimeError(
                    f"run_batch returned {out.shape[0]} rows for {sum(rows)} inputs"
                )
        except BaseException as exc:  # noqa: BLE001 - delivered via futures
            for future in futures:
                future.set_exception(exc)
            return
        with self.stats.lock:
            self.stats.requests += len(batch)
            self.stats.batches += 1
            self.stats.rows += sum(rows)
            self.stats.recent_batch_sizes.append(sum(rows))
            if full:
                self.stats.full_flushes += 1
            else:
                self.stats.deadline_flushes += 1
        offset = 0
        for future, n in zip(futures, rows):
            future.set_result(out[offset : offset + n])
            offset += n
