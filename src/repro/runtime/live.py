"""Live serving loop: adaptation policy driving the real protocol.

:class:`LiveSystem` is the piece that closes the loop the paper describes:
a Master serving an inference stream in HA or HT mode over a real
transport, detecting Worker death through failed requests/heartbeats, and
re-planning onto its certified standalone sub-network without dropping the
stream.  The analytical controller (:mod:`repro.runtime.controller`)
replays scripted timelines; this one reacts to actual transport failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.distributed.master import MasterRuntime, WorkerUnavailable
from repro.distributed.modes import ExecutionMode
from repro.distributed.plan import DeploymentPlan
from repro.runtime.batching import BatchingConfig, MicroBatchQueue
from repro.runtime.monitor import HeartbeatMonitor
from repro.runtime.policy import AdaptationPolicy
from repro.utils.config import Config
from repro.utils.logging import get_logger


@dataclass
class ServedBatch:
    """Outcome of one batch served by the live system."""

    batch_index: int
    mode: ExecutionMode
    logits: Optional[np.ndarray]
    failed_over: bool = False


@dataclass
class LiveLog:
    """Per-batch record of a live serving session."""

    batches: List[ServedBatch] = field(default_factory=list)

    def modes(self) -> List[ExecutionMode]:
        return [b.mode for b in self.batches]

    def failover_points(self) -> List[int]:
        return [b.batch_index for b in self.batches if b.failed_over]

    def served_count(self) -> int:
        return sum(1 for b in self.batches if b.logits is not None)


class LiveSystem:
    """Serves batches under the current plan; re-plans on worker failure."""

    def __init__(
        self,
        master: MasterRuntime,
        policy: AdaptationPolicy,
        *,
        config: Optional[Config] = None,
    ) -> None:
        self.master = master
        self.policy = policy
        self.logger = get_logger("runtime.live")
        self._worker_alive = master.worker_attached()
        # The same configurable detector the scheduler's replica pool uses
        # (``heartbeat_threshold`` / ``heartbeat_interval_s`` config keys);
        # the live master/worker path historically declared death after a
        # single failed ping, so that stays the default here.
        self.monitor = HeartbeatMonitor.from_config(
            master.ping_worker, config, default_threshold=1
        )
        self.plan: DeploymentPlan = self._replan()

    def _alive_set(self) -> frozenset:
        devices = {"master"}
        if self._worker_alive:
            devices.add("worker")
        return frozenset(devices)

    def _replan(self) -> DeploymentPlan:
        plan = self.policy.plan(self._alive_set())
        self.logger.info("plan: %s", plan.describe())
        return plan

    def declare_worker_dead(self) -> None:
        if self._worker_alive:
            self._worker_alive = False
            self.plan = self._replan()

    def heartbeat(self) -> bool:
        """Run one heartbeat; re-plan once the monitor declares death.

        Returns worker liveness.  The declaration threshold and expected
        cadence come from the shared heartbeat config keys.
        """
        if self._worker_alive and not self.monitor.check():
            self.declare_worker_dead()
        return self._worker_alive

    def serve_batch(self, index: int, x: np.ndarray) -> ServedBatch:
        """Serve one batch under the current plan; fail over transparently.

        On a worker failure mid-batch the batch is retried once under the
        new (solo or failed) plan, so the caller never sees the exception —
        only the mode change.
        """
        for attempt in range(2):
            plan = self.plan
            try:
                logits = self._execute(plan, x)
                return ServedBatch(
                    batch_index=index,
                    mode=plan.mode,
                    logits=logits,
                    failed_over=(attempt > 0),
                )
            except WorkerUnavailable:
                self.logger.warning("worker lost while serving batch %d", index)
                self.declare_worker_dead()
        # Second attempt also failed (no worker involved => plan is FAILED).
        return ServedBatch(index, self.plan.mode, None, failed_over=True)

    def _execute(self, plan: DeploymentPlan, x: np.ndarray) -> Optional[np.ndarray]:
        if plan.mode is ExecutionMode.FAILED:
            return None
        if plan.mode is ExecutionMode.SOLO:
            (assignment,) = plan.assignments
            if assignment.device != "master":
                # The master process cannot execute on a dead worker's behalf.
                return None
        # The engine handles the mode dispatch (and splits HT streams).
        return self.master.execute_plan(plan, x).logits

    def serve_stream(self, batches) -> LiveLog:
        """Serve an iterable of input batches end to end."""
        log = LiveLog()
        for index, x in enumerate(batches):
            log.batches.append(self.serve_batch(index, x))
        return log

    def request_queue(
        self, config: Optional[BatchingConfig] = None, *, log: Optional[LiveLog] = None
    ) -> MicroBatchQueue:
        """Micro-batching front door: single requests in, per-request logits out.

        Individual request arrays submitted to the returned queue are
        grouped into one batch per flush and served through
        :meth:`serve_batch` (so failover still applies); each caller's
        future receives only its own logit rows.  A served batch with no
        capacity left (FAILED plan) rejects its requests via the futures.
        """
        counter = {"index": 0}

        def _run(batch: np.ndarray) -> np.ndarray:
            served = self.serve_batch(counter["index"], batch)
            counter["index"] += 1
            if log is not None:
                log.batches.append(served)
            if served.logits is None:
                raise WorkerUnavailable(
                    f"no serving capacity (mode {served.mode.name}) for batch "
                    f"{served.batch_index}"
                )
            return served.logits

        return MicroBatchQueue(_run, config)

    def scheduled_queue(self, config=None, **frontend_kwargs):
        """SLA-aware front door over this system's model family.

        Returns a :class:`~repro.scheduler.frontend.ServingFrontend`
        (admission -> deadline-driven width selection -> failure-aware
        replica pool -> micro-batching) serving the same shared weight
        store this live system deploys.  ``config`` is a
        :class:`~repro.scheduler.frontend.SchedulerConfig`.

        Passing a loose dict of config keys is deprecated (one-release
        shim): it is converted through
        :meth:`SchedulerConfig.from_mapping`, which validates keys the
        old path silently ignored.
        """
        from collections.abc import Mapping as _Mapping

        from repro.scheduler.frontend import SchedulerConfig, ServingFrontend

        if isinstance(config, _Mapping):
            import warnings

            warnings.warn(
                "passing a dict of config keys to LiveSystem.scheduled_queue() "
                "is deprecated; pass a SchedulerConfig (or build one with "
                "SchedulerConfig.from_mapping). This shim will be removed "
                "next release.",
                DeprecationWarning,
                stacklevel=2,
            )
            config = SchedulerConfig.from_mapping(config)
        return ServingFrontend(self.policy.model, config, **frontend_kwargs)
