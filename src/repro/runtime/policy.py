"""Adaptation policy: map (model family, alive devices, target) to a plan.

This is the paper's decision logic made explicit.  The policy only ever
deploys *certified* sub-networks whose weights are resident on the target
device and fit its memory — which is exactly why Static DNNs fail when
either device dies, Dynamic DNNs survive only a Worker death, and Fluid
DyDNNs survive either (paper Fig. 1b/1c).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from repro.device.cost import subnet_param_count
from repro.device.profiles import DeviceProfile
from repro.distributed.modes import ExecutionMode, Scenario
from repro.distributed.partition import MASTER, WORKER, WidthPartition
from repro.distributed.plan import (
    DeploymentPlan,
    failed_plan,
    ha_plan,
    ht_plan,
    solo_plan,
)
from repro.distributed.throughput import SystemThroughputModel
from repro.models.base import ModelFamily
from repro.slimmable.spec import SubNetSpec

TARGET_ACCURACY = "accuracy"
TARGET_THROUGHPUT = "throughput"
TARGETS = (TARGET_ACCURACY, TARGET_THROUGHPUT)


class AdaptationPolicy:
    """Chooses deployment plans from certifications, residency and capacity."""

    def __init__(
        self,
        model: ModelFamily,
        throughput_model: SystemThroughputModel,
        *,
        partition: Optional[WidthPartition] = None,
        target: str = TARGET_ACCURACY,
    ) -> None:
        if target not in TARGETS:
            raise ValueError(f"target must be one of {TARGETS}, got {target!r}")
        self.model = model
        self.tm = throughput_model
        self.partition = partition or WidthPartition.at_spec_split(model.width_spec)
        self.target = target
        self.profiles: Dict[str, DeviceProfile] = throughput_model.profiles

    # -- capability queries ------------------------------------------------------

    def deployable_standalone(self, role: str) -> List[SubNetSpec]:
        """Certified, resident, memory-feasible standalone specs for a device."""
        options = self.partition.survivor_options(
            role, self.model.certified_standalone
        )
        capacity = self.profiles[role].memory_capacity_params
        return [
            spec
            for spec in options
            if subnet_param_count(self.tm.net, spec) <= capacity
        ]

    def best_standalone(self, role: str) -> Optional[SubNetSpec]:
        """Widest feasible standalone spec (accuracy grows with width)."""
        options = self.deployable_standalone(role)
        if not options:
            return None
        return max(options, key=lambda s: s.last_slice.width)

    def combined_spec(self) -> Optional[SubNetSpec]:
        """Largest certified combined model for HA mode (needs both devices)."""
        names = self.model.certified_combined
        if not names:
            return None
        specs = [self.model.spec(n) for n in names]
        return max(specs, key=lambda s: s.last_slice.width)

    def ht_pair(self) -> Optional[tuple]:
        """Independent (master, worker) pair for true parallel HT mode."""
        master_spec = self.best_standalone(MASTER)
        worker_spec = self.best_standalone(WORKER)
        if master_spec is None or worker_spec is None:
            return None
        return master_spec, worker_spec

    # -- planning ------------------------------------------------------------------

    def plan(self, alive: FrozenSet[str]) -> DeploymentPlan:
        """The plan for the given set of alive devices."""
        alive = frozenset(alive)
        if alive == frozenset({MASTER, WORKER}):
            return self._plan_both()
        if alive == frozenset({MASTER}):
            return self._plan_solo(MASTER)
        if alive == frozenset({WORKER}):
            return self._plan_solo(WORKER)
        return failed_plan("no devices alive")

    def plan_for_scenario(self, scenario: Scenario) -> DeploymentPlan:
        return self.plan(scenario.alive)

    def _plan_solo(self, role: str) -> DeploymentPlan:
        spec = self.best_standalone(role)
        if spec is None:
            return failed_plan(
                f"{role}'s resident weights include no certified standalone sub-network"
            )
        return solo_plan(role, spec.name)

    def _plan_both(self) -> DeploymentPlan:
        candidates: List[DeploymentPlan] = []
        combined = self.combined_spec()
        if combined is not None:
            candidates.append(ha_plan(combined.name))
        pair = self.ht_pair()
        if pair is not None:
            candidates.append(ht_plan(pair[0].name, pair[1].name))
        else:
            # Degraded "HT": the best lone device keeps serving while the
            # other idles (the Dynamic DNN's only throughput lever).
            solo = self._plan_solo(MASTER)
            if solo.mode != ExecutionMode.FAILED:
                candidates.append(solo)
        if not candidates:
            return failed_plan("no certified deployment for two devices")
        if self.target == TARGET_ACCURACY:
            ha = [p for p in candidates if p.mode == ExecutionMode.HIGH_ACCURACY]
            if ha:
                return ha[0]
            return candidates[0]
        return max(candidates, key=lambda p: self.tm.evaluate_plan(p).throughput_ips)
