"""System controller: the reliability state machine.

Feeds liveness observations into the adaptation policy and records every
plan transition.  :meth:`simulate` replays a scripted failure timeline and
returns the sequence of operating points — the dynamic version of the
paper's three static Fig. 2 scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, FrozenSet, List, Optional

from repro.device.failure import FailureSchedule
from repro.distributed.modes import ExecutionMode
from repro.distributed.plan import DeploymentPlan
from repro.distributed.throughput import SystemThroughputModel, ThroughputBreakdown
from repro.runtime.monitor import ScheduleMonitor
from repro.runtime.policy import AdaptationPolicy
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from repro.engine.engine import EngineResult, ExecutionEngine


@dataclass(frozen=True)
class Transition:
    """One plan change, with the liveness observation that caused it."""

    time_s: float
    alive: FrozenSet[str]
    plan: DeploymentPlan
    throughput: ThroughputBreakdown


@dataclass
class Timeline:
    """Ordered plan transitions over a simulated run."""

    transitions: List[Transition] = field(default_factory=list)
    horizon_s: Optional[float] = None

    def add(self, transition: Transition) -> None:
        self.transitions.append(transition)

    def plan_at(self, now_s: float) -> Optional[DeploymentPlan]:
        current = None
        for t in self.transitions:
            if t.time_s <= now_s:
                current = t.plan
            else:
                break
        return current

    def modes(self) -> List[ExecutionMode]:
        return [t.plan.mode for t in self.transitions]

    def downtime(self) -> float:
        """Total simulated seconds spent in FAILED state.

        A terminal FAILED interval extends to the simulation horizon (when
        known) — a system that died and never re-planned is down until the
        end of the run.
        """
        total = 0.0
        for i, t in enumerate(self.transitions):
            if t.plan.mode is ExecutionMode.FAILED:
                if i + 1 < len(self.transitions):
                    end = self.transitions[i + 1].time_s
                elif self.horizon_s is not None:
                    end = max(self.horizon_s, t.time_s)
                else:
                    end = t.time_s
                total += end - t.time_s
        return total


class SystemController:
    """Tracks liveness and re-plans on every change."""

    def __init__(
        self,
        policy: AdaptationPolicy,
        throughput_model: SystemThroughputModel,
        engine: Optional["ExecutionEngine"] = None,
    ) -> None:
        self.policy = policy
        self.tm = throughput_model
        self.engine = engine
        self.current_plan: Optional[DeploymentPlan] = None
        self.current_alive: Optional[FrozenSet[str]] = None
        self.logger = get_logger("controller")

    def execute_current(self, x: "np.ndarray") -> "EngineResult":
        """Run the current plan on an attached execution engine."""
        if self.engine is None:
            raise RuntimeError("no execution engine attached to this controller")
        if self.current_plan is None:
            raise RuntimeError("no plan yet: call observe() first")
        return self.engine.execute(self.current_plan, x)

    def observe(self, alive: FrozenSet[str], now_s: float = 0.0) -> Transition:
        """Update liveness; re-plan if it changed; return the transition."""
        alive = frozenset(alive)
        if alive != self.current_alive:
            self.current_alive = alive
            self.current_plan = self.policy.plan(alive)
            self.logger.info(
                "t=%.1fs alive=%s -> %s", now_s, sorted(alive), self.current_plan.describe()
            )
        return Transition(
            time_s=now_s,
            alive=alive,
            plan=self.current_plan,
            throughput=self.tm.evaluate_plan(self.current_plan),
        )

    def simulate(
        self, schedule: FailureSchedule, horizon_s: float, step_s: float = 1.0
    ) -> Timeline:
        """Replay a failure script; record transitions only when plans change."""
        if horizon_s <= 0 or step_s <= 0:
            raise ValueError("horizon and step must be positive")
        monitor = ScheduleMonitor(schedule)
        timeline = Timeline(horizon_s=horizon_s)
        last_plan: Optional[DeploymentPlan] = None
        t = 0.0
        while t <= horizon_s:
            transition = self.observe(monitor.alive_at(t), now_s=t)
            if transition.plan is not last_plan:
                timeline.add(transition)
                last_plan = transition.plan
            t += step_s
        return timeline
