"""Failure detection.

Two flavours:

* :class:`HeartbeatMonitor` — live: pings a worker through the Master's
  transport and declares death after consecutive missed heartbeats.
* :class:`ScheduleMonitor` — analytical: replays a scripted
  :class:`~repro.device.failure.FailureSchedule` over simulated time (the
  Fig. 2 scenarios are its three fixed points).
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Optional

from repro.device.failure import FailureSchedule
from repro.distributed.partition import MASTER, WORKER
from repro.utils.config import Config
from repro.utils.logging import get_logger

#: Config keys (see :class:`~repro.utils.config.Config`) recognised by
#: :meth:`HeartbeatMonitor.from_config`.
HEARTBEAT_THRESHOLD_KEY = "heartbeat_threshold"
HEARTBEAT_INTERVAL_KEY = "heartbeat_interval_s"

DEFAULT_HEARTBEAT_THRESHOLD = 2
DEFAULT_HEARTBEAT_INTERVAL_S = 0.05


class HeartbeatMonitor:
    """Declares a peer dead after ``threshold`` consecutive failed pings.

    ``interval_s`` is the cadence at which the owner is expected to call
    :meth:`check`; the monitor itself never sleeps, it just records the
    configured cadence so health loops (the scheduler's replica-pool
    ejector, live-serving heartbeats) all read one source of truth.
    """

    def __init__(
        self,
        ping: Callable[[], bool],
        threshold: int = DEFAULT_HEARTBEAT_THRESHOLD,
        interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if interval_s < 0:
            raise ValueError("interval_s must be non-negative")
        self._ping = ping
        self.threshold = threshold
        self.interval_s = interval_s
        self.consecutive_failures = 0
        self.declared_dead = False
        self.logger = get_logger("monitor")

    @classmethod
    def from_config(
        cls,
        ping: Callable[[], bool],
        config: Optional[Config] = None,
        *,
        default_threshold: int = DEFAULT_HEARTBEAT_THRESHOLD,
        default_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
    ) -> "HeartbeatMonitor":
        """Build a monitor from ``heartbeat_threshold`` / ``heartbeat_interval_s``
        config keys, falling back to the caller's defaults when absent."""
        cfg = config or Config()
        return cls(
            ping,
            threshold=int(cfg.get(HEARTBEAT_THRESHOLD_KEY, default_threshold)),
            interval_s=float(cfg.get(HEARTBEAT_INTERVAL_KEY, default_interval_s)),
        )

    def check(self) -> bool:
        """Run one heartbeat; returns current liveness verdict."""
        if self.declared_dead:
            return False
        if self._ping():
            self.consecutive_failures = 0
            return True
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.threshold:
            self.declared_dead = True
            self.logger.warning(
                "peer declared dead after %d missed heartbeats", self.consecutive_failures
            )
        return not self.declared_dead

    def reset(self) -> None:
        self.consecutive_failures = 0
        self.declared_dead = False

    @property
    def ping_fn(self) -> Callable[[], bool]:
        """The liveness callable this monitor drives (settable: fault
        injection wraps it to make heartbeats go dark for a window)."""
        return self._ping

    @ping_fn.setter
    def ping_fn(self, ping: Callable[[], bool]) -> None:
        self._ping = ping

    def rebind(self, ping: Callable[[], bool]) -> None:
        """Point the monitor at a new peer and clear its death verdict.

        The supervisor's adoption step: the monitor object (and its slot
        in the pool's parallel lists) survives a respawn — only the peer
        behind it changes.
        """
        self._ping = ping
        self.reset()


class ScheduleMonitor:
    """Liveness view over a scripted failure schedule at simulated time."""

    def __init__(self, schedule: FailureSchedule, devices=(MASTER, WORKER)) -> None:
        self.schedule = schedule
        self.devices = tuple(devices)

    def alive_at(self, now_s: float) -> FrozenSet[str]:
        return frozenset(
            d for d in self.devices if self.schedule.is_alive(d, now_s)
        )

    def next_event_after(self, now_s: float) -> Optional[float]:
        for event in self.schedule.events:
            if event.time_s > now_s:
                return event.time_s
        return None
