"""Runtime adaptation: failure monitoring, policy, micro-batched serving."""

from repro.runtime.batching import (
    BatchingConfig,
    BatchingStats,
    DeadlineExceeded,
    MicroBatchQueue,
)
from repro.runtime.controller import SystemController, Timeline, Transition
from repro.runtime.live import LiveLog, LiveSystem, ServedBatch
from repro.runtime.monitor import HeartbeatMonitor, ScheduleMonitor
from repro.runtime.policy import (
    TARGET_ACCURACY,
    TARGET_THROUGHPUT,
    TARGETS,
    AdaptationPolicy,
)

__all__ = [
    "AdaptationPolicy",
    "TARGET_ACCURACY",
    "TARGET_THROUGHPUT",
    "TARGETS",
    "BatchingConfig",
    "BatchingStats",
    "DeadlineExceeded",
    "HeartbeatMonitor",
    "LiveSystem",
    "LiveLog",
    "MicroBatchQueue",
    "ServedBatch",
    "ScheduleMonitor",
    "SystemController",
    "Timeline",
    "Transition",
]
