"""Serving throughput comparison harness.

Drives the same request load through three serving strategies and reports
requests/sec for each:

* **serial** — one :class:`~repro.engine.session.InferenceSession`, one
  request at a time (the pre-session baseline: per-endpoint serialization);
* **concurrent** — K sessions over the *same* weight store, K threads each
  draining a shard of the request stream (zero weight copies);
* **micro_batched** — all requests funnelled through a
  :class:`~repro.runtime.batching.MicroBatchQueue` that coalesces them
  into large batched forwards over one shared session.

Used by ``python -m repro serve`` and by
``benchmarks/bench_serving_throughput.py`` (which records the report to
``BENCH_serving.json``).  Outputs are checked bit-identical across
strategies before any number is reported.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List

import numpy as np

from repro.engine.session import InferenceSession
from repro.runtime.batching import BatchingConfig, MicroBatchQueue
from repro.utils.rng import derive_seed, make_rng


def make_single_image_requests(
    num_requests: int, image_size: int, in_channels: int, seed: int, *labels
) -> List[np.ndarray]:
    """Deterministic single-image request payloads.

    The one synthetic-payload generator shared by this harness and
    :mod:`repro.scheduler.bench`: ``labels`` namespace the seed (via
    :func:`repro.utils.rng.derive_seed`) so each bench's payload stream is
    reproducible run-to-run and independent of other consumers of ``seed``.
    """
    rng = make_rng(derive_seed(seed, *labels))
    return [
        rng.standard_normal((1, in_channels, image_size, image_size))
        for _ in range(num_requests)
    ]


def _make_requests(
    num_requests: int, image_size: int, in_channels: int, seed: int
) -> List[np.ndarray]:
    return make_single_image_requests(
        num_requests, image_size, in_channels, seed, "serving", "payloads"
    )


def _parameter_ids(session: InferenceSession) -> List[int]:
    return [id(p.data) for p in session.parameters()]


def run_serving_comparison(
    model,
    subnet: str,
    *,
    num_requests: int = 256,
    concurrency: int = 4,
    max_batch: int = 32,
    max_delay_s: float = 0.002,
    seed: int = 0,
) -> Dict:
    """Serve ``num_requests`` single-image requests three ways; compare."""
    if concurrency <= 0:
        raise ValueError("concurrency must be positive")
    net = model.net
    requests = _make_requests(num_requests, net.image_size, net.in_channels, seed)

    # K sessions, all aliasing the same parameter store (zero copies).
    sessions = [InferenceSession(model, subnet) for _ in range(concurrency)]
    baseline_ids = _parameter_ids(sessions[0])
    zero_copy = all(_parameter_ids(s) == baseline_ids for s in sessions)

    # -- serial ---------------------------------------------------------------
    started = time.perf_counter()
    serial_out = [sessions[0].run(x) for x in requests]
    serial_s = time.perf_counter() - started

    # -- concurrent shards ----------------------------------------------------
    shards = [list(range(i, num_requests, concurrency)) for i in range(concurrency)]
    concurrent_out: List[np.ndarray] = [None] * num_requests  # type: ignore[list-item]

    def _drain(worker: int) -> None:
        session = sessions[worker]
        for index in shards[worker]:
            concurrent_out[index] = session.run(requests[index])

    threads = [
        threading.Thread(target=_drain, args=(i,), name=f"serve-{i}")
        for i in range(concurrency)
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    concurrent_s = time.perf_counter() - started

    # -- micro-batched --------------------------------------------------------
    config = BatchingConfig(max_batch=max_batch, max_delay_s=max_delay_s)
    queue = MicroBatchQueue(sessions[0].run, config)
    started = time.perf_counter()
    futures = [queue.submit(x) for x in requests]
    batched_out = [f.result(timeout=60.0) for f in futures]
    batched_s = time.perf_counter() - started
    queue.close()

    # Weights must be untouched; concurrent serving must be bit-identical to
    # serial (same per-request computation).  Micro-batching runs bigger
    # GEMMs, which legally reorders BLAS accumulation, so it is compared to
    # float tolerance instead.
    zero_copy = zero_copy and _parameter_ids(sessions[0]) == baseline_ids
    # Tolerance scales with the compute dtype (float32 fast path reorders
    # accumulation at ~1e-6 relative precision).
    tol = 1e-9 if serial_out[0].dtype == np.float64 else 1e-4
    for i in range(num_requests):
        if not np.array_equal(serial_out[i], concurrent_out[i]):
            raise AssertionError(f"concurrent serving diverged on request {i}")
        if not np.allclose(serial_out[i], batched_out[i], rtol=tol, atol=tol):
            raise AssertionError(f"micro-batched serving diverged on request {i}")

    def _mode(elapsed: float) -> Dict:
        return {
            "elapsed_s": elapsed,
            "requests_per_s": num_requests / elapsed if elapsed > 0 else float("inf"),
        }

    report = {
        "num_requests": num_requests,
        "concurrency": concurrency,
        "subnet": subnet,
        "config": {"max_batch": max_batch, "max_delay_s": max_delay_s},
        "zero_copy": zero_copy,
        "modes": {
            "serial": _mode(serial_s),
            "concurrent": _mode(concurrent_s),
            "micro_batched": {
                **_mode(batched_s),
                "mean_batch_rows": queue.stats.mean_batch_rows(),
                "batches": queue.stats.batches,
                "full_flushes": queue.stats.full_flushes,
                "deadline_flushes": queue.stats.deadline_flushes,
            },
        },
        "speedup": {
            "concurrent_vs_serial": serial_s / concurrent_s if concurrent_s > 0 else 0.0,
            "micro_batched_vs_serial": serial_s / batched_s if batched_s > 0 else 0.0,
        },
    }
    return report
