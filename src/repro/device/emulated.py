"""A live emulated edge device.

Wraps a model residency (which weight rows the device holds), a
:class:`~repro.device.profiles.DeviceProfile` for latency accounting, and
failure triggers.  The distributed runtime talks to devices only through
:meth:`execute` — from the outside an :class:`EmulatedDevice` behaves like
a board that computes, takes time, and sometimes dies.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.device.cost import subnet_flops, subnet_num_layers, subnet_param_count
from repro.device.failure import CrashCounter
from repro.device.profiles import DeviceProfile
from repro.nn.context import ForwardContext
from repro.slimmable.slim_net import SlimmableConvNet
from repro.slimmable.spec import SubNetSpec


class DeviceFailed(RuntimeError):
    """Raised when an emulated device is asked to work after crashing."""


class EmulatedDevice:
    """One emulated edge device hosting (part of) a slimmable model."""

    def __init__(
        self,
        profile: DeviceProfile,
        net: SlimmableConvNet,
        *,
        crash_counter: Optional[CrashCounter] = None,
    ) -> None:
        self.profile = profile
        self.net = net
        self.crash_counter = crash_counter or CrashCounter()
        self.alive = True
        self.busy_time_s = 0.0
        self.requests_served = 0

    @property
    def name(self) -> str:
        return self.profile.name

    def crash(self) -> None:
        self.alive = False

    def recover(self) -> None:
        self.alive = True

    def _check_alive(self) -> None:
        if not self.alive:
            raise DeviceFailed(f"device {self.name!r} is down")
        if self.crash_counter.record_request():
            self.alive = False
            raise DeviceFailed(f"device {self.name!r} crashed mid-stream")

    def can_host(self, spec: SubNetSpec) -> bool:
        """Whether the sub-network's parameter count fits device memory."""
        return subnet_param_count(self.net, spec) <= self.profile.memory_capacity_params

    def execute_subnet(self, spec: SubNetSpec, x: np.ndarray) -> np.ndarray:
        """Run a standalone sub-network on a batch; accounts emulated time."""
        self._check_alive()
        view = self.net.view(spec)
        view.train(False)
        # Stateless inference: slice bindings and (skipped) activation tape
        # live on the per-call context, not on the shared net.
        logits = view.forward(x, ForwardContext(recording=False))
        flops = subnet_flops(self.net, spec) * x.shape[0]
        layers = subnet_num_layers(self.net) * x.shape[0]
        self.busy_time_s += self.profile.compute_time(flops, layers)
        self.requests_served += 1
        return logits

    def estimated_latency(self, spec: SubNetSpec) -> float:
        """Per-image latency of a standalone sub-network on this device."""
        return self.profile.compute_time(
            subnet_flops(self.net, spec), subnet_num_layers(self.net)
        )

    def __repr__(self) -> str:
        state = "alive" if self.alive else "DOWN"
        return f"EmulatedDevice({self.name}, {state}, served={self.requests_served})"
