"""Energy model for the emulated edge devices.

The paper evaluates throughput and accuracy; energy is the third axis its
research programme optimises (the authors' EPSRC project is on resource
management for embedded ML), so the library models it as an extension: a
classic three-state power model

    E(inference) = P_active * t_compute + P_comm * t_comm + P_idle * t_idle

with Jetson-Xavier-NX-class constants.  The energy benches use it to show
the modes' efficiency ordering (HT amortises the always-on baseline across
two streams; HA pays radio power for every layer exchange).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.distributed.throughput import ThroughputBreakdown


@dataclass(frozen=True)
class PowerProfile:
    """Power draw (watts) of one device in each state."""

    name: str
    idle_w: float
    active_w: float
    comm_w: float

    def __post_init__(self) -> None:
        if self.idle_w < 0 or self.active_w <= 0 or self.comm_w < 0:
            raise ValueError("power values must be non-negative (active positive)")
        if self.active_w < self.idle_w:
            raise ValueError("active power cannot be below idle power")


def jetson_nx_power() -> PowerProfile:
    """Jetson Xavier NX CPU-mode class constants (10W envelope)."""
    return PowerProfile(name="jetson-nx", idle_w=2.5, active_w=7.5, comm_w=1.2)


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy accounting for one image through a deployment."""

    mode: str
    compute_j: float
    comm_j: float
    idle_j: float

    @property
    def total_j(self) -> float:
        return self.compute_j + self.comm_j + self.idle_j

    def joules_per_image(self) -> float:
        return self.total_j


class EnergyModel:
    """Energy per image for each execution mode, on top of the latency model.

    Both devices are powered whenever they are online; a device that is not
    computing during the system's per-image window burns idle power for the
    remainder — which is exactly why parking the Worker (the Dynamic DNN's
    "HT") is less efficient than using it (the Fluid HT mode).
    """

    def __init__(self, master: PowerProfile, worker: PowerProfile) -> None:
        self.power: Dict[str, PowerProfile] = {"master": master, "worker": worker}

    def for_breakdown(
        self, breakdown: ThroughputBreakdown, devices_online: int = 2
    ) -> EnergyBreakdown:
        """Energy of one *system image* under a throughput breakdown.

        Args:
            breakdown: latency components from the throughput model.
            devices_online: how many devices are powered (a dead device
                draws nothing).
        """
        if breakdown.throughput_ips == 0:
            return EnergyBreakdown(breakdown.mode, 0.0, 0.0, 0.0)
        window = breakdown.latency_s
        p_m, p_w = self.power["master"], self.power["worker"]

        if breakdown.mode == "HT":
            # Both devices stream independently; per system-image window we
            # normalise to the combined rate: each device contributes its
            # active power for its share of the window.
            compute = (p_m.active_w + p_w.active_w) * window
            # Per-image window at the combined rate — no idle gap, no comm.
            return EnergyBreakdown("HT", compute, 0.0, 0.0)

        compute = p_m.active_w * breakdown.compute_master_s
        idle = p_m.idle_w * max(0.0, window - breakdown.compute_master_s)
        comm = 0.0
        if devices_online == 2:
            compute += p_w.active_w * breakdown.compute_worker_s
            idle += p_w.idle_w * max(0.0, window - breakdown.compute_worker_s)
            comm = (p_m.comm_w + p_w.comm_w) * breakdown.comm_s
        return EnergyBreakdown(breakdown.mode, compute, comm, idle)

    def joules_per_image(
        self, breakdown: ThroughputBreakdown, devices_online: int = 2
    ) -> float:
        """Energy per image = power over one system-image window.

        ``latency_s`` is already the per-image window at the system rate
        (for HT that is the *combined* rate), so the window energy is the
        per-image energy in every mode.
        """
        return self.for_breakdown(breakdown, devices_online).total_j

    def efficiency_images_per_joule(
        self, breakdown: ThroughputBreakdown, devices_online: int = 2
    ) -> float:
        jpi = self.joules_per_image(breakdown, devices_online)
        return 1.0 / jpi if jpi > 0 else 0.0
