"""Edge-device emulation: profiles, cost model, failure injection."""

from repro.device.cost import (
    LayerCost,
    WIRE_BYTES_PER_VALUE,
    input_image_bytes,
    partitioned_device_costs,
    subnet_flops,
    subnet_layer_costs,
    subnet_num_layers,
    subnet_param_count,
    wire_bytes_per_value,
)
from repro.device.emulated import DeviceFailed, EmulatedDevice
from repro.device.energy import (
    EnergyBreakdown,
    EnergyModel,
    PowerProfile,
    jetson_nx_power,
)
from repro.device.failure import (
    CrashCounter,
    FailureEvent,
    FailureSchedule,
    no_failures,
    single_failure,
)
from repro.device.profiles import DeviceProfile, jetson_nx_master, jetson_nx_worker

__all__ = [
    "DeviceProfile",
    "jetson_nx_master",
    "jetson_nx_worker",
    "LayerCost",
    "WIRE_BYTES_PER_VALUE",
    "wire_bytes_per_value",
    "subnet_layer_costs",
    "subnet_flops",
    "subnet_num_layers",
    "subnet_param_count",
    "partitioned_device_costs",
    "input_image_bytes",
    "EmulatedDevice",
    "DeviceFailed",
    "PowerProfile",
    "EnergyModel",
    "EnergyBreakdown",
    "jetson_nx_power",
    "FailureEvent",
    "FailureSchedule",
    "single_failure",
    "no_failures",
    "CrashCounter",
]
