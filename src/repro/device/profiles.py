"""Edge-device profiles.

The paper measures on the CPU of two Nvidia Jetson Xavier NX boards.  We
have no such hardware, so devices are characterised by a two-term latency
model calibrated against the paper's own reported operating points (see
:mod:`repro.experiments.calibration`):

    t(sub-network) = flops / flops_per_sec + num_layers * layer_overhead_s

The second term captures per-layer framework overhead, which dominates for
tiny models (the paper's model is ~1.4 MFLOP; pure-FLOP scaling cannot
explain its 11–28 image/s numbers, but FLOPs + per-layer overhead can).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DeviceProfile:
    """Static description of one edge device's compute behaviour.

    Args:
        name: device identifier (e.g. ``"master"``).
        flops_per_sec: effective arithmetic throughput.
        layer_overhead_s: fixed cost per executed layer (framework overhead).
        memory_capacity_params: max parameter count the device can host; the
            paper's premise is that a single device cannot host the full
            model, which is what forces distribution in the first place.
    """

    name: str
    flops_per_sec: float
    layer_overhead_s: float
    memory_capacity_params: int

    def __post_init__(self) -> None:
        if self.flops_per_sec <= 0:
            raise ValueError("flops_per_sec must be positive")
        if self.layer_overhead_s < 0:
            raise ValueError("layer_overhead_s must be non-negative")
        if self.memory_capacity_params <= 0:
            raise ValueError("memory_capacity_params must be positive")

    def compute_time(self, flops: float, num_layers: int) -> float:
        """Seconds to execute ``flops`` spread over ``num_layers`` layers."""
        if flops < 0 or num_layers < 0:
            raise ValueError("flops and num_layers must be non-negative")
        return flops / self.flops_per_sec + num_layers * self.layer_overhead_s

    def scaled(self, factor: float) -> "DeviceProfile":
        """A profile ``factor`` times faster (overheads shrink too)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(
            self,
            flops_per_sec=self.flops_per_sec * factor,
            layer_overhead_s=self.layer_overhead_s / factor,
        )


# Calibrated against the paper's own Fig. 2 operating points (see
# repro.experiments.calibration for the derivation):
#   * lone 50% model (402,976 FLOP, 4 layers) on the Master -> 14.4 image/s
#   * lone upper-50% model on the Worker                     -> 13.9 image/s
#   * width-partitioned 100% model (685,216 FLOP per device) plus the
#     offline-measured comm cost                              -> 11.1 image/s
# The capacity bound (60% of the full model's 12,650 parameters) encodes the
# paper's premise that neither device can host the 100% model alone.
def jetson_nx_master() -> DeviceProfile:
    """Master-side Jetson Xavier NX CPU stand-in."""
    return DeviceProfile(
        name="master",
        flops_per_sec=2.0e7,
        layer_overhead_s=0.0123238,
        memory_capacity_params=7600,
    )


def jetson_nx_worker() -> DeviceProfile:
    """Worker-side Jetson Xavier NX CPU stand-in.

    Higher per-layer overhead but faster arithmetic than the master — net
    effect: slightly slower on the paper's small model (13.9 vs 14.4
    image/s on the lone 50% model), as Fig. 2 reports.
    """
    return DeviceProfile(
        name="worker",
        flops_per_sec=2.43e7,
        layer_overhead_s=0.0138398,
        memory_capacity_params=7600,
    )
