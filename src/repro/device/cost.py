"""Per-layer cost accounting for sub-networks and partitions.

Everything the latency and throughput models need to know about a
sub-network's execution: per-layer FLOPs, layer count, and the activation
tensor sizes that cross the device boundary in partitioned (High-Accuracy)
mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.nn import functional as F
from repro.slimmable.slim_net import SlimmableConvNet
from repro.slimmable.spec import SubNetSpec

WIRE_BYTES_PER_VALUE = 4  # activations cross the wire as float32


@dataclass(frozen=True)
class LayerCost:
    """Cost facts for one layer of an activated sub-network."""

    name: str
    flops: int
    out_channels: int
    out_spatial: int  # H*W of the layer output after pooling (1 for FC)

    @property
    def activation_values(self) -> int:
        return self.out_channels * self.out_spatial

    @property
    def activation_bytes(self) -> int:
        return self.activation_values * WIRE_BYTES_PER_VALUE


def subnet_layer_costs(net: SlimmableConvNet, spec: SubNetSpec) -> List[LayerCost]:
    """Per-layer costs of running ``spec`` end-to-end on one device."""
    net.set_active(spec)
    costs: List[LayerCost] = []
    size = net.image_size
    for i, conv in enumerate(net.convs):
        flops = conv.flops_per_image(size, size)
        if i in net.pools:
            size //= 2
        costs.append(
            LayerCost(
                name=f"conv{i}",
                flops=flops,
                out_channels=conv.out_slice.width,
                out_spatial=size * size,
            )
        )
    costs.append(
        LayerCost(
            name="fc",
            flops=net.classifier.flops_per_image(),
            out_channels=net.classifier.out_features,
            out_spatial=1,
        )
    )
    return costs


def subnet_flops(net: SlimmableConvNet, spec: SubNetSpec) -> int:
    return sum(c.flops for c in subnet_layer_costs(net, spec))


def subnet_num_layers(net: SlimmableConvNet) -> int:
    """Executable layer count (convs + classifier) for overhead accounting."""
    return len(net.convs) + 1


def partitioned_device_costs(
    net: SlimmableConvNet, spec: SubNetSpec, split: int
) -> Tuple[List[LayerCost], List[LayerCost], List[int]]:
    """Costs of width-partitioned (High-Accuracy) execution of ``spec``.

    The Master computes output channels ``[0, split)`` of every conv and the
    lower feature half of the classifier; the Worker computes channels
    ``[split, stop)`` and the upper half.  Both read the *full* input
    activation of each layer, which is what forces the per-layer exchange.

    Returns ``(master_costs, worker_costs, exchange_bytes)`` where
    ``exchange_bytes[i]`` is the number of bytes device *i*'s half of layer
    *i*'s output occupies on the wire (each device sends its half and
    receives the other's; the final entry is the Worker's partial logits).
    """
    full = spec.conv_slices[0]
    if not (full.start == 0 and split < full.stop):
        raise ValueError(
            f"partition split {split} must fall inside the combined slice {full}"
        )
    total = subnet_layer_costs(net, spec)
    master: List[LayerCost] = []
    worker: List[LayerCost] = []
    exchange: List[int] = []
    for cost in total:
        if cost.name == "fc":
            # Each side multiplies its half of the features; the Worker ships
            # its partial logits (out_channels values) to the Master.
            half_flops = cost.flops // 2
            master.append(LayerCost("fc", half_flops, cost.out_channels, 1))
            worker.append(LayerCost("fc", cost.flops - half_flops, cost.out_channels, 1))
            exchange.append(cost.out_channels * WIRE_BYTES_PER_VALUE)
        else:
            out_low = split
            out_high = cost.out_channels - split
            if out_high <= 0:
                raise ValueError(
                    f"layer {cost.name} has {cost.out_channels} channels; "
                    f"cannot split at {split}"
                )
            flops_low = cost.flops * out_low // cost.out_channels
            master.append(LayerCost(cost.name, flops_low, out_low, cost.out_spatial))
            worker.append(
                LayerCost(cost.name, cost.flops - flops_low, out_high, cost.out_spatial)
            )
            # All-gather: the larger half bounds the (full-duplex) exchange.
            half_values = max(out_low, out_high) * cost.out_spatial
            exchange.append(half_values * WIRE_BYTES_PER_VALUE)
    return master, worker, exchange


def subnet_param_count(net: SlimmableConvNet, spec: SubNetSpec) -> int:
    """Parameter count of a standalone sub-network (for memory-capacity checks)."""
    net.set_active(spec)
    total = 0
    for conv, s in zip(net.convs, spec.conv_slices):
        total += s.width * conv.in_slice.width * conv.kernel_size**2 + s.width
    feat = net.feature_slice_for(spec.last_slice)
    total += net.classifier.out_features * (feat.width + 1)
    return total


def input_image_bytes(net: SlimmableConvNet) -> int:
    """Wire size of one input image."""
    return net.in_channels * net.image_size**2 * WIRE_BYTES_PER_VALUE
