"""Per-layer cost accounting for sub-networks and partitions.

Everything the latency and throughput models need to know about a
sub-network's execution: per-layer FLOPs, layer count, and the activation
tensor sizes that cross the device boundary in partitioned (High-Accuracy)
mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.nn import functional as F
from repro.slimmable.slim_net import SlimmableConvNet
from repro.slimmable.spec import SubNetSpec
from repro.utils.dtypes import get_dtype_policy

#: Historical default (activations cross the wire as float32).  Retained as
#: the documented baseline; live accounting goes through
#: :func:`wire_bytes_per_value`, which reads the active dtype policy so the
#: cost model stays honest when a policy ships float64 activations.
WIRE_BYTES_PER_VALUE = 4


def wire_bytes_per_value() -> int:
    """Itemsize of one activation value on the device boundary.

    Exchanged activations are cast with
    :func:`~repro.comm.wire.cast_for_wire` before they cross, so the honest
    per-value byte count is the policy wire dtype's itemsize — 4 under the
    default float32 wire, 8 when a policy demands full-precision exchange.
    """
    return int(get_dtype_policy().wire_dtype.itemsize)


@dataclass(frozen=True)
class LayerCost:
    """Cost facts for one layer of an activated sub-network."""

    name: str
    flops: int
    out_channels: int
    out_spatial: int  # H*W of the layer output after pooling (1 for FC)

    @property
    def activation_values(self) -> int:
        return self.out_channels * self.out_spatial

    @property
    def activation_bytes(self) -> int:
        return self.activation_values * wire_bytes_per_value()


def subnet_layer_costs(net: SlimmableConvNet, spec: SubNetSpec) -> List[LayerCost]:
    """Per-layer costs of running ``spec`` end-to-end on one device.

    Stateless: slices are resolved from ``spec`` directly, so cost queries
    never disturb the net's active defaults (they run on live serve paths).
    """
    costs: List[LayerCost] = []
    size = net.image_size
    prev = None
    for i, (conv, out_slice) in enumerate(zip(net.convs, spec.conv_slices)):
        in_slice, out_slice = conv.resolve_slices(prev, out_slice)
        flops = conv.flops_per_image(size, size, in_slice=in_slice, out_slice=out_slice)
        if i in net.pools:
            size //= 2
        costs.append(
            LayerCost(
                name=f"conv{i}",
                flops=flops,
                out_channels=out_slice.width,
                out_spatial=size * size,
            )
        )
        prev = out_slice
    costs.append(
        LayerCost(
            name="fc",
            flops=net.classifier.flops_per_image(net.feature_slice_for(spec.last_slice)),
            out_channels=net.classifier.out_features,
            out_spatial=1,
        )
    )
    return costs


def subnet_flops(net: SlimmableConvNet, spec: SubNetSpec) -> int:
    return sum(c.flops for c in subnet_layer_costs(net, spec))


def subnet_num_layers(net: SlimmableConvNet) -> int:
    """Executable layer count (convs + classifier) for overhead accounting."""
    return len(net.convs) + 1


def block_partitioned_costs(
    net: SlimmableConvNet, spec: SubNetSpec, boundaries: Tuple[int, ...]
) -> Tuple[List[List[LayerCost]], List[int]]:
    """Costs of width-partitioned (High-Accuracy) execution over N blocks.

    Device ``k`` computes output channels ``[boundaries[k], boundaries[k+1])``
    of every conv (clipped to the layer's width) and its share of the
    classifier.  Every device reads the *full* input activation of each
    layer, which is what forces the per-layer all-gather.

    Returns ``(per_device_costs, exchange_bytes)`` where
    ``per_device_costs[k][i]`` is device ``k``'s cost for layer ``i`` and
    ``exchange_bytes[i]`` bounds the (full-duplex) per-layer exchange: the
    widest complement any device must receive, with the final entry the
    partial-logit gather.
    """
    if len(boundaries) < 3 or boundaries[0] != 0 or list(boundaries) != sorted(set(boundaries)):
        raise ValueError(f"bad block boundaries {boundaries!r}")
    if spec.conv_slices[0].start != 0:
        raise ValueError("partitioned execution applies to combined (lower-anchored) specs")
    num_blocks = len(boundaries) - 1
    total = subnet_layer_costs(net, spec)
    per_device: List[List[LayerCost]] = [[] for _ in range(num_blocks)]
    exchange: List[int] = []
    for cost in total:
        if cost.name == "fc":
            # Each device multiplies its share of the features; all but one
            # ship their partial logits (out_channels values each).
            share = cost.flops // num_blocks
            for k in range(num_blocks):
                flops_k = share if k < num_blocks - 1 else cost.flops - share * (num_blocks - 1)
                per_device[k].append(LayerCost("fc", flops_k, cost.out_channels, 1))
            exchange.append((num_blocks - 1) * cost.out_channels * wire_bytes_per_value())
        else:
            widths = []
            for k in range(num_blocks):
                start = min(boundaries[k], cost.out_channels)
                stop = min(boundaries[k + 1], cost.out_channels)
                if stop <= start:
                    raise ValueError(
                        f"layer {cost.name} has {cost.out_channels} channels; "
                        f"block [{boundaries[k]}, {boundaries[k + 1]}) is empty"
                    )
                widths.append(stop - start)
            assigned = 0
            for k, width in enumerate(widths):
                if k < num_blocks - 1:
                    flops_k = cost.flops * width // cost.out_channels
                    assigned += flops_k
                else:
                    flops_k = cost.flops - assigned
                per_device[k].append(LayerCost(cost.name, flops_k, width, cost.out_spatial))
            # All-gather: the widest complement bounds the exchange.
            complement = cost.out_channels - min(widths)
            exchange.append(complement * cost.out_spatial * wire_bytes_per_value())
    return per_device, exchange


def partitioned_device_costs(
    net: SlimmableConvNet, spec: SubNetSpec, split: int
) -> Tuple[List[LayerCost], List[LayerCost], List[int]]:
    """Two-device specialisation of :func:`block_partitioned_costs`.

    The Master computes output channels ``[0, split)``, the Worker
    ``[split, stop)``.  Returns ``(master_costs, worker_costs,
    exchange_bytes)``.
    """
    full = spec.conv_slices[0]
    if not (full.start == 0 and split < full.stop):
        raise ValueError(
            f"partition split {split} must fall inside the combined slice {full}"
        )
    per_device, exchange = block_partitioned_costs(
        net, spec, (0, split, spec.last_slice.stop)
    )
    return per_device[0], per_device[1], exchange


def subnet_param_count(net: SlimmableConvNet, spec: SubNetSpec) -> int:
    """Parameter count of a standalone sub-network (for memory-capacity checks)."""
    total = 0
    prev = None
    for conv, s in zip(net.convs, spec.conv_slices):
        in_slice, s = conv.resolve_slices(prev, s)
        total += s.width * in_slice.width * conv.kernel_size**2 + s.width
        prev = s
    feat = net.feature_slice_for(spec.last_slice)
    total += net.classifier.out_features * (feat.width + 1)
    return total


def input_image_bytes(net: SlimmableConvNet) -> int:
    """Wire size of one input image."""
    return net.in_channels * net.image_size**2 * wire_bytes_per_value()
