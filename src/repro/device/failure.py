"""Failure injection.

Physical devices "could completely fail due to factors such as power
outages and hardware/software failures" (paper §I).  A
:class:`FailureSchedule` scripts such events for the emulated cluster and
the analytical scenarios; the runtime monitor observes only their effect
(missed heartbeats / dead sockets), never the schedule itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class FailureEvent:
    """A scripted device failure (or recovery)."""

    time_s: float
    device: str
    kind: str = "crash"  # "crash" | "recover"

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("event time must be non-negative")
        if self.kind not in ("crash", "recover"):
            raise ValueError(f"unknown failure kind {self.kind!r}")


@dataclass
class FailureSchedule:
    """Ordered failure/recovery script consulted by emulated devices."""

    events: List[FailureEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda e: e.time_s)

    def add(self, event: FailureEvent) -> None:
        self.events.append(event)
        self.events.sort(key=lambda e: e.time_s)

    def is_alive(self, device: str, now_s: float) -> bool:
        """Device liveness at time ``now_s`` after replaying the script."""
        alive = True
        for event in self.events:
            if event.time_s > now_s:
                break
            if event.device == device:
                alive = event.kind == "recover"
        return alive

    def crash_time(self, device: str) -> Optional[float]:
        """First crash time for ``device``, or None if it never crashes."""
        for event in self.events:
            if event.device == device and event.kind == "crash":
                return event.time_s
        return None


def single_failure(device: str, at_s: float = 0.0) -> FailureSchedule:
    """Schedule in which exactly one device crashes and never recovers."""
    return FailureSchedule([FailureEvent(at_s, device, "crash")])


def no_failures() -> FailureSchedule:
    return FailureSchedule([])


class CrashCounter:
    """Crash-on-Nth-request trigger for the live emulated device.

    Used by integration tests to make a worker die mid-stream
    deterministically, without wall-clock dependence.
    """

    def __init__(self, crash_after_requests: Optional[int] = None) -> None:
        if crash_after_requests is not None and crash_after_requests < 0:
            raise ValueError("crash_after_requests must be non-negative")
        self.crash_after_requests = crash_after_requests
        self.requests_seen = 0

    def record_request(self) -> bool:
        """Count a request; returns True if the device should now crash."""
        self.requests_seen += 1
        if self.crash_after_requests is None:
            return False
        return self.requests_seen > self.crash_after_requests
