"""Failure injection (device-plane adapter over :mod:`repro.faults.plan`).

Physical devices "could completely fail due to factors such as power
outages and hardware/software failures" (paper §I).  The scripted
schedule types that model this grew into the serving plane's
general fault taxonomy (:class:`~repro.faults.plan.FaultPlan`); this
module keeps the historical device-plane names and helpers as thin
aliases so every existing import path keeps working:

* :class:`FailureEvent` *is* :class:`~repro.faults.plan.FaultEvent`
  (``device`` is an alias property for the generalised ``target``);
* :class:`FailureSchedule` *is* :class:`~repro.faults.plan.FaultPlan`
  (``is_alive`` / ``crash_time`` semantics are unchanged — only
  ``crash`` / ``recover`` events affect liveness).

:class:`CrashCounter` stays here: a crash-on-Nth-request trigger is a
live-device behaviour, not a scripted timeline.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.plan import FaultEvent, FaultPlan

FailureEvent = FaultEvent
FailureSchedule = FaultPlan


def single_failure(device: str, at_s: float = 0.0) -> FailureSchedule:
    """Schedule in which exactly one device crashes and never recovers."""
    return FailureSchedule([FailureEvent(at_s, device, "crash")])


def no_failures() -> FailureSchedule:
    return FailureSchedule([])


class CrashCounter:
    """Crash-on-Nth-request trigger for the live emulated device.

    Used by integration tests to make a worker die mid-stream
    deterministically, without wall-clock dependence.
    """

    def __init__(self, crash_after_requests: Optional[int] = None) -> None:
        if crash_after_requests is not None and crash_after_requests < 0:
            raise ValueError("crash_after_requests must be non-negative")
        self.crash_after_requests = crash_after_requests
        self.requests_seen = 0

    def record_request(self) -> bool:
        """Count a request; returns True if the device should now crash."""
        self.requests_seen += 1
        if self.crash_after_requests is None:
            return False
        return self.requests_seen > self.crash_after_requests
