"""Training algorithms: plain, incremental [3] and nested incremental (Alg. 1)."""

from repro.training.callbacks import Callback, EarlyStopping, LoggingCallback
from repro.training.history import EpochRecord, History
from repro.training.incremental import IncrementalTrainer
from repro.training.nested_incremental import NestedIncrementalTrainer, NestedTrainConfig
from repro.training.revival import find_dead_channels, revive_dead_channels
from repro.training.recipes import (
    RecipeConfig,
    train_dynamic,
    train_family,
    train_fluid,
    train_static,
)
from repro.training.trainer import TrainConfig, Trainer, evaluate_view

__all__ = [
    "Trainer",
    "TrainConfig",
    "evaluate_view",
    "IncrementalTrainer",
    "NestedIncrementalTrainer",
    "NestedTrainConfig",
    "find_dead_channels",
    "revive_dead_channels",
    "RecipeConfig",
    "train_static",
    "train_dynamic",
    "train_fluid",
    "train_family",
    "History",
    "EpochRecord",
    "Callback",
    "LoggingCallback",
    "EarlyStopping",
]
