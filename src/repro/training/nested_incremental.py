"""Nested incremental training — the paper's Algorithm 1.

Per iteration:

1. (lines 2–5) Train the base Dynamic DNN incrementally over the lower
   family ``25% → 50% → 75% → 100%``, freezing previously trained regions
   within the iteration.
2. (lines 6–10) Train the *nested* Dynamic DNN — the upper sub-networks
   (``upper 25% → upper 50%``) — incrementally, so they become usable
   standalone.  "Copy corresponding weights from the 100% model" and "copy
   the re-trained weights back" are no-ops under shared weight storage: the
   upper views literally alias the 100% model's upper blocks, which is the
   same weight-reuse the paper describes.

Because retraining the upper blocks perturbs the combined 75%/100% models,
the whole schedule is repeated for ``niters`` iterations with a decayed
learning rate ("Reusing the weights ... is nontrivial; therefore, we
fine-tune all the models for multiple iterations").

Every stage runs through the stateless context API (one
:class:`~repro.nn.context.ForwardContext` per optimisation step inside
:class:`~repro.training.trainer.Trainer`), so interleaving lower and upper
views over the shared store never leaves activation state behind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.models.base import ModelFamily
from repro.slimmable.masks import RegionTracker
from repro.training.callbacks import Callback
from repro.training.history import History
from repro.training.revival import revive_dead_channels
from repro.training.trainer import TrainConfig, Trainer
from repro.utils.rng import check_rng


@dataclass(frozen=True)
class NestedTrainConfig:
    """Hyper-parameters for Algorithm 1.

    Args:
        base: per-stage config for the lower-family pass.
        upper: per-stage config for the upper-family pass (defaults to
            ``base`` with a halved learning rate — the upper pass is a
            fine-tune of weights that already work in combined mode).
        niters: Algorithm 1's outer iteration count.
        lr_decay: learning-rate multiplier applied per outer iteration.
        revive_dead_units: re-initialise dead (all-zero ReLU) trainable
            channels before each upper stage.  Required for the paper's
            tiny model: base training can kill upper-block channels that a
            standalone upper sub-network then cannot recover by gradient
            descent (see :mod:`repro.training.revival`).
    """

    base: TrainConfig = TrainConfig()
    upper: Optional[TrainConfig] = None
    niters: int = 2
    lr_decay: float = 0.5
    revive_dead_units: bool = True

    def __post_init__(self) -> None:
        if self.niters <= 0:
            raise ValueError("niters must be positive")
        if not 0 < self.lr_decay <= 1:
            raise ValueError("lr_decay must be in (0, 1]")

    def upper_config(self) -> TrainConfig:
        return self.upper if self.upper is not None else self.base.scaled_lr(0.5)


class NestedIncrementalTrainer:
    """Implements Algorithm 1 over a Fluid DyDNN."""

    def __init__(
        self,
        callbacks: Optional[Sequence[Callback]] = None,
        *,
        freeze_classifier_bias: bool = False,
    ) -> None:
        self.trainer = Trainer(callbacks)
        self.freeze_classifier_bias = freeze_classifier_bias

    def fit(
        self,
        model: ModelFamily,
        train_set: ArrayDataset,
        config: NestedTrainConfig,
        *,
        rng: np.random.Generator,
        val_set: Optional[ArrayDataset] = None,
    ) -> History:
        check_rng(rng, "NestedIncrementalTrainer.fit")
        net = model.net
        history = History()

        for iteration in range(config.niters):
            decay = config.lr_decay**iteration
            base_cfg = config.base.scaled_lr(decay)
            upper_cfg = config.upper_config().scaled_lr(decay)
            prefix = f"iter{iteration}/"

            # Lines 2-5: incremental pass over the lower family.  The freeze
            # tracker is reset per iteration so each fine-tuning round may
            # re-touch every region while preserving incremental ordering
            # inside the round.
            tracker = RegionTracker()
            for spec in model.width_spec.lower_family():
                net.apply_freeze(spec, tracker)
                history.extend(
                    self.trainer.fit(
                        net.view(spec),
                        train_set,
                        base_cfg,
                        rng=rng,
                        val_set=val_set,
                        stage=f"{prefix}{spec.name}",
                    )
                )
                self._mark(net, spec, tracker)

            # Lines 6-10: incremental pass over the upper family.  Weight
            # copy-in/copy-out is implicit (views alias the shared store).
            upper_tracker = RegionTracker()
            for spec in model.width_spec.upper_family():
                if config.revive_dead_units:
                    probe, _ = train_set[np.arange(min(128, len(train_set)))]
                    revive_dead_channels(net, spec, probe, rng, upper_tracker)
                net.apply_freeze(spec, upper_tracker)
                history.extend(
                    self.trainer.fit(
                        net.view(spec),
                        train_set,
                        upper_cfg,
                        rng=rng,
                        val_set=val_set,
                        stage=f"{prefix}{spec.name}",
                    )
                )
                self._mark(net, spec, upper_tracker)

        net.clear_freeze()
        return history

    def _mark(self, net, spec, tracker: RegionTracker) -> None:
        for param, region in net.region_masks(spec):
            if param is net.classifier.bias and not self.freeze_classifier_bias:
                continue
            tracker.mark(param, region)
