"""Training history records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class EpochRecord:
    """Metrics for one epoch of one training stage."""

    stage: str
    epoch: int
    train_loss: float
    train_accuracy: float
    val_accuracy: Optional[float] = None
    lr: Optional[float] = None


@dataclass
class History:
    """Accumulated epoch records across stages (and Algorithm 1 iterations)."""

    records: List[EpochRecord] = field(default_factory=list)

    def add(self, record: EpochRecord) -> None:
        self.records.append(record)

    def extend(self, other: "History") -> None:
        self.records.extend(other.records)

    def stages(self) -> List[str]:
        seen: List[str] = []
        for rec in self.records:
            if rec.stage not in seen:
                seen.append(rec.stage)
        return seen

    def for_stage(self, stage: str) -> List[EpochRecord]:
        return [rec for rec in self.records if rec.stage == stage]

    def final_loss(self, stage: Optional[str] = None) -> float:
        recs = self.for_stage(stage) if stage else self.records
        if not recs:
            raise ValueError("no records")
        return recs[-1].train_loss

    def best_val_accuracy(self) -> Optional[float]:
        vals = [rec.val_accuracy for rec in self.records if rec.val_accuracy is not None]
        return max(vals) if vals else None

    def to_dicts(self) -> List[Dict]:
        return [vars(rec) for rec in self.records]

    def __len__(self) -> int:
        return len(self.records)
