"""Plain supervised trainer.

Trains any Module-like object (including
:class:`~repro.slimmable.SubNetworkView`) with SGD+momentum and softmax
cross-entropy.  The incremental and nested-incremental trainers are built
on top of this primitive — they differ only in which view they train and
which freeze masks are installed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.data.loader import DataLoader
from repro.nn.context import ForwardContext
from repro.nn.loss import SoftmaxCrossEntropy
from repro.nn.optim.sgd import SGD
from repro.training.callbacks import Callback
from repro.training.history import EpochRecord, History
from repro.utils.rng import check_rng


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters for one training stage."""

    epochs: int = 3
    batch_size: int = 64
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 0.0

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.lr <= 0:
            raise ValueError("lr must be positive")
        if not 0 <= self.momentum < 1:
            raise ValueError("momentum must be in [0, 1)")
        if self.weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")

    def scaled_lr(self, factor: float) -> "TrainConfig":
        """Copy with the learning rate multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return TrainConfig(
            epochs=self.epochs,
            batch_size=self.batch_size,
            lr=self.lr * factor,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
        )


class Trainer:
    """Single-model trainer (softmax cross-entropy, SGD with momentum)."""

    def __init__(self, callbacks: Optional[Sequence[Callback]] = None) -> None:
        self.loss_fn = SoftmaxCrossEntropy()
        self.callbacks = list(callbacks or [])

    def fit(
        self,
        model,
        train_set: ArrayDataset,
        config: TrainConfig,
        *,
        rng: np.random.Generator,
        val_set: Optional[ArrayDataset] = None,
        stage: str = "train",
    ) -> History:
        """Train ``model`` and return the per-epoch history.

        ``model`` must implement forward/backward/parameters/zero_grad (all
        Modules and SubNetworkViews do).
        """
        check_rng(rng, "Trainer.fit")
        history = History()
        optimizer = SGD(
            model.parameters(),
            lr=config.lr,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
        loader = DataLoader(train_set, config.batch_size, shuffle=True, rng=rng)
        for cb in self.callbacks:
            cb.on_stage_start(stage)

        model.train(True)
        stop = False
        for epoch in range(config.epochs):
            epoch_loss = 0.0
            epoch_correct = 0
            seen = 0
            for x, y in loader:
                # One context per step carries the activation tape from
                # forward to backward; the model itself stays stateless.
                ctx = ForwardContext()
                logits = model.forward(x, ctx)
                loss, grad = self.loss_fn(logits, y)
                optimizer.zero_grad()
                model.backward(grad, ctx)
                optimizer.step()
                epoch_loss += loss * len(y)
                epoch_correct += int((logits.argmax(axis=1) == y).sum())
                seen += len(y)

            val_acc = None
            if val_set is not None:
                val_acc = evaluate_view(model, val_set)
                model.train(True)
            record = EpochRecord(
                stage=stage,
                epoch=epoch,
                train_loss=epoch_loss / seen,
                train_accuracy=epoch_correct / seen,
                val_accuracy=val_acc,
                lr=optimizer.lr,
            )
            history.add(record)
            for cb in self.callbacks:
                stop = cb.on_epoch_end(record) or stop
            if stop:
                break

        for cb in self.callbacks:
            cb.on_stage_end(stage)
        model.train(False)
        return history


def evaluate_view(model, dataset: ArrayDataset, batch_size: int = 256) -> float:
    """Top-1 accuracy of a model/view over a dataset (in [0, 1])."""
    model.train(False)
    correct = 0
    for start in range(0, len(dataset), batch_size):
        idx = np.arange(start, min(start + batch_size, len(dataset)))
        x, y = dataset[idx]
        logits = model.forward(x, ForwardContext(recording=False))
        correct += int((logits.argmax(axis=1) == y).sum())
    return correct / len(dataset)
