"""End-to-end training recipes for the three model families.

These are the exact procedures the experiment harness uses: one call per
family, equalised training budget, deterministic per seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.models.base import ModelFamily
from repro.models.dynamic_dnn import DynamicDNN
from repro.models.fluid_dydnn import FluidDyDNN
from repro.models.static_dnn import StaticDNN
from repro.models.zoo import build_model
from repro.slimmable.spec import WidthSpec, paper_width_spec
from repro.training.history import History
from repro.training.incremental import IncrementalTrainer
from repro.training.nested_incremental import NestedIncrementalTrainer, NestedTrainConfig
from repro.training.trainer import TrainConfig, Trainer
from repro.utils.rng import check_rng


@dataclass(frozen=True)
class RecipeConfig:
    """Shared knobs for all three family recipes."""

    stage: TrainConfig = TrainConfig(epochs=2, batch_size=64, lr=0.05, momentum=0.9)
    niters: int = 2
    lr_decay: float = 0.5

    def nested(self) -> NestedTrainConfig:
        return NestedTrainConfig(
            base=self.stage, niters=self.niters, lr_decay=self.lr_decay
        )


def train_static(
    train_set: ArrayDataset,
    *,
    rng: np.random.Generator,
    width_spec: Optional[WidthSpec] = None,
    config: Optional[RecipeConfig] = None,
    val_set: Optional[ArrayDataset] = None,
) -> Tuple[StaticDNN, History]:
    """Train a Static DNN: plain full-width training.

    The epoch budget is matched to the slimmable recipes' total so accuracy
    comparisons are fair (paper trains each family to convergence).
    """
    check_rng(rng, "train_static")
    cfg = config or RecipeConfig()
    model = build_model("static", width_spec or paper_width_spec(), rng=rng)
    # Match the dynamic recipe's total stage count (4 lower stages x niters).
    total_epochs = cfg.stage.epochs * 4 * cfg.niters
    stage_cfg = TrainConfig(
        epochs=total_epochs,
        batch_size=cfg.stage.batch_size,
        lr=cfg.stage.lr,
        momentum=cfg.stage.momentum,
        weight_decay=cfg.stage.weight_decay,
    )
    history = Trainer().fit(
        model.full_view(), train_set, stage_cfg, rng=rng, val_set=val_set, stage="static/full"
    )
    return model, history


def train_dynamic(
    train_set: ArrayDataset,
    *,
    rng: np.random.Generator,
    width_spec: Optional[WidthSpec] = None,
    config: Optional[RecipeConfig] = None,
    val_set: Optional[ArrayDataset] = None,
) -> Tuple[DynamicDNN, History]:
    """Train a Dynamic DNN with incremental training (paper ref [3]).

    Runs ``niters`` incremental passes with decayed learning rate so its
    budget matches the Fluid recipe's base phase.
    """
    check_rng(rng, "train_dynamic")
    cfg = config or RecipeConfig()
    model = build_model("dynamic", width_spec or paper_width_spec(), rng=rng)
    trainer = IncrementalTrainer()
    history = History()
    for iteration in range(cfg.niters):
        stage_cfg = cfg.stage.scaled_lr(cfg.lr_decay**iteration)
        history.extend(
            trainer.fit(
                model,
                train_set,
                stage_cfg,
                rng=rng,
                val_set=val_set,
                stage_prefix=f"iter{iteration}/",
            )
        )
    return model, history


def train_fluid(
    train_set: ArrayDataset,
    *,
    rng: np.random.Generator,
    width_spec: Optional[WidthSpec] = None,
    config: Optional[RecipeConfig] = None,
    val_set: Optional[ArrayDataset] = None,
) -> Tuple[FluidDyDNN, History]:
    """Train a Fluid DyDNN with nested incremental training (Algorithm 1)."""
    check_rng(rng, "train_fluid")
    cfg = config or RecipeConfig()
    model = build_model("fluid", width_spec or paper_width_spec(), rng=rng)
    trainer = NestedIncrementalTrainer()
    history = trainer.fit(model, train_set, cfg.nested(), rng=rng, val_set=val_set)
    return model, history


def train_family(
    family: str,
    train_set: ArrayDataset,
    *,
    rng: np.random.Generator,
    width_spec: Optional[WidthSpec] = None,
    config: Optional[RecipeConfig] = None,
    val_set: Optional[ArrayDataset] = None,
) -> Tuple[ModelFamily, History]:
    """Dispatch to the family-specific recipe (``static|dynamic|fluid``)."""
    recipes = {"static": train_static, "dynamic": train_dynamic, "fluid": train_fluid}
    if family not in recipes:
        raise ValueError(f"unknown family {family!r}; expected one of {sorted(recipes)}")
    return recipes[family](
        train_set, rng=rng, width_spec=width_spec, config=config, val_set=val_set
    )
