"""Trainer callbacks."""

from __future__ import annotations

from typing import Optional

from repro.training.history import EpochRecord
from repro.utils.logging import get_logger


class Callback:
    """Hook interface; return ``True`` from ``on_epoch_end`` to stop early."""

    def on_stage_start(self, stage: str) -> None:
        pass

    def on_epoch_end(self, record: EpochRecord) -> bool:
        return False

    def on_stage_end(self, stage: str) -> None:
        pass


class LoggingCallback(Callback):
    """Logs per-epoch metrics through the repro logger."""

    def __init__(self, name: str = "train") -> None:
        self.logger = get_logger(f"training.{name}")

    def on_epoch_end(self, record: EpochRecord) -> bool:
        val = f" val_acc={record.val_accuracy:.4f}" if record.val_accuracy is not None else ""
        self.logger.info(
            "stage=%s epoch=%d loss=%.4f acc=%.4f%s",
            record.stage,
            record.epoch,
            record.train_loss,
            record.train_accuracy,
            val,
        )
        return False


class EarlyStopping(Callback):
    """Stops a stage when validation accuracy plateaus.

    Requires the trainer to be given a validation set; epochs without a
    validation score never trigger stopping.
    """

    def __init__(self, patience: int = 3, min_delta: float = 1e-4) -> None:
        if patience <= 0:
            raise ValueError("patience must be positive")
        if min_delta < 0:
            raise ValueError("min_delta must be non-negative")
        self.patience = patience
        self.min_delta = min_delta
        self._best: Optional[float] = None
        self._bad_epochs = 0

    def on_stage_start(self, stage: str) -> None:
        self._best = None
        self._bad_epochs = 0

    def on_epoch_end(self, record: EpochRecord) -> bool:
        if record.val_accuracy is None:
            return False
        if self._best is None or record.val_accuracy > self._best + self.min_delta:
            self._best = record.val_accuracy
            self._bad_epochs = 0
            return False
        self._bad_epochs += 1
        return self._bad_epochs >= self.patience
