"""Dead-unit revival for upper sub-network retraining.

When the base Dynamic DNN trains, some channels of the upper blocks can die
(ReLU output identically zero on the data): the combined model simply
routes around them.  A standalone upper sub-network cannot — with a
4-kernel first layer, even a few dead kernels leave no gradient path and
Algorithm 1's "re-train the model" step (line 8) would start from an
untrainable state.

Revival is the standard remedy: before an upper stage starts, probe the
sub-network on a data batch and re-initialise the *trainable* dead channels
(kaiming weights, small positive bias).  Frozen channels are never touched,
so incremental ordering inside the upper pass is preserved.  This is an
implementation requirement of the paper's tiny model rather than a new
algorithm; DESIGN.md records it.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn import init as nn_init
from repro.nn.context import ForwardContext
from repro.slimmable.masks import RegionTracker
from repro.slimmable.slim_net import SlimmableConvNet
from repro.slimmable.spec import SubNetSpec
from repro.utils.logging import get_logger
from repro.utils.rng import check_rng

_LOGGER = get_logger("training.revival")
_REVIVED_BIAS = 0.01


def find_dead_channels(
    net: SlimmableConvNet, spec: SubNetSpec, probe: np.ndarray
) -> List[List[int]]:
    """Per conv layer: absolute channel indices with all-zero activation.

    ``probe`` is a small input batch; a channel is dead if its post-ReLU
    activation is zero everywhere on it.
    """
    net.set_active(spec)
    dead: List[List[int]] = []
    act = probe
    ctx = ForwardContext(recording=False)
    for i, conv in enumerate(net.convs):
        act = net.relus[i].forward(conv.forward(act, ctx), ctx)
        if i in net.pools:
            act = net.pools[i].forward(act, ctx)
        max_per_channel = act.max(axis=(0, 2, 3))
        offset = spec.conv_slices[i].start
        dead.append([offset + int(c) for c in np.flatnonzero(max_per_channel <= 0.0)])
    return dead


def revive_dead_channels(
    net: SlimmableConvNet,
    spec: SubNetSpec,
    probe: np.ndarray,
    rng: np.random.Generator,
    tracker: Optional[RegionTracker] = None,
) -> int:
    """Re-initialise trainable dead channels of ``spec``; returns the count.

    Layers are processed front to back, re-probing after each revival so
    downstream channels that were dead only because their inputs were dead
    get a chance to come back without re-initialisation.
    """
    check_rng(rng, "revive_dead_channels")
    revived = 0
    for layer_index in range(len(net.convs)):
        dead = find_dead_channels(net, spec, probe)[layer_index]
        if not dead:
            continue
        conv = net.convs[layer_index]
        net.set_active(spec)
        in_width = conv.in_slice.width
        in_start = conv.in_slice.start
        for channel in dead:
            if tracker is not None and not _row_trainable(conv, channel, tracker):
                continue
            row_shape = (1, in_width, conv.kernel_size, conv.kernel_size)
            fresh = nn_init.kaiming_uniform(row_shape, rng)[0]
            conv.weight.data[channel, in_start : in_start + in_width] = fresh
            conv.weight.bump_version()
            conv.bias.data[channel] = _REVIVED_BIAS
            conv.bias.bump_version()
            revived += 1
    if revived:
        _LOGGER.info("revived %d dead channels before stage %s", revived, spec.name)
    return revived


def _row_trainable(conv, channel: int, tracker: RegionTracker) -> bool:
    """Whether any weight of a channel's row escaped earlier-stage freezing."""
    covered = tracker.covered(conv.weight)
    return bool((covered[channel] == 0).any())
