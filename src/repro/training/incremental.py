"""Incremental training — the Dynamic DNN baseline (paper reference [3]).

Sub-networks are trained smallest-first.  After a stage completes, every
weight it touched is frozen (via per-parameter masks), so the next, wider
stage only trains its newly added channel group.  "Copy trained weights to
the next model" in the paper is a no-op here because sub-network views alias
one shared weight store.  Per-stage views carry no activation state of
their own — the trainer threads one :class:`~repro.nn.context.ForwardContext`
per step — so stages can never leak stale tape into each other.

The classifier bias is deliberately left trainable across stages (the head
is shared by all sub-networks); this matches the small accuracy drift
between sub-networks the paper reports.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.models.base import ModelFamily
from repro.slimmable.masks import RegionTracker
from repro.slimmable.spec import SubNetSpec
from repro.training.callbacks import Callback
from repro.training.history import History
from repro.training.trainer import TrainConfig, Trainer
from repro.utils.rng import check_rng


class IncrementalTrainer:
    """Trains the nested lower sub-network family, freezing as it grows."""

    def __init__(
        self,
        callbacks: Optional[Sequence[Callback]] = None,
        *,
        freeze_classifier_bias: bool = False,
    ) -> None:
        self.trainer = Trainer(callbacks)
        self.freeze_classifier_bias = freeze_classifier_bias

    def _stage_specs(self, model: ModelFamily) -> Sequence[SubNetSpec]:
        return model.width_spec.lower_family()

    def fit(
        self,
        model: ModelFamily,
        train_set: ArrayDataset,
        config: TrainConfig,
        *,
        rng: np.random.Generator,
        val_set: Optional[ArrayDataset] = None,
        tracker: Optional[RegionTracker] = None,
        stage_prefix: str = "",
    ) -> History:
        """Run one incremental pass over the lower family (25→50→75→100)."""
        check_rng(rng, "IncrementalTrainer.fit")
        net = model.net
        tracker = tracker if tracker is not None else RegionTracker()
        history = History()
        for spec in self._stage_specs(model):
            view = net.view(spec)
            net.apply_freeze(spec, tracker)
            stage_history = self.trainer.fit(
                view,
                train_set,
                config,
                rng=rng,
                val_set=val_set,
                stage=f"{stage_prefix}{spec.name}",
            )
            history.extend(stage_history)
            self._mark(net, spec, tracker)
        net.clear_freeze()
        return history

    def _mark(self, net, spec: SubNetSpec, tracker: RegionTracker) -> None:
        for param, region in net.region_masks(spec):
            if param is net.classifier.bias and not self.freeze_classifier_bias:
                continue
            tracker.mark(param, region)
