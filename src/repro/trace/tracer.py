"""Low-overhead request-lifecycle tracing.

A :class:`Tracer` collects structured :class:`TraceEvent`\\ s describing
what the serving control plane did to each request — submission,
admission verdict, width decision, micro-batch membership, plan/rung
execution, hedges, reroutes, resolution — into a thread-safe bounded
ring buffer.  The frontend decides *once per request* (deterministically,
from the request id) whether the request is traced; untraced requests
pay only a handful of no-op method calls on :data:`NULL_TRACER`, so
tracing can stay compiled into the hot path without a measurable
goodput cost when disabled.

Timestamps are monotonic-clock offsets from the tracer's ``epoch``
(construction time), so event timelines are directly comparable to the
request arrival offsets the recorder writes.

Engine-side events (:data:`EVENT_ENGINE_ROUND`) carry no request id of
their own; callers that drive the engine on behalf of one request wrap
the call in :meth:`Tracer.scope` and the engine's
``emit_scoped`` attaches the thread-local request id — one request's
timeline then spans the frontend and the engine.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Mapping, Optional

from repro.utils.rng import derive_seed

#: Default ring-buffer capacity (events, not requests).
RING_CAPACITY = 65536

# -- event vocabulary ---------------------------------------------------------
#
# One constant per lifecycle stage; the README "Observability" section is
# the human-readable companion to this list.  Event ``data`` payloads are
# small JSON-friendly dicts.

EVENT_SUBMIT = "submit"            # request entered the frontend
EVENT_ADMISSION = "admission"      # admission verdict (admitted/reason)
EVENT_WIDTH = "width"              # chosen width + predicted vs. budget
EVENT_ENQUEUE = "enqueue"          # leg queued on a (replica, width) queue
EVENT_BATCH = "batch"              # micro-batch membership (batch id, rows)
EVENT_EXECUTE = "execute"          # plan/rung/eager execution of the batch
EVENT_HEDGE = "hedge"              # watchdog fired (or suppressed) a hedge
EVENT_HEDGE_WON = "hedge_won"      # the hedge leg resolved the request
EVENT_HEDGE_LOST = "hedge_lost"    # the primary beat its hedge
EVENT_REROUTE = "reroute"          # leg displaced off a dead replica
EVENT_RESOLVE = "resolve"          # future resolved with a result
EVENT_FAIL = "fail"                # future failed (rejection / loss)
EVENT_ENGINE_ROUND = "engine.round"  # one engine dispatch round (PR 7 counters)
EVENT_FAULT = "fault.inject"         # a FaultPlan event fired (kind, target)
EVENT_RESPAWN = "replica.respawn"    # supervisor returned a replica to routing
EVENT_BROWNOUT_ENTER = "brownout.enter"  # overload valve engaged
EVENT_BROWNOUT_EXIT = "brownout.exit"    # overload valve released

EVENT_VOCABULARY = (
    EVENT_SUBMIT,
    EVENT_ADMISSION,
    EVENT_WIDTH,
    EVENT_ENQUEUE,
    EVENT_BATCH,
    EVENT_EXECUTE,
    EVENT_HEDGE,
    EVENT_HEDGE_WON,
    EVENT_HEDGE_LOST,
    EVENT_REROUTE,
    EVENT_RESOLVE,
    EVENT_FAIL,
    EVENT_ENGINE_ROUND,
    EVENT_FAULT,
    EVENT_RESPAWN,
    EVENT_BROWNOUT_ENTER,
    EVENT_BROWNOUT_EXIT,
)


@dataclass(frozen=True)
class TraceEvent:
    """One structured event on one request's (or the engine's) timeline."""

    request_id: Optional[int]
    t_s: float  # seconds since the tracer's epoch (monotonic clock)
    kind: str
    data: Mapping[str, object] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        return {"t_s": self.t_s, "kind": self.kind, **dict(self.data)}


class NullTracer:
    """The zero-cost disabled tracer: every operation is a no-op.

    The frontend binds this to untraced requests so call sites never
    branch on "is tracing on" — they always emit, and disabled emission
    costs one attribute load plus an empty method call.
    """

    enabled = False
    epoch = 0.0

    def sample(self, request_id: int) -> bool:
        return False

    def emit(self, request_id: Optional[int], kind: str, **data) -> None:
        pass

    def emit_scoped(self, kind: str, **data) -> None:
        pass

    def take(self, request_id: int) -> List[TraceEvent]:
        return []

    def events(self, request_id: Optional[int] = None) -> List[TraceEvent]:
        return []

    def scope(self, request_id: int) -> "_NullScope":
        return _NULL_SCOPE

    def stats(self) -> Dict[str, object]:
        return {"enabled": False, "emitted": 0, "dropped": 0, "sampling": 0.0}


class _NullScope:
    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SCOPE = _NullScope()

#: Shared no-op tracer instance (stateless, safe to share everywhere).
NULL_TRACER = NullTracer()


class _Scope:
    """Context manager binding a request id to the current thread."""

    __slots__ = ("_local", "_request_id", "_previous")

    def __init__(self, local: threading.local, request_id: int) -> None:
        self._local = local
        self._request_id = request_id

    def __enter__(self) -> "_Scope":
        self._previous = getattr(self._local, "request_id", None)
        self._local.request_id = self._request_id
        return self

    def __exit__(self, *exc_info) -> None:
        self._local.request_id = self._previous


class Tracer:
    """Thread-safe, sampled, ring-buffered event collector.

    ``sampling`` is the fraction of requests traced; the per-request
    decision is *deterministic* in ``(seed, request_id)`` (via
    :func:`~repro.utils.rng.derive_seed`), so replaying a trace under the
    same tracer seed samples exactly the same requests.

    The ring (:data:`RING_CAPACITY` most recent events) answers "what
    happened lately"; a per-request side index supports record assembly
    and is bounded by the number of *in-flight* traced requests because
    the frontend :meth:`take`\\ s a request's events at its terminal state.
    """

    enabled = True

    def __init__(
        self,
        *,
        capacity: int = RING_CAPACITY,
        sampling: float = 1.0,
        seed: int = 0,
        clock=time.monotonic,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 <= sampling <= 1.0:
            raise ValueError(f"sampling must be in [0, 1], got {sampling}")
        self.sampling = sampling
        self.seed = seed
        self._clock = clock
        self.epoch = clock()
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        self._by_request: Dict[int, List[TraceEvent]] = {}
        # Recently taken request ids: a hedge/reroute leg straggling past
        # its request's terminal state may still emit — those events stay
        # in the ring but must not re-create per-request index entries
        # nobody will ever take (an unbounded leak on a long-lived server).
        self._closed_order: Deque[int] = deque()
        self._closed: set = set()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._emitted = 0
        self._dropped = 0

    # -- sampling --------------------------------------------------------------

    def sample(self, request_id: int) -> bool:
        """Deterministic per-request trace decision (stable across replays)."""
        if self.sampling >= 1.0:
            return True
        if self.sampling <= 0.0:
            return False
        draw = derive_seed(self.seed, "sample", request_id) / float(2**63)
        return draw < self.sampling

    # -- emission --------------------------------------------------------------

    def emit(self, request_id: Optional[int], kind: str, **data) -> None:
        event = TraceEvent(request_id, self._clock() - self.epoch, kind, data)
        with self._lock:
            if len(self._ring) == self._ring.maxlen:
                self._dropped += 1
            self._ring.append(event)
            self._emitted += 1
            if request_id is not None and request_id not in self._closed:
                self._by_request.setdefault(request_id, []).append(event)

    def emit_scoped(self, kind: str, **data) -> None:
        """Emit under the thread's :meth:`scope`-bound request id (or None)."""
        self.emit(self.current_request(), kind, **data)

    def scope(self, request_id: int) -> _Scope:
        """Bind ``request_id`` to this thread for :meth:`emit_scoped` calls."""
        return _Scope(self._local, request_id)

    def current_request(self) -> Optional[int]:
        return getattr(self._local, "request_id", None)

    # -- consumption -----------------------------------------------------------

    def take(self, request_id: int) -> List[TraceEvent]:
        """Remove and return one request's events (record assembly).

        The id joins a bounded recently-closed set; later emits for it go
        to the ring only (see ``_closed`` above).
        """
        with self._lock:
            if request_id not in self._closed:
                if len(self._closed_order) >= 4096:
                    self._closed.discard(self._closed_order.popleft())
                self._closed_order.append(request_id)
                self._closed.add(request_id)
            return self._by_request.pop(request_id, [])

    def events(self, request_id: Optional[int] = None) -> List[TraceEvent]:
        """Recent events from the ring (optionally one request's)."""
        with self._lock:
            if request_id is None:
                return list(self._ring)
            return [e for e in self._ring if e.request_id == request_id]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events())

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "enabled": True,
                "emitted": self._emitted,
                "dropped": self._dropped,
                "sampling": self.sampling,
                "in_flight_requests": len(self._by_request),
            }
