"""Open-loop trace replay: live (wall-clock) and simulated (virtual time).

A :class:`TraceReplayer` takes a request stream — a scenario-zoo
:class:`~repro.trace.scenarios.TraceSpec`, a recorded artifact, or an
explicit spec list — and re-injects it against a
:class:`~repro.scheduler.frontend.SchedulerConfig` in one of two modes:

* :meth:`TraceReplayer.replay` drives a **real**
  :class:`~repro.scheduler.frontend.ServingFrontend` open-loop: payloads
  are regenerated deterministically from each spec's ``payload_seed``
  (``derive_seed``-namespaced), submission times follow the recorded
  arrival offsets, and outcomes are measured on the wall clock.  This is
  the mode that answers "what does *this machine* do under this trace"
  — and the mode the tracing-overhead benchmark uses.

* :meth:`TraceReplayer.simulate` runs the same stream through a
  **deterministic virtual-time model** of the control plane: real
  admission arithmetic (:class:`~repro.scheduler.admission.AdmissionController`),
  real width-ordering (the analytical cost ratios the
  :class:`~repro.scheduler.width_policy.WidthPolicy` starts from), and a
  faithful per-(replica, width) micro-batch flush model — but service
  times are pure functions of (width, rows), so the same corpus yields
  **bit-identical per-request outcomes** on every run and every machine.
  This is the mode CI pins: miss-rate drift in ``BENCH_trace_replay.json``
  means the scheduler's *decision logic* changed, not that the runner was
  noisy.

The two modes share outcome vocabulary and summary shape with
``scheduler/bench.py``, so replay results read like bench results.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import Counter
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.faults.plan import (
    CRASH,
    DROP,
    HEARTBEAT_DELAY,
    RECOVER,
    STALL,
    FaultEvent,
    FaultPlan,
    target_index,
)
from repro.scheduler.admission import SLA, AdmissionController
from repro.scheduler.telemetry import nearest_rank
from repro.trace.recorder import (
    FAULTS_META_KEY,
    LATE,
    LOST,
    OK,
    OUTCOMES,
    REJECTED,
    RequestRecord,
    RequestSpec,
    TraceRecorder,
    read_specs,
)
from repro.trace.scenarios import TraceSpec, get_scenario
from repro.trace.tracer import (
    EVENT_ADMISSION,
    EVENT_BATCH,
    EVENT_ENQUEUE,
    EVENT_FAIL,
    EVENT_REROUTE,
    EVENT_RESOLVE,
    EVENT_SUBMIT,
    EVENT_WIDTH,
    Tracer,
)
from repro.utils.rng import derive_seed, make_rng

#: Virtual service time of the *narrowest* width for one row, seconds.
#: The other widths scale by their analytical cost ratios — the part of
#: the cost model that is trustworthy (see width_policy docstring).
SIM_NARROWEST_ROW_S = 0.004

#: Marginal cost of each additional batched row, as a fraction of the
#: first row (batching amortisation: a 16-row batch costs ~6.25 rows).
SIM_AMORTIZE = 0.35

#: Virtual seconds a crashed replica stays unroutable in :meth:`simulate`
#: — the analytic stand-in for the supervisor's detect + respawn + warmup.
SIM_RESPAWN_DELAY_S = 0.25


def payload_for(spec: RequestSpec, net) -> np.ndarray:
    """Deterministically regenerate one request's input payload."""
    shape = spec.shape or (1, net.in_channels, net.image_size, net.image_size)
    seed = spec.payload_seed
    if seed is None:
        seed = derive_seed(0, "payload", spec.request_id)
    return make_rng(seed).standard_normal(shape)


def sla_for(spec: RequestSpec) -> SLA:
    return SLA(
        deadline_s=spec.deadline_s,
        priority=spec.priority,
        min_width=spec.min_width,
        max_width=spec.max_width,
    )


def summarize_outcomes(
    records: Sequence[Mapping[str, object]], duration_s: float
) -> Dict[str, object]:
    """Goodput / miss-rate / tail-latency stats (bench-compatible shape)."""
    total = len(records)
    by_outcome = {k: 0 for k in OUTCOMES}
    widths: Dict[str, int] = {}
    for r in records:
        by_outcome[r["outcome"]] += 1
        if r.get("width"):
            widths[r["width"]] = widths.get(r["width"], 0) + 1
    latencies = sorted(
        r["latency_s"] for r in records if r.get("latency_s") is not None
    )
    misses = total - by_outcome[OK]
    return {
        "requests": total,
        "outcomes": by_outcome,
        "widths": dict(sorted(widths.items())),
        "lost": by_outcome[LOST],
        "miss_rate": misses / total if total else 0.0,
        "goodput_rps": by_outcome[OK] / duration_s if duration_s > 0 else 0.0,
        "latency": {
            "p50_s": nearest_rank(latencies, 50) if latencies else None,
            "p95_s": nearest_rank(latencies, 95) if latencies else None,
            "p99_s": nearest_rank(latencies, 99) if latencies else None,
            "max_s": latencies[-1] if latencies else None,
        },
    }


class TraceReplayer:
    """Re-injects a recorded or generated request stream."""

    def __init__(
        self,
        specs: Sequence[RequestSpec],
        *,
        name: str = "trace",
        duration_s: Optional[float] = None,
        meta: Optional[Mapping[str, object]] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.specs: Tuple[RequestSpec, ...] = tuple(
            sorted(specs, key=lambda s: (s.arrival_s, s.request_id))
        )
        self.name = name
        self.meta = dict(meta or {})
        if duration_s is None:
            duration_s = max((s.arrival_s for s in self.specs), default=0.0) + 1e-9
        self.duration_s = duration_s
        # An attached incident: explicit plan wins, else one riding in the
        # artifact meta (how `replay --faults` re-runs a recorded run).
        if faults is None and self.meta.get(FAULTS_META_KEY):
            faults = FaultPlan.from_json(self.meta[FAULTS_META_KEY])
        self.faults = faults

    @classmethod
    def from_file(cls, path) -> "TraceReplayer":
        """Load any trace artifact (``generated`` or ``recorded``)."""
        header, specs = read_specs(path)
        meta = header.get("meta", {}) or {}
        return cls(
            specs,
            name=str(meta.get("name", "trace")),
            duration_s=(
                float(meta["duration_s"]) if meta.get("duration_s") else None
            ),
            meta=meta,
        )

    @classmethod
    def from_scenario(cls, scenario: Union[str, TraceSpec]) -> "TraceReplayer":
        spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
        return cls(
            spec.generate(),
            name=spec.name,
            duration_s=spec.duration_s,
            meta=spec.meta(),
        )

    # -- live replay -----------------------------------------------------------

    def replay(
        self,
        model,
        config=None,
        *,
        tracer: Optional[Tracer] = None,
        recorder: Optional[TraceRecorder] = None,
        timeout_s: float = 120.0,
    ) -> Dict[str, object]:
        """Drive a real :class:`ServingFrontend` open-loop (wall clock).

        Payloads are regenerated from each spec's ``payload_seed``; each
        request carries its own SLA.  ``tracer``/``recorder`` are passed
        straight into the frontend, so a replay can itself be recorded —
        the record-of-a-replay round trip.

        An attached fault plan (``self.faults``) is armed against the
        frontend for the duration of the drive, and serialised into the
        recorder's artifact meta so the incident replays with the trace.
        """
        from repro.scheduler.frontend import SchedulerConfig, ServingFrontend

        config = config or SchedulerConfig()
        net = getattr(model, "net", model)
        frontend = ServingFrontend(model, config, tracer=tracer, recorder=recorder)
        injector = None
        if self.faults:
            from repro.faults.injector import FaultInjector

            injector = FaultInjector(frontend, self.faults)
            if recorder is not None:
                recorder.meta.setdefault(FAULTS_META_KEY, self.faults.to_json())
        try:
            records = self._drive(frontend, net, timeout_s, injector=injector)
            # Snapshot before close(): draining clears the per-queue state
            # the report's "batching" section reads.
            report = frontend.report()
        finally:
            if injector is not None:
                injector.stop()
            frontend.close()
        summary = summarize_outcomes(records, self.duration_s)
        return {
            "mode": "live",
            "name": self.name,
            "duration_s": self.duration_s,
            **summary,
            "records": records,
            "frontend": report,
        }

    def _drive(
        self, frontend, net, timeout_s: float, *, injector=None
    ) -> List[Dict[str, object]]:
        records: List[Dict[str, object]] = [
            {
                "request_id": s.request_id,
                "arrival_s": s.arrival_s,
                "outcome": LOST,
                "width": None,
                "latency_s": None,
            }
            for s in self.specs
        ]
        payloads = [payload_for(s, net) for s in self.specs]
        done = threading.Event()
        remaining = [len(self.specs)]
        lock = threading.Lock()

        def _finish(index: int, submit_t: float, future) -> None:
            now = time.monotonic()
            record, spec = records[index], self.specs[index]
            exc = future.exception()
            if exc is None:
                record["latency_s"] = now - submit_t
                record["outcome"] = (
                    OK if record["latency_s"] <= spec.deadline_s else LATE
                )
            else:
                # AdmissionRejected and queue fail-fast both subclass
                # DeadlineExceeded: no compute was spent.
                from repro.runtime.batching import DeadlineExceeded

                record["outcome"] = (
                    REJECTED if isinstance(exc, DeadlineExceeded) else LOST
                )
            with lock:
                remaining[0] -= 1
                if remaining[0] == 0:
                    done.set()

        start = time.monotonic()
        if injector is not None:
            # Armed at the trace epoch (after payload pre-generation), so
            # fault offsets land where the plan scripted them.
            injector.start()
        for index, spec in enumerate(self.specs):
            delay = (start + spec.arrival_s) - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            submit_t = time.monotonic()
            future = frontend.submit(payloads[index], sla_for(spec), spec=spec)
            future.add_done_callback(
                lambda f, i=index, t=submit_t: _finish(i, t, f)
            )
        if not done.wait(timeout=timeout_s):
            raise RuntimeError(
                f"replay did not drain: {remaining[0]} requests unresolved"
            )
        return records

    # -- deterministic simulation ----------------------------------------------

    def simulate(
        self,
        model,
        config=None,
        *,
        narrowest_row_s: float = SIM_NARROWEST_ROW_S,
        amortize: float = SIM_AMORTIZE,
        recorder: Optional[TraceRecorder] = None,
        fault_plan: Optional[FaultPlan] = None,
        respawn_delay_s: float = SIM_RESPAWN_DELAY_S,
    ) -> Dict[str, object]:
        """Replay in virtual time: bit-identical outcomes on every run.

        Models the control plane's decision structure — admission
        arithmetic, widest-that-fits width choice, least-loaded routing,
        per-(replica, width) micro-batch coalescing with ``max_batch`` /
        ``max_delay_s`` flushes, FIFO replica service — with service
        times that are pure functions of (width, rows):

        ``service(w, n) = row_s(w) * (1 + amortize * (n - 1))``

        where ``row_s`` preserves the analytical cost *ratios* between
        widths and anchors the narrowest at ``narrowest_row_s``.  No
        wall clock is read anywhere, so the per-request outcome stream
        is a pure function of (specs, config, parameters).

        Faults (``fault_plan`` argument, else the replayer's attached
        plan) are modelled analytically: a **crash** makes the replica
        unroutable for ``respawn_delay_s`` virtual seconds (the
        supervisor's detect + respawn + warmup, collapsed to a constant)
        and reroutes its open, un-flushed batches to survivors —
        batches already flushed are treated as completing, the sim's
        stand-in for reply-in-flight survival.  A **stall** adds the
        event's ``delay_s`` to batches starting inside its window;
        **drop** / **heartbeat_delay** are down-windows of the event's
        duration.  ``shm_attach_fail`` has live-only semantics (it
        shapes respawn retries, already a constant here) and is ignored.
        ``config.brownout`` engages in sim too, driven by virtual queue
        depth, so degradation comparisons are CI-deterministic.
        """
        from repro.scheduler.frontend import SchedulerConfig, ServingFrontend
        from repro.scheduler.width_policy import WidthPolicy

        config = config or SchedulerConfig()
        net = getattr(model, "net", model)
        candidates = ServingFrontend._default_candidates(model, net)
        policy = WidthPolicy(net, candidates)
        # Width cost table: analytical ratios, anchored at the narrowest.
        base = {spec.name: policy.predict(spec.name) for spec in policy.candidates}
        anchor = min(base.values())
        row_s = {name: narrowest_row_s * cost / anchor for name, cost in base.items()}
        widest_first = [spec.name for spec in policy.candidates]  # widest → narrowest

        def service_s(width: str, rows: int) -> float:
            return row_s[width] * (1.0 + amortize * (rows - 1))

        admission = AdmissionController(headroom=config.admission_headroom)

        sim = _Simulation(
            replicas=config.replicas,
            max_batch=config.max_batch,
            max_delay_s=config.max_delay_s,
            service_s=service_s,
        )

        plan = fault_plan if fault_plan is not None else self.faults
        if plan and recorder is not None:
            recorder.meta.setdefault(FAULTS_META_KEY, plan.to_json())
        fault_queue: List[FaultEvent] = list(plan.events) if plan else []
        fault_i = [0]

        def apply_faults_until(t: float) -> None:
            # Interleave scripted faults with flush timers in time order,
            # so the virtual history is a single totally-ordered stream.
            while fault_i[0] < len(fault_queue) and fault_queue[fault_i[0]].time_s <= t:
                event = fault_queue[fault_i[0]]
                fault_i[0] += 1
                sim.advance(event.time_s)
                sim.apply_fault(event, respawn_delay_s)

        brownout = None
        vnow = [0.0]
        if getattr(config, "brownout", None) is not None:
            from repro.faults.policy import BrownoutController

            # Virtual clock: the controller's dwell logic reads the sim's
            # current time, so hysteresis stays deterministic.
            brownout = BrownoutController(config.brownout, clock=lambda: vnow[0])

        def choose(sla: SLA, budget_s: float) -> Tuple[str, float]:
            allowed = [s.name for s in policy.allowed(sla.min_width, sla.max_width)]
            for name in allowed:
                predicted = service_s(name, 1)
                if predicted <= budget_s:
                    return name, predicted
            return allowed[-1], service_s(allowed[-1], 1)

        records: List[Dict[str, object]] = []
        for spec in self.specs:
            sla = sla_for(spec)
            t = spec.arrival_s
            apply_faults_until(t)
            sim.advance(t)
            vnow[0] = t
            events: List[Dict[str, object]] = [
                {"t_s": t, "kind": EVENT_SUBMIT, "deadline_s": spec.deadline_s}
            ]
            record_stub: Dict[str, object] = {
                "request_id": spec.request_id,
                "arrival_s": spec.arrival_s,
                "outcome": LOST,
                "width": None,
                "latency_s": None,
            }
            if brownout is not None:
                engaged = brownout.update(sim.depth(t), None)
                if engaged and brownout.should_shed(sla.priority):
                    events.append(
                        {"t_s": t, "kind": EVENT_FAIL, "error": "BrownoutShed"}
                    )
                    record_stub["outcome"] = REJECTED
                    records.append(record_stub)
                    self._record_sim(recorder, spec, record_stub, events)
                    continue
            replica = sim.least_loaded(t)
            queue_wait = sim.queue_wait(replica, t)
            floor = service_s(
                policy.narrowest(sla.min_width, sla.max_width).name, 1
            )
            record = record_stub
            if config.enable_admission:
                decision = admission.decide_remaining(
                    sla,
                    remaining_s=spec.deadline_s,
                    queue_wait_s=queue_wait,
                    service_floor_s=floor,
                )
                events.append(
                    {
                        "t_s": t,
                        "kind": EVENT_ADMISSION,
                        "admitted": decision.admitted,
                        "reason": decision.reason,
                        "estimated_s": decision.estimated_s,
                    }
                )
                if not decision.admitted:
                    record["outcome"] = REJECTED
                    records.append(record)
                    self._record_sim(recorder, spec, record, events)
                    continue
            budget = max(spec.deadline_s - queue_wait, 0.0)
            if (
                brownout is not None
                and brownout.engaged
                and brownout.policy.clamp_width
            ):
                width = policy.narrowest(sla.min_width, sla.max_width).name
                predicted = service_s(width, 1)
            else:
                width, predicted = choose(sla, budget)
            record["width"] = width
            events.append(
                {
                    "t_s": t,
                    "kind": EVENT_WIDTH,
                    "width": width,
                    "predicted_s": predicted,
                    "budget_s": budget,
                }
            )
            events.append(
                {
                    "t_s": t,
                    "kind": EVENT_ENQUEUE,
                    "replica": replica,
                    "width": width,
                }
            )
            sim.enqueue(replica, width, t, record, events, spec)
            records.append(record)
        apply_faults_until(float("inf"))
        sim.drain()
        if recorder is not None:
            for spec, record, events in sim.completed:
                self._record_sim(recorder, spec, record, events)
        summary = summarize_outcomes(records, self.duration_s)
        return {
            "mode": "sim",
            "name": self.name,
            "duration_s": self.duration_s,
            "params": {
                "narrowest_row_s": narrowest_row_s,
                "amortize": amortize,
                "replicas": config.replicas,
                "max_batch": config.max_batch,
                "max_delay_s": config.max_delay_s,
                "widths": widest_first,
                "faults": plan.to_json() if plan else None,
                "respawn_delay_s": respawn_delay_s if plan else None,
                "brownout": brownout is not None,
            },
            # Flushed-batch shape: {rows: count}, int keys.  The offline
            # tuner seeds ladder rungs from this (a virtual-time stand-in
            # for the live plane's BatchingStats.recent_batch_sizes).
            "batches": {
                "count": sim.batches,
                "rows": dict(
                    sorted(Counter(sim.batch_rows).items())
                ),
            },
            **summary,
            "records": records,
        }

    @staticmethod
    def _record_sim(
        recorder: Optional[TraceRecorder],
        spec: RequestSpec,
        record: Mapping[str, object],
        events: Sequence[Dict[str, object]],
    ) -> None:
        if recorder is None:
            return
        recorder.record(
            RequestRecord(
                spec=spec,
                outcome=record["outcome"],
                width=record.get("width"),
                latency_s=record.get("latency_s"),
                events=tuple(events),
            )
        )


class _Simulation:
    """Virtual-time replica / micro-batch state for :meth:`simulate`.

    Replicas serve batches FIFO (one forward at a time, like a thread
    replica holding the packed-weight store); an open batch per
    (replica, width) flushes when it reaches ``max_batch`` rows or
    ``max_delay_s`` after its first row — the
    :class:`~repro.runtime.batching.MicroBatchQueue` contract.
    """

    def __init__(self, *, replicas, max_batch, max_delay_s, service_s) -> None:
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.service_s = service_s
        self.free_at = [0.0] * replicas      # replica busy-until (virtual s)
        self.pending = [0] * replicas        # rows enqueued but unfinished
        self.down_until = [0.0] * replicas   # unroutable while now < this
        self.stall: Dict[int, Tuple[float, float, float]] = {}  # i → (from, until, delay)
        self.open: Dict[Tuple[int, str], List] = {}  # (replica, width) → members
        # Flush timers: (flush_at, seq, replica, width, generation).
        self.timers: List[Tuple[float, int, int, str, int]] = []
        self.generation: Dict[Tuple[int, str], int] = {}
        self.batches = 0
        self.batch_rows: List[int] = []  # rows of every flushed batch, in order
        self.seq = 0
        self.completed: List[Tuple[RequestSpec, Dict, List[Dict]]] = []
        self.inflight: List[Tuple[float, int]] = []  # heap of (finish_s, rows)

    def least_loaded(self, now: float = 0.0) -> int:
        alive = [i for i in range(len(self.free_at)) if self.down_until[i] <= now]
        if not alive:
            # Whole pool down: route to the first replica back (matches
            # the live plane, where route() blocks on ReplicaUnavailable
            # reroutes until the supervisor restores capacity).
            alive = list(range(len(self.free_at)))
        return min(alive, key=lambda i: (self.pending[i], self.free_at[i], i))

    def depth(self, now: float) -> int:
        """Requests enqueued or executing at virtual ``now`` — the live
        plane's ``sum(replica.pending)`` analog (pending there is held
        until a request *finishes*, so open rows alone undercount)."""
        while self.inflight and self.inflight[0][0] <= now:
            heapq.heappop(self.inflight)
        return sum(rows for _, rows in self.inflight) + sum(
            len(members) for members in self.open.values()
        )

    def queue_wait(self, replica: int, now: float) -> float:
        """Backlog ahead of a new arrival on ``replica``: residual busy
        time plus the open rows it would queue behind."""
        wait = max(self.free_at[replica] - now, 0.0)
        for (r, width), members in self.open.items():
            if r == replica and members:
                wait += self.service_s(width, len(members))
        return wait

    def enqueue(self, replica, width, now, record, events, spec) -> None:
        key = (replica, width)
        members = self.open.setdefault(key, [])
        if not members:
            # First row opens the batch and starts its max_delay timer.
            self.seq += 1
            gen = self.generation.get(key, 0)
            heapq.heappush(
                self.timers,
                (now + self.max_delay_s, self.seq, replica, width, gen),
            )
        members.append((now, record, events, spec))
        self.pending[replica] += 1
        if len(members) >= self.max_batch:
            self._flush(key, now)

    def advance(self, now: float) -> None:
        """Fire every flush timer due at or before virtual ``now``."""
        while self.timers and self.timers[0][0] <= now:
            flush_at, _, replica, width, gen = heapq.heappop(self.timers)
            key = (replica, width)
            if self.generation.get(key, 0) != gen or not self.open.get(key):
                continue  # batch already flushed (size trigger) or empty
            self._flush(key, flush_at)

    def drain(self) -> None:
        while self.timers:
            self.advance(self.timers[0][0])

    # -- faults (virtual) ------------------------------------------------------

    def apply_fault(self, event, respawn_delay_s: float) -> None:
        """Fold one scripted fault into the virtual state (see simulate)."""
        try:
            index = target_index(event.target)
        except ValueError:
            return  # device-plane target: not a serving replica
        if not 0 <= index < len(self.free_at):
            return
        if event.kind == CRASH:
            self._down(index, event.time_s, event.time_s + respawn_delay_s)
        elif event.kind in (DROP, HEARTBEAT_DELAY):
            # A reply blackout and a heartbeat blackout both read as "this
            # replica serves nothing for the window" from virtual time.
            self._down(index, event.time_s, event.time_s + event.duration_s)
        elif event.kind == STALL:
            self.stall[index] = (
                event.time_s, event.time_s + event.duration_s, event.delay_s
            )
        elif event.kind == RECOVER:
            self.down_until[index] = event.time_s
        # SHM_ATTACH_FAIL shapes live respawn retries only — the respawn
        # here is already an analytic constant.

    def _down(self, index: int, now: float, until: float) -> None:
        self.down_until[index] = max(self.down_until[index], until)
        # Open (un-flushed) batches reroute to survivors, as the live
        # plane's ReplicaUnavailable path would; batches already flushed
        # are modelled as completing (reply-in-flight survival).
        moved = []
        for key in [k for k in self.open if k[0] == index]:
            members = self.open.pop(key)
            self.generation[key] = self.generation.get(key, 0) + 1
            self.pending[index] -= len(members)
            moved.extend((key[1], member) for member in members)
        for width, (arrival, record, events, spec) in moved:
            target = self.least_loaded(now)
            events.append(
                {
                    "t_s": now,
                    "kind": EVENT_REROUTE,
                    "dead_replica": index,
                    "replica": target,
                    "width": width,
                }
            )
            self.enqueue(target, width, now, record, events, spec)

    def _flush(self, key: Tuple[int, str], now: float) -> None:
        replica, width = key
        members = self.open.pop(key, [])
        if not members:
            return
        self.generation[key] = self.generation.get(key, 0) + 1
        rows = len(members)
        batch_id = self.batches
        self.batches += 1
        self.batch_rows.append(rows)
        start = max(now, self.free_at[replica])
        service = self.service_s(width, rows)
        stall = self.stall.get(replica)
        if stall is not None and stall[0] <= start < stall[1]:
            service += stall[2]
        finish = start + service
        self.free_at[replica] = finish
        self.pending[replica] -= rows
        heapq.heappush(self.inflight, (finish, rows))
        for arrival, record, events, spec in members:
            events.append(
                {
                    "t_s": now,
                    "kind": EVENT_BATCH,
                    "batch": batch_id,
                    "rows": rows,
                    "replica": replica,
                    "width": width,
                }
            )
            # Latency runs from the *original* arrival (spec time), not the
            # enqueue time — a rerouted member's clock never resets.
            latency = finish - spec.arrival_s
            record["latency_s"] = latency
            record["outcome"] = OK if latency <= spec.deadline_s else LATE
            events.append(
                {"t_s": finish, "kind": EVENT_RESOLVE, "outcome": record["outcome"]}
            )
            self.completed.append((spec, record, events))
