"""Versioned trace artifacts: request specs, records, and the recorder.

One JSONL format serves both trace *kinds*:

* ``generated`` — a request stream to inject (scenario-zoo output): each
  line is a :class:`RequestSpec` (arrival offset, SLA, payload shape and
  seed, tenant).
* ``recorded`` — what a live :class:`~repro.scheduler.frontend.ServingFrontend`
  actually did: each line is a :class:`RequestRecord` — a spec *plus* the
  outcome, served width, measured latency and the full span timeline.

A recorded artifact is therefore replayable: the replayer only reads the
spec fields.  The first line is a header carrying :data:`TRACE_FORMAT`,
:data:`TRACE_VERSION` and free-form ``meta`` (e.g. the generating
:class:`~repro.trace.scenarios.TraceSpec`); readers reject unknown
formats/versions instead of misparsing them.

Determinism contract: serialisation is canonical (sorted keys, newline
per record, records ordered by request id), so two recordings of the
same replay differ only in *wall-clock* fields.  :func:`canonical_record`
strips those (:data:`WALL_CLOCK_FIELDS`), giving the byte-comparable
form the replay benchmark uses to assert "identical outcomes modulo
wall-clock".
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1

#: Header-meta key under which a serialised fault plan rides in an
#: artifact, so ``replay --faults`` can re-run a recorded incident.
FAULTS_META_KEY = "faults"

#: Outcome labels for one traced request (shared with the scheduler bench).
OK = "ok"               # completed within its deadline
LATE = "late"           # completed, but after the deadline
REJECTED = "rejected"   # failed fast (admission / already-expired deadline)
LOST = "lost"           # errored / never produced a result

OUTCOMES = (OK, LATE, REJECTED, LOST)

#: Record/event fields that are wall-clock measurements — everything that
#: legitimately differs between two replays of the same corpus.  Stripped
#: by :func:`canonical_record` before byte-level determinism comparisons.
WALL_CLOCK_FIELDS = frozenset(
    {
        "latency_s",
        "t_s",
        "service_s",
        "predicted_s",
        "estimated_s",
        "budget_s",
        "queue_wait_s",
        "wall_s",
        "compute_s",
    }
)


@dataclass(frozen=True)
class RequestSpec:
    """The replayable description of one request."""

    request_id: int
    arrival_s: float                 # offset from trace start
    deadline_s: float
    priority: int = 0
    min_width: Optional[str] = None
    max_width: Optional[str] = None
    payload_seed: Optional[int] = None
    shape: Optional[Tuple[int, ...]] = None  # None: the model's default image
    tenant: Optional[str] = None

    def to_json(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "request_id": self.request_id,
            "arrival_s": self.arrival_s,
            "deadline_s": self.deadline_s,
            "priority": self.priority,
        }
        if self.min_width is not None:
            out["min_width"] = self.min_width
        if self.max_width is not None:
            out["max_width"] = self.max_width
        if self.payload_seed is not None:
            out["payload_seed"] = self.payload_seed
        if self.shape is not None:
            out["shape"] = list(self.shape)
        if self.tenant is not None:
            out["tenant"] = self.tenant
        return out

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "RequestSpec":
        shape = data.get("shape")
        return cls(
            request_id=int(data["request_id"]),
            arrival_s=float(data["arrival_s"]),
            deadline_s=float(data["deadline_s"]),
            priority=int(data.get("priority", 0)),
            min_width=data.get("min_width"),
            max_width=data.get("max_width"),
            payload_seed=(
                int(data["payload_seed"]) if data.get("payload_seed") is not None else None
            ),
            shape=tuple(int(s) for s in shape) if shape is not None else None,
            tenant=data.get("tenant"),
        )


@dataclass(frozen=True)
class RequestRecord:
    """One completed request: its spec plus what the plane did with it."""

    spec: RequestSpec
    outcome: str
    width: Optional[str] = None
    latency_s: Optional[float] = None
    events: Tuple[Dict[str, object], ...] = ()  # TraceEvent.to_json() dicts

    def __post_init__(self) -> None:
        if self.outcome not in OUTCOMES:
            raise ValueError(f"unknown outcome {self.outcome!r} (expected one of {OUTCOMES})")

    def to_json(self) -> Dict[str, object]:
        out = self.spec.to_json()
        out["outcome"] = self.outcome
        if self.width is not None:
            out["width"] = self.width
        if self.latency_s is not None:
            out["latency_s"] = self.latency_s
        if self.events:
            out["events"] = list(self.events)
        return out

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "RequestRecord":
        return cls(
            spec=RequestSpec.from_json(data),
            outcome=str(data["outcome"]),
            width=data.get("width"),
            latency_s=(
                float(data["latency_s"]) if data.get("latency_s") is not None else None
            ),
            events=tuple(data.get("events", ())),
        )


def canonical_record(record: Union[RequestRecord, Mapping[str, object]]) -> Dict[str, object]:
    """A record's JSON form with every wall-clock field stripped.

    Two replays of the same corpus under the same seeds must produce
    *identical* canonical records — that is the determinism fact
    ``BENCH_trace_replay.json`` pins.
    """
    data = record.to_json() if isinstance(record, RequestRecord) else dict(record)

    def strip(value):
        if isinstance(value, Mapping):
            return {k: strip(v) for k, v in sorted(value.items()) if k not in WALL_CLOCK_FIELDS}
        if isinstance(value, (list, tuple)):
            return [strip(v) for v in value]
        return value

    return strip(data)


def canonical_dumps(records: Sequence[Union[RequestRecord, Mapping[str, object]]]) -> str:
    """Canonical (wall-clock-free) byte form of a record sequence."""
    return "\n".join(
        json.dumps(canonical_record(r), sort_keys=True) for r in records
    )


class TraceRecorder:
    """Collects completed :class:`RequestRecord`\\ s; writes the artifact.

    Thread-safe: the frontend records from completion callbacks on
    collector/watchdog threads.  :meth:`write` orders records by request
    id and serialises with sorted keys, so the artifact's byte form is a
    pure function of its contents.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        *,
        kind: str = "recorded",
        meta: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.kind = kind
        self.meta = dict(meta or {})
        self._records: List[RequestRecord] = []
        self._lock = threading.Lock()

    def record(self, record: RequestRecord) -> None:
        with self._lock:
            self._records.append(record)

    @property
    def records(self) -> List[RequestRecord]:
        with self._lock:
            return sorted(self._records, key=lambda r: r.spec.request_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def header(self) -> Dict[str, object]:
        return {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "kind": self.kind,
            "meta": self.meta,
        }

    def dumps(self) -> str:
        lines = [json.dumps(self.header(), sort_keys=True)]
        lines.extend(json.dumps(r.to_json(), sort_keys=True) for r in self.records)
        return "\n".join(lines) + "\n"

    def write(self, path: Optional[Union[str, Path]] = None) -> Path:
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("no path given to TraceRecorder.write")
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.dumps())
        return target


def write_trace(
    path: Union[str, Path],
    specs: Sequence[RequestSpec],
    *,
    kind: str = "generated",
    meta: Optional[Mapping[str, object]] = None,
) -> Path:
    """Serialise a request stream (no outcomes) as a ``generated`` artifact."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "kind": kind,
        "meta": dict(meta or {}),
    }
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(
        json.dumps(s.to_json(), sort_keys=True)
        for s in sorted(specs, key=lambda s: s.request_id)
    )
    target.write_text("\n".join(lines) + "\n")
    return target


def read_trace(path: Union[str, Path]) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    """Parse a trace artifact; returns ``(header, record_dicts)``.

    Rejects unknown formats and future versions — a reader must never
    silently misinterpret an artifact written by a newer layout.
    """
    lines = Path(path).read_text().splitlines()
    if not lines:
        raise ValueError(f"{path}: empty trace artifact")
    header = json.loads(lines[0])
    if header.get("format") != TRACE_FORMAT:
        raise ValueError(f"{path}: not a {TRACE_FORMAT} artifact (header {header})")
    if int(header.get("version", -1)) > TRACE_VERSION:
        raise ValueError(
            f"{path}: artifact version {header.get('version')} is newer than "
            f"supported version {TRACE_VERSION}"
        )
    return header, [json.loads(line) for line in lines[1:] if line.strip()]


def read_specs(path: Union[str, Path]) -> Tuple[Dict[str, object], List[RequestSpec]]:
    """Read any trace artifact down to its replayable request specs."""
    header, rows = read_trace(path)
    return header, [RequestSpec.from_json(row) for row in rows]
