"""The scenario zoo: named, seeded, parameterised traffic generators.

Each generator turns a :class:`TraceSpec` into a deterministic request
stream (:class:`~repro.trace.recorder.RequestSpec` list) covering a
traffic shape the steady/burst/steady scheduler bench never exercises:

* ``diurnal`` — a smooth sinusoidal wave between trough and peak rates
  (the daily load curve, compressed to seconds);
* ``heavy_tail`` — Poisson *session* starts with Pareto-tailed session
  lengths: most sessions send a couple of requests, a few send dozens
  back-to-back;
* ``bursts`` — a steady background plus Poisson-cluster bursts (tens of
  requests landing within milliseconds, correlated, not independent);
* ``adversarial`` — a bimodal deadline mix where a slice of requests
  carries near-impossible deadlines, some additionally pinned to wide
  sub-networks (worst case for admission and width selection);
* ``multi_tenant`` — three tenants blending priorities: bulk traffic
  with generous deadlines, interactive traffic with tight ones, and a
  small critical-priority stream that must never be load-shed.

Determinism: every draw flows from ``derive_seed(seed, "scenario",
name, ...)`` in a fixed order, so ``TraceSpec.generate()`` is
bit-reproducible — the pinned corpus under ``benchmarks/traces/`` is
regenerated and byte-compared in CI to prove it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.trace.recorder import RequestSpec
from repro.utils.rng import derive_seed, make_rng


@dataclass(frozen=True)
class TraceSpec:
    """A named, seeded, parameterised scenario."""

    name: str
    generator: str
    seed: int = 0
    duration_s: float = 1.2
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.generator not in GENERATORS:
            raise ValueError(
                f"unknown generator {self.generator!r} "
                f"(known: {sorted(GENERATORS)})"
            )
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")

    def generate(self) -> List[RequestSpec]:
        """The deterministic request stream for this spec."""
        raw = GENERATORS[self.generator](self)
        # Arrival order defines request ids; ties broken by draw order so
        # the ordering (and therefore the artifact bytes) is total.
        ordered = sorted(enumerate(raw), key=lambda pair: (pair[1][0], pair[0]))
        out: List[RequestSpec] = []
        for rid, (_, (arrival, fields)) in enumerate(ordered):
            out.append(
                RequestSpec(
                    request_id=rid,
                    arrival_s=arrival,
                    payload_seed=derive_seed(self.seed, "payload", self.name, rid),
                    **fields,
                )
            )
        return out

    def rng(self, *labels) -> np.random.Generator:
        return make_rng(derive_seed(self.seed, "scenario", self.name, *labels))

    def meta(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "generator": self.generator,
            "seed": self.seed,
            "duration_s": self.duration_s,
            "params": dict(self.params),
        }


#: A generator returns draws as ``(arrival_s, field_dict)`` pairs; the
#: TraceSpec assigns ids and payload seeds after sorting by arrival.
_Draw = Tuple[float, Dict[str, object]]


def _poisson_arrivals(rng, rate: float, start: float, end: float) -> List[float]:
    times: List[float] = []
    t = start
    while True:
        t += rng.exponential(1.0 / rate)
        if t >= end:
            return times
        times.append(t)


def _thinned_arrivals(
    rng, rate_fn: Callable[[float], float], max_rate: float, duration: float
) -> List[float]:
    """Non-homogeneous Poisson via thinning (exact, deterministic)."""
    times: List[float] = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / max_rate)
        if t >= duration:
            return times
        if rng.uniform() * max_rate < rate_fn(t):
            times.append(t)


def _diurnal(spec: TraceSpec) -> List[_Draw]:
    p = spec.params
    trough = float(p.get("trough_rps", 150.0))
    peak = float(p.get("peak_rps", 700.0))
    periods = float(p.get("periods", 2.0))
    deadline = float(p.get("deadline_s", 0.05))
    rng = spec.rng("arrivals")

    def rate(t: float) -> float:
        phase = 2.0 * math.pi * periods * t / spec.duration_s
        return trough + (peak - trough) * 0.5 * (1.0 - math.cos(phase))

    return [
        (t, {"deadline_s": deadline})
        for t in _thinned_arrivals(rng, rate, peak, spec.duration_s)
    ]


def _heavy_tail(spec: TraceSpec) -> List[_Draw]:
    p = spec.params
    session_rps = float(p.get("session_rps", 60.0))
    alpha = float(p.get("pareto_alpha", 1.3))
    max_len = int(p.get("max_session_len", 48))
    gap = float(p.get("intra_gap_s", 0.006))
    deadline = float(p.get("deadline_s", 0.045))
    rng = spec.rng("sessions")
    draws: List[_Draw] = []
    for start in _poisson_arrivals(rng, session_rps, 0.0, spec.duration_s):
        length = min(max_len, 1 + int(rng.pareto(alpha)))
        for k in range(length):
            t = start + k * gap
            if t >= spec.duration_s:
                break
            draws.append((t, {"deadline_s": deadline}))
    return draws


def _bursts(spec: TraceSpec) -> List[_Draw]:
    p = spec.params
    base_rps = float(p.get("base_rps", 200.0))
    burst_rps = float(p.get("burst_events_per_s", 3.0))
    mean_size = float(p.get("mean_burst_size", 24.0))
    spread = float(p.get("burst_spread_s", 0.012))
    deadline = float(p.get("deadline_s", 0.04))
    rng = spec.rng("arrivals")
    draws: List[_Draw] = [
        (t, {"deadline_s": deadline})
        for t in _poisson_arrivals(rng, base_rps, 0.0, spec.duration_s)
    ]
    for centre in _poisson_arrivals(rng, burst_rps, 0.0, spec.duration_s):
        size = 1 + rng.geometric(1.0 / mean_size)
        for _ in range(size):
            t = centre + rng.exponential(spread)
            if t < spec.duration_s:
                draws.append((t, {"deadline_s": deadline}))
    return draws


def _adversarial(spec: TraceSpec) -> List[_Draw]:
    p = spec.params
    rate = float(p.get("rate_rps", 350.0))
    tight_frac = float(p.get("tight_frac", 0.4))
    tight = float(p.get("tight_deadline_s", 0.008))
    generous = float(p.get("generous_deadline_s", 0.08))
    pin_frac = float(p.get("pin_wide_frac", 0.5))  # of the tight slice
    pin_width = p.get("pin_width", "lower75")
    rng = spec.rng("arrivals")
    draws: List[_Draw] = []
    for t in _poisson_arrivals(rng, rate, 0.0, spec.duration_s):
        fields: Dict[str, object]
        if rng.uniform() < tight_frac:
            fields = {"deadline_s": tight}
            if rng.uniform() < pin_frac:
                # A tight deadline that *also* demands a wide slice: the
                # plane must reject it fast rather than melt down trying.
                fields["min_width"] = pin_width
        else:
            fields = {"deadline_s": generous}
        draws.append((t, fields))
    return draws


def _multi_tenant(spec: TraceSpec) -> List[_Draw]:
    p = spec.params
    tenants = p.get(
        "tenants",
        (
            {"tenant": "bulk", "rps": 150.0, "deadline_s": 0.15, "priority": 0,
             "max_width": None},
            {"tenant": "interactive", "rps": 300.0, "deadline_s": 0.035, "priority": 0,
             "max_width": None},
            {"tenant": "critical", "rps": 50.0, "deadline_s": 0.03, "priority": 1,
             "max_width": None},
        ),
    )
    draws: List[_Draw] = []
    for tenant in tenants:
        rng = spec.rng("tenant", tenant["tenant"])
        for t in _poisson_arrivals(rng, float(tenant["rps"]), 0.0, spec.duration_s):
            fields: Dict[str, object] = {
                "deadline_s": float(tenant["deadline_s"]),
                "priority": int(tenant.get("priority", 0)),
                "tenant": tenant["tenant"],
            }
            if tenant.get("max_width"):
                fields["max_width"] = tenant["max_width"]
            draws.append((t, fields))
    return draws


GENERATORS: Dict[str, Callable[[TraceSpec], List[_Draw]]] = {
    "diurnal": _diurnal,
    "heavy_tail": _heavy_tail,
    "bursts": _bursts,
    "adversarial": _adversarial,
    "multi_tenant": _multi_tenant,
}


#: The pinned corpus: one reference parameterisation per generator.
#: ``benchmarks/traces/<name>.jsonl`` holds the serialised streams;
#: regenerating these specs must reproduce those files byte-for-byte.
SCENARIOS: Dict[str, TraceSpec] = {
    spec.name: spec
    for spec in (
        TraceSpec("diurnal", "diurnal", seed=11),
        TraceSpec("heavy_tail", "heavy_tail", seed=12),
        TraceSpec("bursts", "bursts", seed=13),
        TraceSpec("adversarial", "adversarial", seed=14),
        TraceSpec("multi_tenant", "multi_tenant", seed=15),
    )
}


#: Extension registry for scenario *variants* (e.g. the faulty zoo in
#: :mod:`repro.faults.scenarios`).  Kept separate from :data:`SCENARIOS`
#: on purpose: the pinned corpus and its CI byte-comparison iterate the
#: reference five only, so registering a variant can never invalidate a
#: committed artifact.
EXTRA_SCENARIOS: Dict[str, TraceSpec] = {}


def register_scenario(spec: TraceSpec) -> TraceSpec:
    """Add a variant spec to the lookup space of :func:`get_scenario`."""
    if spec.name in SCENARIOS:
        raise ValueError(f"scenario {spec.name!r} is pinned; pick another name")
    existing = EXTRA_SCENARIOS.get(spec.name)
    if existing is not None and existing != spec:
        raise ValueError(f"scenario {spec.name!r} already registered differently")
    EXTRA_SCENARIOS[spec.name] = spec
    return spec


def get_scenario(name: str) -> TraceSpec:
    spec = SCENARIOS.get(name) or EXTRA_SCENARIOS.get(name)
    if spec is None:
        raise KeyError(
            f"unknown scenario {name!r} "
            f"(known: {sorted(SCENARIOS) + sorted(EXTRA_SCENARIOS)})"
        )
    return spec
