"""Request-lifecycle tracing, record/replay, and the scenario zoo.

Import order matters: ``replay`` imports the scheduler frontend lazily
(inside methods) because the frontend itself imports ``trace.tracer`` /
``trace.recorder`` — keeping the cycle one-directional at import time.
"""

from repro.trace.tracer import (
    EVENT_VOCABULARY,
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
)
from repro.trace.recorder import (
    OUTCOMES,
    TRACE_FORMAT,
    TRACE_VERSION,
    RequestRecord,
    RequestSpec,
    TraceRecorder,
    canonical_dumps,
    canonical_record,
    read_specs,
    read_trace,
    write_trace,
)
from repro.trace.scenarios import GENERATORS, SCENARIOS, TraceSpec, get_scenario
from repro.trace.replay import TraceReplayer, payload_for, summarize_outcomes

__all__ = [
    "EVENT_VOCABULARY",
    "NULL_TRACER",
    "NullTracer",
    "TraceEvent",
    "Tracer",
    "OUTCOMES",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "RequestRecord",
    "RequestSpec",
    "TraceRecorder",
    "canonical_dumps",
    "canonical_record",
    "read_specs",
    "read_trace",
    "write_trace",
    "GENERATORS",
    "SCENARIOS",
    "TraceSpec",
    "get_scenario",
    "TraceReplayer",
    "payload_for",
    "summarize_outcomes",
]
