"""Width-sliceable convolution.

The layer owns full-width weight storage; every forward/backward call
operates on the currently *active* ``(in_slice, out_slice)`` sub-block.
Sub-networks therefore share weights by construction — "copy trained weights
to the next model" in the paper's Algorithm 1 is the aliasing itself.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.slimmable.spec import ChannelSlice
from repro.utils.rng import check_rng


class SlicedConv2d(Module):
    """Conv2d whose in/out channel ranges are selected at call time.

    Args:
        max_in_channels: full-width input channel count.
        max_out_channels: full-width output channel count.
        kernel_size / stride / padding: as in :class:`repro.nn.Conv2d`.
        slice_input: if False the layer always consumes the full input range
            (used for the first conv, which reads the raw image).
    """

    def __init__(
        self,
        max_in_channels: int,
        max_out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        *,
        slice_input: bool = True,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        if max_in_channels <= 0 or max_out_channels <= 0:
            raise ValueError("channel counts must be positive")
        check_rng(rng, "SlicedConv2d")
        self.max_in_channels = max_in_channels
        self.max_out_channels = max_out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.slice_input = slice_input

        shape = (max_out_channels, max_in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_uniform(shape, rng), name="weight")
        fan_in = max_in_channels * kernel_size * kernel_size
        self.bias = Parameter(init.bias_uniform((max_out_channels,), fan_in, rng), name="bias")

        self._in_slice = ChannelSlice(0, max_in_channels)
        self._out_slice = ChannelSlice(0, max_out_channels)
        self._x_shape = None
        self._cols = None

    # -- slice management ----------------------------------------------------

    def set_slices(self, in_slice: Optional[ChannelSlice], out_slice: ChannelSlice) -> None:
        """Select the active weight sub-block.

        ``in_slice`` is ignored when ``slice_input`` is False (first layer).
        """
        if not self.slice_input or in_slice is None:
            in_slice = ChannelSlice(0, self.max_in_channels)
        if in_slice.stop > self.max_in_channels:
            raise ValueError(f"in_slice {in_slice} exceeds {self.max_in_channels} channels")
        if out_slice.stop > self.max_out_channels:
            raise ValueError(f"out_slice {out_slice} exceeds {self.max_out_channels} channels")
        self._in_slice = in_slice
        self._out_slice = out_slice

    @property
    def in_slice(self) -> ChannelSlice:
        return self._in_slice

    @property
    def out_slice(self) -> ChannelSlice:
        return self._out_slice

    def active_weight(self) -> np.ndarray:
        """View of the currently active weight block (no copy)."""
        return self.weight.data[self._out_slice.as_slice(), self._in_slice.as_slice()]

    def active_bias(self) -> np.ndarray:
        return self.bias.data[self._out_slice.as_slice()]

    # -- compute ---------------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        expected_in = self._in_slice.width
        if x.shape[1] != expected_in:
            raise ValueError(
                f"active in_slice {self._in_slice} expects {expected_in} channels, "
                f"input has {x.shape[1]}"
            )
        self._x_shape = x.shape
        x, w, b = F.cast_compute(self.training, x, self.active_weight(), self.active_bias())
        y, self._cols = F.conv2d_forward(x, w, b, self.stride, self.padding)
        return y

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols is None:
            raise RuntimeError("backward called before forward")
        w = np.ascontiguousarray(self.active_weight())
        grad_x, grad_w, grad_b = F.conv2d_backward(
            grad_output, self._cols, self._x_shape, w, self.stride, self.padding
        )
        full_grad_w = np.zeros_like(self.weight.data)
        full_grad_w[self._out_slice.as_slice(), self._in_slice.as_slice()] = grad_w
        self.weight.accumulate_grad(full_grad_w)
        full_grad_b = np.zeros_like(self.bias.data)
        full_grad_b[self._out_slice.as_slice()] = grad_b
        self.bias.accumulate_grad(full_grad_b)
        return grad_x

    def flops_per_image(self, in_h: int, in_w: int) -> int:
        """MAC cost of the *active* sub-block for one image."""
        out_h = F.conv_out_size(in_h, self.kernel_size, self.stride, self.padding)
        out_w = F.conv_out_size(in_w, self.kernel_size, self.stride, self.padding)
        macs = (
            out_h * out_w * self._out_slice.width * self._in_slice.width * self.kernel_size**2
        )
        return 2 * macs

    def __repr__(self) -> str:
        return (
            f"SlicedConv2d(max_in={self.max_in_channels}, max_out={self.max_out_channels}, "
            f"k={self.kernel_size}, active={self._in_slice}->{self._out_slice})"
        )
