"""Width-sliceable convolution.

The layer owns full-width weight storage; every forward/backward call
operates on an *active* ``(in_slice, out_slice)`` sub-block.  Sub-networks
therefore share weights by construction — "copy trained weights to the next
model" in the paper's Algorithm 1 is the aliasing itself.

Slice selection is two-tier: :meth:`set_slices` installs a default on the
layer (legacy single-caller path), while a caller-bound
:class:`~repro.nn.context.ForwardContext` binding overrides it per call.
Context bindings never mutate the layer, so concurrent forward passes may
run different widths against the same weight store.  The slices actually
used are recorded on the context's tape, so backward scatters gradients
into the correct region even if the layer's default changed in between.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.context import ForwardContext
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.slimmable.spec import ChannelSlice
from repro.utils.rng import check_rng


class SlicedConv2d(Module):
    """Conv2d whose in/out channel ranges are selected at call time.

    Args:
        max_in_channels: full-width input channel count.
        max_out_channels: full-width output channel count.
        kernel_size / stride / padding: as in :class:`repro.nn.Conv2d`.
        slice_input: if False the layer always consumes the full input range
            (used for the first conv, which reads the raw image).
    """

    def __init__(
        self,
        max_in_channels: int,
        max_out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        *,
        slice_input: bool = True,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        if max_in_channels <= 0 or max_out_channels <= 0:
            raise ValueError("channel counts must be positive")
        check_rng(rng, "SlicedConv2d")
        self.max_in_channels = max_in_channels
        self.max_out_channels = max_out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.slice_input = slice_input

        shape = (max_out_channels, max_in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_uniform(shape, rng), name="weight")
        fan_in = max_in_channels * kernel_size * kernel_size
        self.bias = Parameter(init.bias_uniform((max_out_channels,), fan_in, rng), name="bias")

        self._in_slice = ChannelSlice(0, max_in_channels)
        self._out_slice = ChannelSlice(0, max_out_channels)

    # -- slice management ----------------------------------------------------

    def resolve_slices(
        self, in_slice: Optional[ChannelSlice], out_slice: ChannelSlice
    ) -> "tuple[ChannelSlice, ChannelSlice]":
        """Validate a slice pair, applying the ``slice_input`` rule.

        ``in_slice`` is ignored when ``slice_input`` is False (first layer).
        """
        if not self.slice_input or in_slice is None:
            in_slice = ChannelSlice(0, self.max_in_channels)
        if in_slice.stop > self.max_in_channels:
            raise ValueError(f"in_slice {in_slice} exceeds {self.max_in_channels} channels")
        if out_slice.stop > self.max_out_channels:
            raise ValueError(f"out_slice {out_slice} exceeds {self.max_out_channels} channels")
        return in_slice, out_slice

    def set_slices(self, in_slice: Optional[ChannelSlice], out_slice: ChannelSlice) -> None:
        """Install the layer's *default* weight sub-block (legacy path)."""
        self._in_slice, self._out_slice = self.resolve_slices(in_slice, out_slice)

    @property
    def in_slice(self) -> ChannelSlice:
        return self._in_slice

    @property
    def out_slice(self) -> ChannelSlice:
        return self._out_slice

    def _call_slices(
        self, ctx: ForwardContext
    ) -> "tuple[ChannelSlice, ChannelSlice]":
        """The slices for this call: context bindings over layer defaults."""
        in_slice = ctx.bound(self, "in_slice", self._in_slice)
        out_slice = ctx.bound(self, "out_slice", self._out_slice)
        return in_slice, out_slice

    def active_weight(
        self,
        in_slice: Optional[ChannelSlice] = None,
        out_slice: Optional[ChannelSlice] = None,
    ) -> np.ndarray:
        """View of an active weight block (no copy); defaults to the layer's."""
        in_slice = in_slice if in_slice is not None else self._in_slice
        out_slice = out_slice if out_slice is not None else self._out_slice
        return self.weight.data[out_slice.as_slice(), in_slice.as_slice()]

    def active_bias(self, out_slice: Optional[ChannelSlice] = None) -> np.ndarray:
        out_slice = out_slice if out_slice is not None else self._out_slice
        return self.bias.data[out_slice.as_slice()]

    # -- compute ---------------------------------------------------------------

    def forward(self, x: np.ndarray, ctx: Optional[ForwardContext] = None) -> np.ndarray:
        ctx = self._forward_ctx(ctx)
        in_slice, out_slice = self._call_slices(ctx)
        if x.shape[1] != in_slice.width:
            raise ValueError(
                f"active in_slice {in_slice} expects {in_slice.width} channels, "
                f"input has {x.shape[1]}"
            )
        x_shape = x.shape
        x, w, b = F.cast_compute(
            self.training,
            x,
            self.active_weight(in_slice, out_slice),
            self.active_bias(out_slice),
        )
        y, cols = F.conv2d_forward(x, w, b, self.stride, self.padding)
        ctx.put(self, cols=cols, x_shape=x_shape, in_slice=in_slice, out_slice=out_slice)
        return y

    def backward(
        self, grad_output: np.ndarray, ctx: Optional[ForwardContext] = None
    ) -> np.ndarray:
        ctx = self._backward_ctx(ctx)
        state = ctx.require(self)
        in_slice, out_slice = state["in_slice"], state["out_slice"]
        w = np.ascontiguousarray(self.active_weight(in_slice, out_slice))
        grad_x, grad_w, grad_b = F.conv2d_backward(
            grad_output, state["cols"], state["x_shape"], w, self.stride, self.padding
        )
        full_grad_w = np.zeros_like(self.weight.data)
        full_grad_w[out_slice.as_slice(), in_slice.as_slice()] = grad_w
        self.weight.accumulate_grad(full_grad_w)
        full_grad_b = np.zeros_like(self.bias.data)
        full_grad_b[out_slice.as_slice()] = grad_b
        self.bias.accumulate_grad(full_grad_b)
        return grad_x

    def flops_per_image(
        self,
        in_h: int,
        in_w: int,
        in_slice: Optional[ChannelSlice] = None,
        out_slice: Optional[ChannelSlice] = None,
    ) -> int:
        """MAC cost of an active sub-block for one image (defaults to the
        layer's default slices; explicit slices keep cost queries stateless)."""
        in_slice = in_slice if in_slice is not None else self._in_slice
        out_slice = out_slice if out_slice is not None else self._out_slice
        out_h = F.conv_out_size(in_h, self.kernel_size, self.stride, self.padding)
        out_w = F.conv_out_size(in_w, self.kernel_size, self.stride, self.padding)
        macs = out_h * out_w * out_slice.width * in_slice.width * self.kernel_size**2
        return 2 * macs

    def __repr__(self) -> str:
        return (
            f"SlicedConv2d(max_in={self.max_in_channels}, max_out={self.max_out_channels}, "
            f"k={self.kernel_size}, active={self._in_slice}->{self._out_slice})"
        )
