"""Width-slimmable layers and sub-network machinery.

The mechanism behind all three model families in the paper: full-width
weights stored once, sub-networks expressed as channel slices
(:class:`SubNetSpec`), trained with per-region freeze masks
(:class:`RegionTracker`).
"""

from repro.slimmable.masks import (
    RegionTracker,
    clear_freeze_masks,
    conv_region,
    linear_region,
    vector_region,
)
from repro.slimmable.slim_net import SlimmableConvNet, SubNetworkView
from repro.slimmable.sliced_conv import SlicedConv2d
from repro.slimmable.sliced_linear import SlicedLinear
from repro.slimmable.spec import (
    ChannelSlice,
    SubNetSpec,
    WidthSpec,
    paper_width_spec,
    uniform_spec,
)

__all__ = [
    "ChannelSlice",
    "SubNetSpec",
    "WidthSpec",
    "uniform_spec",
    "paper_width_spec",
    "SlicedConv2d",
    "SlicedLinear",
    "SlimmableConvNet",
    "SubNetworkView",
    "RegionTracker",
    "conv_region",
    "vector_region",
    "linear_region",
    "clear_freeze_masks",
]
