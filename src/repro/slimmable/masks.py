"""Freeze-mask bookkeeping for incremental training.

Incremental training (Xun et al., MLCAD 2019 — the paper's Dynamic DNN
baseline) trains sub-networks smallest-first and freezes every weight that an
earlier stage already trained.  A *region* here is the set of full-width
array entries a given sub-network's forward pass touches; the trainable mask
for stage ``k`` is ``region(k) - union(region(1..k-1))``.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from repro.slimmable.spec import ChannelSlice, SubNetSpec


class RegionTracker:
    """Accumulates per-parameter 0/1 coverage masks across training stages."""

    def __init__(self) -> None:
        self._covered: Dict[int, np.ndarray] = {}
        self._names: Dict[int, str] = {}

    def covered(self, param) -> np.ndarray:
        """Current coverage mask for a parameter (all-zero if never seen)."""
        key = id(param)
        if key not in self._covered:
            self._covered[key] = np.zeros_like(param.data)
            self._names[key] = param.name
        return self._covered[key]

    def mark(self, param, region_mask: np.ndarray) -> None:
        """Record that ``region_mask`` entries of ``param`` have been trained."""
        if region_mask.shape != param.data.shape:
            raise ValueError(
                f"region shape {region_mask.shape} != parameter shape {param.data.shape}"
            )
        cov = self.covered(param)
        np.maximum(cov, region_mask, out=cov)

    def trainable_mask(self, param, region_mask: np.ndarray) -> np.ndarray:
        """Entries in ``region_mask`` not yet covered by earlier stages."""
        return region_mask * (1.0 - self.covered(param))

    def reset(self) -> None:
        self._covered.clear()
        self._names.clear()


def conv_region(shape, out_slice: ChannelSlice, in_slice: ChannelSlice) -> np.ndarray:
    """Coverage mask of a conv weight block ``W[out, in, :, :]``."""
    mask = np.zeros(shape)
    mask[out_slice.as_slice(), in_slice.as_slice()] = 1.0
    return mask


def vector_region(shape, out_slice: ChannelSlice) -> np.ndarray:
    """Coverage mask of a bias (or any 1-D per-channel vector)."""
    mask = np.zeros(shape)
    mask[out_slice.as_slice()] = 1.0
    return mask


def linear_region(shape, feature_slice: ChannelSlice) -> np.ndarray:
    """Coverage mask of classifier weight columns ``W[:, features]``."""
    mask = np.zeros(shape)
    mask[:, feature_slice.as_slice()] = 1.0
    return mask


def clear_freeze_masks(params: Iterable) -> None:
    for p in params:
        p.set_freeze_mask(None)
