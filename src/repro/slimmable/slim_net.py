"""Slimmable convolutional network and sub-network views.

:class:`SlimmableConvNet` is the weight container: a stack of
``SlicedConv2d (+ReLU, +optional MaxPool)`` blocks followed by a
:class:`SlicedLinear` classifier.  A :class:`SubNetworkView` binds the
container to one :class:`~repro.slimmable.spec.SubNetSpec`.  All views
alias the same storage — that aliasing is the paper's weight sharing.

Sub-network selection has two paths:

* :meth:`SlimmableConvNet.set_active` mutates the layers' default slices
  in place (legacy single-caller path, still used by the cost model and
  the partitioned kernels);
* :meth:`SlimmableConvNet.bind_spec` writes the same selection into a
  :class:`~repro.nn.context.ForwardContext` as call-scoped bindings,
  leaving the container untouched.  Views passed an explicit context use
  only bindings, so concurrent calls can run different widths against one
  shared weight store.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.context import ForwardContext
from repro.nn.layers.activation import ReLU
from repro.nn.layers.pooling import MaxPool2d
from repro.nn.layers.reshape import Flatten
from repro.nn.module import Module
from repro.slimmable.masks import RegionTracker, conv_region, linear_region, vector_region
from repro.slimmable.spec import ChannelSlice, SubNetSpec, WidthSpec
from repro.slimmable.sliced_conv import SlicedConv2d
from repro.slimmable.sliced_linear import SlicedLinear
from repro.utils.rng import check_rng


class SlimmableConvNet(Module):
    """The paper's 3-conv + 1-FC CNN with width-sliceable layers.

    Architecture (28x28 single-channel input, paper §III)::

        conv1 3x3 pad1 (1 -> w)   ReLU  maxpool2
        conv2 3x3 pad1 (w -> w)   ReLU  maxpool2
        conv3 3x3 pad1 (w -> w)   ReLU
        flatten -> linear (w*7*7 -> 10)

    where ``w`` is selected per sub-network from ``width_spec``.
    """

    def __init__(
        self,
        width_spec: WidthSpec,
        *,
        in_channels: int = 1,
        image_size: int = 28,
        num_classes: int = 10,
        pool_after: Sequence[int] = (0, 1),
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        check_rng(rng, "SlimmableConvNet")
        self.width_spec = width_spec
        self.in_channels = in_channels
        self.image_size = image_size
        self.num_classes = num_classes
        self.pool_after = tuple(pool_after)

        w = width_spec.max_width
        self.convs: List[SlicedConv2d] = []
        self.relus: List[ReLU] = []
        self.pools: Dict[int, MaxPool2d] = {}
        for i in range(width_spec.num_convs):
            conv = SlicedConv2d(
                in_channels if i == 0 else w,
                w,
                kernel_size=3,
                padding=1,
                slice_input=(i > 0),
                rng=rng,
            )
            self.register_module(f"conv{i}", conv)
            self.convs.append(conv)
            relu = ReLU()
            self.register_module(f"relu{i}", relu)
            self.relus.append(relu)
            if i in self.pool_after:
                pool = MaxPool2d(2)
                self.register_module(f"pool{i}", pool)
                self.pools[i] = pool

        spatial = image_size
        for i in range(width_spec.num_convs):
            if i in self.pools:
                spatial //= 2
        if spatial <= 0:
            raise ValueError("too much pooling for the given image size")
        self.feature_spatial = spatial * spatial
        self.flatten = Flatten()
        self.classifier = SlicedLinear(w * self.feature_spatial, num_classes, rng=rng)

        self._active: Optional[SubNetSpec] = None
        self.set_active(width_spec.full())

    # -- activation of sub-networks ------------------------------------------

    def feature_slice_for(self, channel_slice: ChannelSlice) -> ChannelSlice:
        """Map the last conv's channel slice to classifier feature columns."""
        return ChannelSlice(
            channel_slice.start * self.feature_spatial,
            channel_slice.stop * self.feature_spatial,
        )

    def _check_spec(self, spec: SubNetSpec) -> None:
        if len(spec.conv_slices) != len(self.convs):
            raise ValueError(
                f"spec has {len(spec.conv_slices)} conv slices, net has {len(self.convs)}"
            )

    def set_active(self, spec: SubNetSpec) -> None:
        """Select the default sub-network by mutating the layers in place."""
        self._check_spec(spec)
        prev: Optional[ChannelSlice] = None
        for conv, out_slice in zip(self.convs, spec.conv_slices):
            conv.set_slices(prev, out_slice)
            prev = out_slice
        self.classifier.set_feature_slice(self.feature_slice_for(spec.last_slice))
        self._active = spec

    def bind_spec(self, spec: SubNetSpec, ctx: ForwardContext) -> None:
        """Select a sub-network for one call only, via context bindings.

        Writes the per-layer slice selection into ``ctx`` without touching
        the container, so concurrent calls may bind different specs.
        """
        self._check_spec(spec)
        prev: Optional[ChannelSlice] = None
        for conv, out_slice in zip(self.convs, spec.conv_slices):
            in_slice, out_slice = conv.resolve_slices(prev, out_slice)
            ctx.bind(conv, in_slice=in_slice, out_slice=out_slice)
            prev = out_slice
        ctx.bind(
            self.classifier,
            feature_slice=self.classifier.resolve_feature_slice(
                self.feature_slice_for(spec.last_slice)
            ),
        )
        ctx.bind(self, spec=spec)

    @property
    def active_spec(self) -> SubNetSpec:
        if self._active is None:
            raise RuntimeError("no active sub-network")
        return self._active

    def view(self, spec: SubNetSpec) -> "SubNetworkView":
        return SubNetworkView(self, spec)

    def views(self) -> Dict[str, "SubNetworkView"]:
        """Views for the entire sub-network family, keyed by name."""
        return {spec.name: self.view(spec) for spec in self.width_spec.all_specs()}

    # -- compute ---------------------------------------------------------------

    def forward(self, x: np.ndarray, ctx: Optional[ForwardContext] = None) -> np.ndarray:
        ctx = self._forward_ctx(ctx)
        for i, (conv, relu) in enumerate(zip(self.convs, self.relus)):
            x = relu.forward(conv.forward(x, ctx), ctx)
            if i in self.pools:
                x = self.pools[i].forward(x, ctx)
        return self.classifier.forward(self.flatten.forward(x, ctx), ctx)

    def backward(
        self, grad_output: np.ndarray, ctx: Optional[ForwardContext] = None
    ) -> np.ndarray:
        ctx = self._backward_ctx(ctx)
        grad = self.flatten.backward(self.classifier.backward(grad_output, ctx), ctx)
        for i in reversed(range(len(self.convs))):
            if i in self.pools:
                grad = self.pools[i].backward(grad, ctx)
            grad = self.convs[i].backward(self.relus[i].backward(grad, ctx), ctx)
        return grad

    # -- regions (for incremental freezing) -------------------------------------

    def region_masks(self, spec: SubNetSpec) -> List[Tuple[object, np.ndarray]]:
        """(parameter, coverage-mask) pairs for every weight ``spec`` touches."""
        pairs: List[Tuple[object, np.ndarray]] = []
        prev: Optional[ChannelSlice] = None
        for i, (conv, out_slice) in enumerate(zip(self.convs, spec.conv_slices)):
            if i == 0 or not conv.slice_input:
                in_slice = ChannelSlice(0, conv.max_in_channels)
            else:
                in_slice = prev
            pairs.append((conv.weight, conv_region(conv.weight.shape, out_slice, in_slice)))
            pairs.append((conv.bias, vector_region(conv.bias.shape, out_slice)))
            prev = out_slice
        feat = self.feature_slice_for(spec.last_slice)
        pairs.append((self.classifier.weight, linear_region(self.classifier.weight.shape, feat)))
        pairs.append((self.classifier.bias, np.ones_like(self.classifier.bias.data)))
        return pairs

    def apply_freeze(self, spec: SubNetSpec, tracker: RegionTracker) -> None:
        """Freeze everything previous stages covered; train the rest of ``spec``.

        Installs per-parameter masks equal to ``region(spec) - covered`` so
        only this stage's new weights receive updates.
        """
        for param, region in self.region_masks(spec):
            param.set_freeze_mask(tracker.trainable_mask(param, region))

    def mark_trained(self, spec: SubNetSpec, tracker: RegionTracker) -> None:
        """Record ``spec``'s region as covered after its stage completes."""
        for param, region in self.region_masks(spec):
            tracker.mark(param, region)

    def clear_freeze(self) -> None:
        for param in self.parameters():
            param.set_freeze_mask(None)

    # -- cost model hooks ---------------------------------------------------------

    def flops_per_image(self) -> int:
        """FLOPs for one image through the *active* sub-network."""
        total = 0
        size = self.image_size
        for i, conv in enumerate(self.convs):
            total += conv.flops_per_image(size, size)
            if i in self.pools:
                size //= 2
        total += self.classifier.flops_per_image()
        return total


class SubNetworkView(Module):
    """A sub-network of a :class:`SlimmableConvNet`, usable as a model.

    With an explicit context, forward *binds* the spec's slices into the
    context and never mutates the container — views are then freely usable
    from concurrent threads over one shared weight store.  On the implicit
    (no-context) path a view also activates its spec in place, preserving
    the legacy contract that the container reflects the last view run.
    Parameter traversal delegates to the parent container, meaning
    optimizers built on a view see the full shared storage — combined with
    freeze masks this gives incremental training its semantics.
    """

    def __init__(self, net: SlimmableConvNet, spec: SubNetSpec) -> None:
        super().__init__()
        # Intentionally NOT registered as a child module: the view borrows
        # the container's parameters rather than owning a copy.
        object.__setattr__(self, "net", net)
        self.spec = spec

    def activate(self) -> None:
        self.net.set_active(self.spec)

    def forward(self, x: np.ndarray, ctx: Optional[ForwardContext] = None) -> np.ndarray:
        if ctx is None:
            ctx = self._forward_ctx(ctx)
            self.activate()
        self.net.bind_spec(self.spec, ctx)
        return self.net.forward(x, ctx)

    def backward(
        self, grad_output: np.ndarray, ctx: Optional[ForwardContext] = None
    ) -> np.ndarray:
        if ctx is None and self.net.active_spec is not self.spec:
            # Legacy guard: another view activated the container since this
            # view's implicit forward.
            raise RuntimeError(
                f"backward for view {self.spec.name!r} but active spec is "
                f"{self.net.active_spec.name!r}"
            )
        ctx = self._backward_ctx(ctx)
        bound = ctx.bound(self.net, "spec")
        if bound is not self.spec:
            raise RuntimeError(
                f"backward for view {self.spec.name!r} but the context is bound to "
                f"{bound.name if bound is not None else None!r}"
            )
        return self.net.backward(grad_output, ctx)

    def parameters(self):
        return self.net.parameters()

    def named_parameters(self, prefix: str = ""):
        return self.net.named_parameters(prefix=prefix)

    def train(self, mode: bool = True) -> "SubNetworkView":
        self.net.train(mode)
        self.training = mode
        return self

    def zero_grad(self) -> None:
        self.net.zero_grad()

    def flops_per_image(self) -> int:
        self.activate()
        return self.net.flops_per_image()

    @property
    def name(self) -> str:
        return self.spec.name

    def __repr__(self) -> str:
        return f"SubNetworkView({self.spec.name})"
