"""Width-sliceable fully-connected classifier head.

The classifier always produces all classes (full output rows); only the
input-feature range is sliced.  Input features are laid out channel-major
(``C * H * W`` flattened), so a conv channel slice ``[a, b)`` maps to the
feature range ``[a * spatial, b * spatial)``.

Like :class:`~repro.slimmable.sliced_conv.SlicedConv2d`, the feature slice
is two-tier: :meth:`set_feature_slice` installs a mutable default, a
context binding overrides it per call without touching the layer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.context import ForwardContext
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.slimmable.spec import ChannelSlice
from repro.utils.rng import check_rng


class SlicedLinear(Module):
    """Linear layer with a selectable input-feature slice."""

    def __init__(
        self,
        max_in_features: int,
        out_features: int,
        *,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        if max_in_features <= 0 or out_features <= 0:
            raise ValueError("feature counts must be positive")
        check_rng(rng, "SlicedLinear")
        self.max_in_features = max_in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_uniform((out_features, max_in_features), rng), name="weight"
        )
        self.bias = Parameter(init.bias_uniform((out_features,), max_in_features, rng), name="bias")
        self._feature_slice = ChannelSlice(0, max_in_features)

    def resolve_feature_slice(self, feature_slice: ChannelSlice) -> ChannelSlice:
        if feature_slice.stop > self.max_in_features:
            raise ValueError(f"slice {feature_slice} exceeds {self.max_in_features} features")
        return feature_slice

    def set_feature_slice(self, feature_slice: ChannelSlice) -> None:
        """Install the layer's *default* feature slice (legacy path)."""
        self._feature_slice = self.resolve_feature_slice(feature_slice)

    @property
    def feature_slice(self) -> ChannelSlice:
        return self._feature_slice

    def active_weight(self, feature_slice: Optional[ChannelSlice] = None) -> np.ndarray:
        feature_slice = feature_slice if feature_slice is not None else self._feature_slice
        return self.weight.data[:, feature_slice.as_slice()]

    def forward(self, x: np.ndarray, ctx: Optional[ForwardContext] = None) -> np.ndarray:
        ctx = self._forward_ctx(ctx)
        feature_slice = ctx.bound(self, "feature_slice", self._feature_slice)
        expected = feature_slice.width
        if x.ndim != 2 or x.shape[1] != expected:
            raise ValueError(
                f"active feature slice {feature_slice} expects (N, {expected}), "
                f"got {x.shape}"
            )
        x, w, b = F.cast_compute(
            self.training, x, self.active_weight(feature_slice), self.bias.data
        )
        ctx.put(self, x=x, feature_slice=feature_slice)
        return x @ w.T + b

    def backward(
        self, grad_output: np.ndarray, ctx: Optional[ForwardContext] = None
    ) -> np.ndarray:
        ctx = self._backward_ctx(ctx)
        state = ctx.require(self)
        feature_slice = state["feature_slice"]
        full_grad_w = np.zeros_like(self.weight.data)
        full_grad_w[:, feature_slice.as_slice()] = grad_output.T @ state["x"]
        self.weight.accumulate_grad(full_grad_w)
        self.bias.accumulate_grad(grad_output.sum(axis=0))
        return grad_output @ self.active_weight(feature_slice)

    def flops_per_image(self, feature_slice: Optional[ChannelSlice] = None) -> int:
        feature_slice = feature_slice if feature_slice is not None else self._feature_slice
        return 2 * feature_slice.width * self.out_features

    def __repr__(self) -> str:
        return (
            f"SlicedLinear(max_in={self.max_in_features}, out={self.out_features}, "
            f"active={self._feature_slice})"
        )
