"""Sub-network specifications for slimmable networks.

A slimmable network stores full-width weights once; a *sub-network* is a
named set of channel slices, one per sliceable layer.  The paper's model has
four *lower* sub-networks (25/50/75/100%, nested from channel 0) plus two
*upper* sub-networks (upper-25% = channels 50–75%, upper-50% = channels
50–100%) that Fluid DyDNNs train to run independently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class ChannelSlice:
    """Half-open channel range ``[start, stop)``."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop <= self.start:
            raise ValueError(f"invalid channel slice [{self.start}, {self.stop})")

    @property
    def width(self) -> int:
        return self.stop - self.start

    def as_slice(self) -> slice:
        return slice(self.start, self.stop)

    def contains(self, other: "ChannelSlice") -> bool:
        return self.start <= other.start and other.stop <= self.stop

    def overlaps(self, other: "ChannelSlice") -> bool:
        return self.start < other.stop and other.start < self.stop

    def __repr__(self) -> str:
        return f"[{self.start}:{self.stop})"


@dataclass(frozen=True)
class SubNetSpec:
    """A named sub-network: one channel slice per sliceable conv layer.

    ``conv_slices[i]`` is the output-channel slice of conv layer ``i``; the
    input slice of conv ``i+1`` equals the output slice of conv ``i`` (the
    first conv always reads the full input image).  The classifier reads the
    features produced by the last conv's slice.
    """

    name: str
    conv_slices: Tuple[ChannelSlice, ...]

    def __post_init__(self) -> None:
        if not self.conv_slices:
            raise ValueError("SubNetSpec needs at least one conv slice")

    @property
    def last_slice(self) -> ChannelSlice:
        return self.conv_slices[-1]

    def is_lower(self) -> bool:
        """True if every slice starts at channel 0 (a classic nested subnet)."""
        return all(s.start == 0 for s in self.conv_slices)

    def is_uniform(self) -> bool:
        """True if all layers use the same slice."""
        return all(s == self.conv_slices[0] for s in self.conv_slices)

    def __repr__(self) -> str:
        return f"SubNetSpec({self.name}: {list(self.conv_slices)})"


def uniform_spec(name: str, start: int, stop: int, num_convs: int) -> SubNetSpec:
    """A spec using the same channel slice for every conv layer."""
    if num_convs <= 0:
        raise ValueError("num_convs must be positive")
    return SubNetSpec(name, tuple(ChannelSlice(start, stop) for _ in range(num_convs)))


@dataclass(frozen=True)
class WidthSpec:
    """The full sub-network family of a Fluid DyDNN.

    Args:
        max_width: full channel count (paper: 16 kernels).
        lower_widths: nested lower sub-network widths (paper: 4, 8, 12, 16).
        split: channel where the upper block begins (paper: 8 = the 50% mark).
        num_convs: number of sliceable conv layers (paper: 3).
    """

    max_width: int
    lower_widths: Tuple[int, ...]
    split: int
    num_convs: int

    def __post_init__(self) -> None:
        if self.max_width <= 0:
            raise ValueError("max_width must be positive")
        if not self.lower_widths:
            raise ValueError("need at least one lower width")
        if list(self.lower_widths) != sorted(set(self.lower_widths)):
            raise ValueError("lower_widths must be strictly increasing")
        if self.lower_widths[-1] != self.max_width:
            raise ValueError("largest lower width must equal max_width")
        if not 0 < self.split < self.max_width:
            raise ValueError(f"split must be inside (0, {self.max_width})")
        if self.num_convs <= 0:
            raise ValueError("num_convs must be positive")

    # -- named sub-network constructors -------------------------------------

    def lower(self, width: int) -> SubNetSpec:
        """Nested lower sub-network of the given width (e.g. the 50% model)."""
        if width not in self.lower_widths:
            raise ValueError(f"width {width} not in {self.lower_widths}")
        pct = round(100 * width / self.max_width)
        return uniform_spec(f"lower{pct}", 0, width, self.num_convs)

    def upper(self, width: int) -> SubNetSpec:
        """Upper sub-network of the given width, starting at the split.

        ``upper(split)`` is the paper's *upper 50%* model (channels
        50–100%); smaller widths give *upper 25%* etc.
        """
        if width <= 0 or self.split + width > self.max_width:
            raise ValueError(
                f"upper width {width} does not fit in [{self.split}, {self.max_width})"
            )
        pct = round(100 * width / self.max_width)
        return uniform_spec(f"upper{pct}", self.split, self.split + width, self.num_convs)

    def full(self) -> SubNetSpec:
        return self.lower(self.max_width)

    # -- families ------------------------------------------------------------

    def lower_family(self) -> List[SubNetSpec]:
        """All nested lower sub-networks, smallest first (incremental order)."""
        return [self.lower(w) for w in self.lower_widths]

    def upper_family(self) -> List[SubNetSpec]:
        """All upper sub-networks implied by lower widths above the split.

        For the paper's [4, 8, 12, 16] family with split 8 this yields the
        upper-25% (channels 8–12) and upper-50% (channels 8–16) models.
        """
        specs = []
        for w in self.lower_widths:
            if w > self.split:
                specs.append(self.upper(w - self.split))
        return specs

    def all_specs(self) -> List[SubNetSpec]:
        return self.lower_family() + self.upper_family()

    def find(self, name: str) -> SubNetSpec:
        for spec in self.all_specs():
            if spec.name == name:
                return spec
        raise KeyError(f"no sub-network named {name!r}")


def paper_width_spec() -> WidthSpec:
    """The paper's configuration: [4, 8, 12, 16] kernels, split at 8, 3 convs."""
    return WidthSpec(max_width=16, lower_widths=(4, 8, 12, 16), split=8, num_convs=3)
