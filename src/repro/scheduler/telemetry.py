"""Serving telemetry: counters, EWMAs and latency histograms.

The control plane makes every decision from *measured* behaviour: the
width policy calibrates its cost-model predictions against an EWMA of
observed per-width service times, admission reasons about live queue
depth, and the benchmark reports p50/p95/p99 tails.  This module is the
shared, thread-safe registry those components write into.

Everything here is windowed or O(1): a long-lived serving frontend never
grows its telemetry without bound.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, Optional

#: How many recent observations a LatencyHistogram retains for percentile
#: queries (totals stay exact; only the sample window is bounded).
HISTOGRAM_WINDOW = 4096


def nearest_rank(ordered, p: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample (0 < p <= 100).

    The single definition shared by :class:`LatencyHistogram` and the
    scheduler benchmark's trace summaries, so reported tails can never
    diverge between the two.
    """
    if not 0.0 < p <= 100.0:
        raise ValueError(f"percentile must be in (0, 100], got {p}")
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


class Counter:
    """A thread-safe monotonically increasing counter."""

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("Counter can only increase")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class EWMA:
    """Exponentially weighted moving average of a scalar observation.

    ``value`` is ``None`` until the first observation, so callers can
    distinguish "never measured" from "measured small" — the width policy
    falls back to its analytical cost model in the former case.
    """

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value: Optional[float] = None
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, x: float) -> None:
        with self._lock:
            if self._value is None:
                self._value = float(x)
            else:
                self._value += self.alpha * (float(x) - self._value)
            self._count += 1

    @property
    def value(self) -> Optional[float]:
        with self._lock:
            return self._value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def __repr__(self) -> str:
        return f"EWMA(value={self.value}, n={self.count})"


class LatencyHistogram:
    """Windowed latency sample with percentile queries.

    Observations are kept in a bounded deque (:data:`HISTOGRAM_WINDOW`
    most recent); ``count``/``total`` stay exact over the full lifetime.
    Percentiles use the nearest-rank method over the window, which is
    plenty for serving dashboards and benchmark reports.
    """

    def __init__(self, window: int = HISTOGRAM_WINDOW) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self._samples: Deque[float] = deque(maxlen=window)
        self._count = 0
        self._total = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("latency cannot be negative")
        with self._lock:
            self._samples.append(float(seconds))
            self._count += 1
            self._total += seconds
            self._max = max(self._max, seconds)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def mean(self) -> Optional[float]:
        """Lifetime mean, or ``None`` before any observation."""
        with self._lock:
            return self._total / self._count if self._count else None

    def percentile(self, p: float) -> Optional[float]:
        """Nearest-rank percentile over the retained window (0 < p <= 100).

        ``None`` when nothing has been observed: an empty histogram has no
        tail, and reporting a fake ``0.0`` would read as "infinitely fast"
        in dashboards and bench records.
        """
        if not 0.0 < p <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        with self._lock:
            if not self._samples:
                return None
            return nearest_rank(sorted(self._samples), p)

    def summary(self) -> Dict[str, float]:
        """Count/mean/tails; the latency keys are omitted entirely when no
        observation has been made (no fake zero tails)."""
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "mean_s": self.mean(),
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
            "max_s": self._max,
        }


class Timer:
    """Context manager timing one block into an observation sink.

    The single clock-reading idiom for the serving stack: enter reads
    :func:`time.perf_counter`, exit computes ``elapsed`` and — on a clean
    exit only — feeds it to the sink.  A block that raises still gets its
    ``elapsed`` set (callers may want it for logging) but is *not*
    observed: a failed operation's duration would poison latency stats.
    """

    __slots__ = ("_observe", "_started", "elapsed")

    def __init__(self, observe: Optional[Callable[[float], None]] = None) -> None:
        self._observe = observe
        self.elapsed: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = time.perf_counter() - self._started
        if exc_type is None and self._observe is not None:
            self._observe(self.elapsed)


class MetricsRegistry:
    """Named counters / histograms / EWMAs, created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}
        self._ewmas: Dict[str, EWMA] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._counters.setdefault(name, Counter())

    def histogram(self, name: str) -> LatencyHistogram:
        with self._lock:
            return self._histograms.setdefault(name, LatencyHistogram())

    def ewma(self, name: str, alpha: float = 0.3) -> EWMA:
        with self._lock:
            if name not in self._ewmas:
                self._ewmas[name] = EWMA(alpha)
            return self._ewmas[name]

    def timer(self, name: str) -> Timer:
        """A :class:`Timer` observing into ``histogram(name)`` on clean exit.

        Usage::

            with metrics.timer("pool.execute_s") as timer:
                result = replica.run(...)
            # timer.elapsed holds the measured seconds
        """
        return Timer(self.histogram(name).observe)

    def counters_with_prefix(self, prefix: str) -> Dict[str, int]:
        """``{suffix: value}`` for every counter named ``<prefix><suffix>``.

        How the frontend report assembles its failure-cause breakdown
        (``frontend.failures.*``) without hard-coding the cause list.
        """
        with self._lock:
            counters = dict(self._counters)
        return {
            name[len(prefix):]: c.value
            for name, c in sorted(counters.items())
            if name.startswith(prefix)
        }

    def snapshot(self) -> Dict[str, object]:
        """A JSON-friendly dump of every registered metric."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
            ewmas = dict(self._ewmas)
        return {
            "counters": {k: c.value for k, c in sorted(counters.items())},
            "histograms": {k: h.summary() for k, h in sorted(histograms.items())},
            "ewmas": {
                k: {"value": e.value, "count": e.count} for k, e in sorted(ewmas.items())
            },
        }
