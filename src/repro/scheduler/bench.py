"""Synthetic open-loop serving trace for the SLA scheduler.

Drives the *same* deterministic arrival process (seeded through
:func:`repro.utils.rng.derive_seed`, so bench JSONs are reproducible
run-to-run) through two frontends over one shared weight store:

* **scheduler** — admission + deadline-driven width selection + hedged,
  failure-aware routing;
* **fixed_widest** — the same pool and micro-batching, but every request
  pinned to the widest sub-network with admission and hedging disabled
  (what a width-oblivious server would do).

The trace has three phases (steady → overload burst → steady) and
optionally kills one replica mid-burst.  Reported per run: goodput
(requests completed within deadline per second), deadline-miss rate,
lost-request count and p50/p95/p99 latency.

Used by ``python -m repro serve --sla <ms> --replicas <k>`` and by
``benchmarks/bench_scheduler.py`` (which records ``BENCH_scheduler.json``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.runtime.batching import DeadlineExceeded
from repro.scheduler.admission import SLA
from repro.scheduler.frontend import SchedulerConfig, ServingFrontend
from repro.scheduler.telemetry import nearest_rank

# Outcome labels for one traced request — the single definitions live in
# the trace layer (re-exported here for existing importers).
from repro.trace.recorder import LATE, LOST, OK, REJECTED
from repro.utils.rng import derive_seed, make_rng


@dataclass(frozen=True)
class TraceConfig:
    """A three-phase open-loop arrival process with an optional mid-run kill."""

    seed: int = 0
    base_rate_rps: float = 400.0    # steady phases (below widest capacity)
    burst_rate_rps: float = 3500.0  # overload (above widest, below narrowest)
    pre_s: float = 0.5
    burst_s: float = 0.4
    post_s: float = 0.5
    deadline_s: float = 0.04
    kill_at_s: Optional[float] = None  # kill a replica this far into the run
    kill_replica: int = 0

    def __post_init__(self) -> None:
        if min(self.base_rate_rps, self.burst_rate_rps) <= 0:
            raise ValueError("arrival rates must be positive")
        if min(self.pre_s, self.burst_s, self.post_s) < 0:
            raise ValueError("phase durations must be non-negative")
        if self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")

    @property
    def duration_s(self) -> float:
        return self.pre_s + self.burst_s + self.post_s

    def arrivals(self) -> List[float]:
        """Deterministic Poisson arrival times (seconds from trace start)."""
        rng = make_rng(derive_seed(self.seed, "arrivals"))
        times: List[float] = []
        t = 0.0
        for rate, end in (
            (self.base_rate_rps, self.pre_s),
            (self.burst_rate_rps, self.pre_s + self.burst_s),
            (self.base_rate_rps, self.duration_s),
        ):
            while True:
                t += rng.exponential(1.0 / rate)
                if t >= end:
                    t = end  # phase boundary: restart the clock at the new rate
                    break
                times.append(t)
        return times


#: Acceptance trace: a real overload burst plus a mid-burst replica kill.
ACCEPTANCE_TRACE = TraceConfig(seed=0, kill_at_s=0.7)
#: CI smoke trace: same shape, small enough for shared runners.
SMOKE_TRACE = TraceConfig(
    seed=0,
    base_rate_rps=300.0,
    burst_rate_rps=2500.0,
    pre_s=0.25,
    burst_s=0.25,
    post_s=0.25,
    kill_at_s=0.35,
)


def _make_payloads(model, count: int, seed: int) -> List[np.ndarray]:
    from repro.serving_bench import make_single_image_requests

    net = getattr(model, "net", model)
    return make_single_image_requests(
        count, net.image_size, net.in_channels, seed, "payloads"
    )


def _drive(
    frontend: ServingFrontend,
    trace: TraceConfig,
    payloads: List[np.ndarray],
    sla: SLA,
) -> List[Dict]:
    """Submit the trace open-loop; returns one record per request."""
    arrivals = trace.arrivals()
    records: List[Dict] = [
        {"arrival_s": t, "outcome": LOST, "latency_s": None} for t in arrivals
    ]
    done = threading.Event()
    remaining = [len(arrivals)]
    remaining_lock = threading.Lock()

    killer: Optional[threading.Timer] = None
    if trace.kill_at_s is not None:
        replica = frontend.pool.replicas[trace.kill_replica % len(frontend.pool.replicas)]
        killer = threading.Timer(trace.kill_at_s, replica.kill)
        killer.daemon = True

    def _finish(index: int, submit_t: float, future) -> None:
        now = time.monotonic()
        record = records[index]
        exc = future.exception()
        if exc is None:
            record["latency_s"] = now - submit_t
            record["outcome"] = OK if record["latency_s"] <= trace.deadline_s else LATE
        elif isinstance(exc, DeadlineExceeded):
            record["outcome"] = REJECTED  # fail-fast: no compute was spent
        else:
            record["outcome"] = LOST
        with remaining_lock:
            remaining[0] -= 1
            if remaining[0] == 0:
                done.set()

    start = time.monotonic()
    if killer is not None:
        killer.start()
    for index, arrival in enumerate(arrivals):
        delay = (start + arrival) - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        submit_t = time.monotonic()
        future = frontend.submit(payloads[index % len(payloads)], sla)
        future.add_done_callback(
            lambda f, i=index, t=submit_t: _finish(i, t, f)
        )
    if not done.wait(timeout=60.0):
        raise RuntimeError(f"trace did not drain: {remaining[0]} requests unresolved")
    if killer is not None:
        killer.cancel()
    return records


def summarize(records: List[Dict], trace: TraceConfig) -> Dict:
    """Goodput / miss-rate / tail-latency stats for one driven trace."""
    total = len(records)
    by_outcome = {k: 0 for k in (OK, LATE, REJECTED, LOST)}
    for r in records:
        by_outcome[r["outcome"]] += 1
    latencies = sorted(r["latency_s"] for r in records if r["latency_s"] is not None)

    def pct(p: float) -> float:
        return nearest_rank(latencies, p)

    misses = total - by_outcome[OK]
    return {
        "requests": total,
        "outcomes": by_outcome,
        "lost": by_outcome[LOST],
        "miss_rate": misses / total if total else 0.0,
        "goodput_rps": by_outcome[OK] / trace.duration_s,
        "latency": {
            "p50_s": pct(50),
            "p95_s": pct(95),
            "p99_s": pct(99),
            "max_s": latencies[-1] if latencies else 0.0,
        },
    }


def run_scheduler_comparison(
    model,
    trace: TraceConfig = SMOKE_TRACE,
    *,
    replicas: int = 2,
    scheduler_config: Optional[SchedulerConfig] = None,
    tracer=None,
    recorder=None,
) -> Dict:
    """Drive the trace through the scheduler and the fixed-widest baseline.

    ``replicas`` sizes both pools; an explicit ``scheduler_config`` is the
    single source of truth (its ``replicas`` wins), so the two runs can
    never compare unequal pools.  ``tracer``/``recorder`` (from
    :mod:`repro.trace`) attach to the *scheduler* run only — the baseline
    stays untraced so the comparison shows tracing's cost where it runs.
    """
    arrivals = trace.arrivals()
    payloads = _make_payloads(model, min(256, len(arrivals)), trace.seed)

    sched_config = scheduler_config or SchedulerConfig(
        replicas=replicas, default_sla=SLA(deadline_s=trace.deadline_s)
    )
    replicas = sched_config.replicas
    runs: Dict[str, Dict] = {}
    for label in ("fixed_widest", "scheduler"):
        if label == "scheduler":
            config, sla = sched_config, SLA(deadline_s=trace.deadline_s)
        else:
            net = getattr(model, "net", model)
            # _default_candidates returns the lower family narrowest-first.
            widest = ServingFrontend._default_candidates(model, net)[-1].name
            config = SchedulerConfig(
                replicas=replicas,
                enable_admission=False,
                enable_hedging=False,
                max_batch=sched_config.max_batch,
                max_delay_s=sched_config.max_delay_s,
                replica_backend=sched_config.replica_backend,
            )
            sla = SLA(
                deadline_s=trace.deadline_s, min_width=widest, max_width=widest
            )
        if label == "scheduler":
            frontend = ServingFrontend(model, config, tracer=tracer, recorder=recorder)
        else:
            frontend = ServingFrontend(model, config)
        try:
            records = _drive(frontend, trace, payloads, sla)
            runs[label] = {
                **summarize(records, trace),
                "frontend": frontend.report(),
            }
        finally:
            frontend.close()

    sched, base = runs["scheduler"], runs["fixed_widest"]
    return {
        "trace": asdict(trace),
        "replicas": replicas,
        "arrivals": len(arrivals),
        "fixed_widest": base,
        "scheduler": sched,
        "comparison": {
            "miss_rate_fixed_widest": base["miss_rate"],
            "miss_rate_scheduler": sched["miss_rate"],
            "miss_rate_reduction": base["miss_rate"] - sched["miss_rate"],
            "goodput_ratio": (
                sched["goodput_rps"] / base["goodput_rps"]
                if base["goodput_rps"] > 0
                else float("inf")
            ),
            "scheduler_lost": sched["lost"],
        },
    }
