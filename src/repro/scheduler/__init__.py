"""SLA-aware serving control plane.

Sits above :mod:`repro.engine` and :mod:`repro.runtime`: admission
control (fail-fast on infeasible deadlines), deadline-driven slimmable
width selection calibrated online, and failure-aware routing over a pool
of shared-weight replicas with hedged retries.
"""

from repro.scheduler.admission import (
    CRITICAL_PRIORITY,
    SLA,
    AdmissionController,
    AdmissionDecision,
    AdmissionRejected,
)
from repro.scheduler.frontend import (
    CONFIG_MAPPING_VERSION,
    SchedulerConfig,
    ServingFrontend,
)
from repro.scheduler.pool import Replica, ReplicaPool, ReplicaUnavailable
from repro.scheduler.telemetry import (
    Counter,
    EWMA,
    LatencyHistogram,
    MetricsRegistry,
)
from repro.scheduler.width_policy import WidthPolicy

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionRejected",
    "CONFIG_MAPPING_VERSION",
    "CRITICAL_PRIORITY",
    "Counter",
    "EWMA",
    "LatencyHistogram",
    "MetricsRegistry",
    "Replica",
    "ReplicaPool",
    "ReplicaUnavailable",
    "SchedulerConfig",
    "ServingFrontend",
    "SLA",
    "WidthPolicy",
]
