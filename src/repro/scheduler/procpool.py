"""Process-pool replicas: N interpreters, N GILs, one copy of the weights.

The thread-backed :class:`~repro.scheduler.pool.Replica` parallelises
inside one interpreter, so rows/s flatlines once the GIL saturates — long
before the machine does.  :class:`ProcessReplica` is the escape hatch:

* **Weights** move into shared memory **before** the workers fork
  (:func:`repro.nn.shm.ensure_shared_parameters`), so every worker maps
  the same physical pages — one weight segment set in ``/dev/shm`` no
  matter how many workers serve (the zero-copy fact
  ``benchmarks/bench_multiproc.py`` measures).
* **Invalidation** rides ``Parameter.version``: the counters live in the
  same segment, so a worker's
  :class:`~repro.nn.plan.PackedWeightCache` observes parent-side weight
  updates on its ordinary lock-free version compare and repacks — no
  invalidation message exists in the protocol.
* **Plans** are compiled *inside* each worker against the shared arenas
  (packed blocks and workspaces are per-worker, private, GIL-free).
* **Rows** cross the boundary through a per-worker shared-memory ring
  (:class:`~repro.nn.shm.ShmRing`); the wire carries only a placement
  descriptor, never pickled arrays.  Batches that outgrow the ring fall
  back to inline arrays on the same message.
* **Compute budget**: each worker pins ``OMP_NUM_THREADS`` (and the
  loaded OpenBLAS) to its slice of the machine, so K workers × B threads
  never oversubscribe the cores.

The frontend talks to a worker over the existing
:class:`~repro.engine.endpoints.TransportEndpoint` wire protocol
(extended with the ``run_parts`` op) on an ``AF_UNIX`` socketpair.  A
worker that misses the request timeout while its process is still alive
raises :class:`~repro.engine.endpoints.EndpointTimeout` — the replica
keeps waiting (the hedge watchdog covers stragglers independently);
a dead process surfaces as
:class:`~repro.scheduler.pool.ReplicaUnavailable` and flows through the
pool's ordinary eject/reroute machinery.
"""

from __future__ import annotations

import ctypes
import os
import signal
import socket
import threading
import time
from multiprocessing import get_context
from typing import Dict, List, Optional

import numpy as np

from repro.comm.message import Message, MessageKind, error_message, result_message
from repro.comm.tcp import TcpTransport
from repro.comm.transport import TransportError
from repro.engine.endpoints import (
    EndpointReply,
    EndpointTimeout,
    EndpointUnavailable,
    TransportEndpoint,
)
from repro.nn.shm import RING_SEGMENT_TAG, ShmRing, create_segment
from repro.scheduler.pool import Replica, ReplicaUnavailable
from repro.scheduler.telemetry import MetricsRegistry
from repro.utils.dtypes import compute_dtype

#: Default per-direction ring capacity (rows in, logits out).  16 MiB
#: holds a 16-row float64 CIFAR-scale batch with two orders of magnitude
#: to spare; MNIST-scale batches use a fraction of it.
DEFAULT_RING_BYTES = 16 << 20

_BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "GOTO_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)
_BLAS_SYMBOLS = (
    "openblas_set_num_threads",
    "openblas_set_num_threads_local",
    "openblas_set_num_threads64_",
    "scipy_openblas_set_num_threads64_",
    "goto_set_num_threads",
    "scipy_goto_set_num_threads64_",
)


def _loaded_blas_libraries() -> List[str]:
    """Paths of BLAS shared objects already mapped into this process."""
    paths: List[str] = []
    try:
        with open("/proc/self/maps") as maps:
            for line in maps:
                path = line.split(None, 5)[-1].strip() if " " in line else ""
                if (
                    path.endswith(".so")
                    or ".so." in path
                ) and ("blas" in path.lower() or "goto" in path.lower()):
                    if path not in paths:
                        paths.append(path)
    except OSError:
        pass
    return paths


def pin_blas_threads(n: int) -> bool:
    """Pin this process's BLAS/OpenMP pool to ``n`` threads.

    Sets the usual environment knobs (effective for libraries loaded
    later / in children) and calls the thread-count setter of any
    already-loaded OpenBLAS via ctypes (environment variables are read
    only at library init, so a forked worker must set the live pool
    explicitly).  Returns True when a live library accepted the call.
    """
    n = max(1, int(n))
    for var in _BLAS_ENV_VARS:
        os.environ[var] = str(n)
    applied = False
    for path in _loaded_blas_libraries():
        try:
            lib = ctypes.CDLL(path)
        except OSError:
            continue
        for symbol in _BLAS_SYMBOLS:
            fn = getattr(lib, symbol, None)
            if fn is not None:
                try:
                    fn(ctypes.c_int(n))
                except (ctypes.ArgumentError, OSError):
                    continue
                applied = True
                break
    return applied


def partition_thread_budget(workers: int, total: Optional[int] = None) -> int:
    """Per-worker BLAS thread budget: an even split of the visible cores."""
    if total is None:
        try:
            total = len(os.sched_getaffinity(0))
        except (AttributeError, OSError):
            total = os.cpu_count() or 1
    return max(1, total // max(1, workers))


# -- worker side ---------------------------------------------------------------


def _worker_main(
    model,
    transport_sock: socket.socket,
    ring_segment_name: str,
    ring_bytes: int,
    plan_options: Dict,
    omp_threads: int,
) -> None:
    """Forked worker entry: serve run_parts requests until shutdown.

    Inherits ``model`` whose parameter storage already lives in shared
    memory (the fork copied only the Python object graph, not the weight
    pages).  Compiles its own plans lazily per width against the shared
    arenas; packed blocks and workspaces stay private to this process.
    """
    signal.signal(signal.SIGTERM, lambda *_: os._exit(0))
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # the parent owns Ctrl-C
    pin_blas_threads(omp_threads)

    from multiprocessing import shared_memory

    from repro.engine.session import InferenceSession
    from repro.nn.plan import PackedWeightCache, compile_width_plans

    transport = TcpTransport(transport_sock)
    segment = shared_memory.SharedMemory(name=ring_segment_name)
    in_ring = ShmRing(segment, 0, ring_bytes)
    out_ring = ShmRing(segment, ring_bytes, ring_bytes)
    cache = PackedWeightCache()
    sessions: Dict[str, InferenceSession] = {}
    compile_options = dict(plan_options)
    compile_plans = compile_options.pop("compile", True)

    def _session(width: str) -> InferenceSession:
        if width not in sessions:
            plan = None
            if compile_plans:
                plan = compile_width_plans(
                    model, [width], cache=cache, **compile_options
                )[width]
            sessions[width] = InferenceSession(model, width, plan=plan)
        return sessions[width]

    def _handle_run_parts(message: Message) -> Message:
        fields = message.fields
        width = fields["spec"]
        if "ring_offset" in fields:
            shape = (int(fields["rows"]),) + tuple(fields["row_shape"])
            x = in_ring.view(int(fields["ring_offset"]), shape, fields["dtype"])
        else:
            x = message.arrays["x"]
        started = time.perf_counter()
        out = _session(width).run(x)
        compute_s = time.perf_counter() - started
        reply_fields = {
            "compute_s": compute_s,
            "rows": int(out.shape[0]),
            "packs": cache.packs,  # cumulative; the parent diffs per reply
        }
        if out.nbytes <= out_ring.capacity:
            offset = out_ring.place(out)
            return result_message(
                {},
                **reply_fields,
                ring_offset=int(offset),
                out_shape=[int(d) for d in out.shape],
                dtype=out.dtype.name,
            )
        return result_message({"out": out}, **reply_fields)

    try:
        while True:
            try:
                message = transport.recv(timeout=None)
            except TransportError:
                break  # parent gone: nothing left to serve
            if message.kind == MessageKind.PING:
                transport.send(Message(MessageKind.PONG))
                continue
            if message.kind == MessageKind.SHUTDOWN:
                break
            if message.kind == MessageKind.CRASH:
                os._exit(1)
            try:
                if message.kind == MessageKind.RUN_PARTS:
                    reply = _handle_run_parts(message)
                else:
                    reply = error_message(f"unsupported op {message.kind!r}")
            except Exception as exc:  # noqa: BLE001 - reported to the parent
                reply = error_message(f"{type(exc).__name__}: {exc}")
            try:
                transport.send(reply)
            except TransportError:
                break
    finally:
        transport.close()
        try:
            segment.close()
        except BufferError:
            pass
        # Skip inherited atexit machinery (pytest plugins, parent cleanup
        # hooks): the worker owns nothing that outlives it — the ring and
        # weight segments belong to the parent.
        os._exit(0)


# -- parent side ---------------------------------------------------------------


class ProcessReplica(Replica):
    """One forked serving worker behind the :class:`Replica` interface.

    Call only after the model's parameters were moved into shared memory
    (:func:`repro.nn.shm.ensure_shared_parameters`) — the fork then
    inherits shm-backed storage, and parent-side weight writes (plus
    their version bumps) are visible in every worker immediately.
    """

    def __init__(
        self,
        index: int,
        model,
        *,
        plan_options: Optional[Dict] = None,
        omp_threads: int = 1,
        ring_bytes: int = DEFAULT_RING_BYTES,
        request_timeout: float = 2.0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(index, model, plans=None)
        self.metrics = metrics or MetricsRegistry()
        self._ring_bytes = int(ring_bytes)
        self._segment = create_segment(RING_SEGMENT_TAG, 2 * self._ring_bytes)
        self._in_ring = ShmRing(self._segment, 0, self._ring_bytes)
        self._out_ring = ShmRing(self._segment, self._ring_bytes, self._ring_bytes)
        self._transport_lock = threading.Lock()  # one in-flight batch per worker
        self._reaped = False  # set once close() has reaped the process object
        self._last_packs = 0

        parent_sock, child_sock = socket.socketpair()
        ctx = get_context("fork")
        self._proc = ctx.Process(
            target=_worker_main,
            args=(
                model,
                child_sock,
                self._segment.name,
                self._ring_bytes,
                dict(plan_options or {"batch_rows": 16}),
                omp_threads,
            ),
            name=f"repro-worker-{index}",
            daemon=True,
        )
        self._proc.start()
        child_sock.close()
        self._endpoint = TransportEndpoint(
            f"worker-{index}",
            TcpTransport(parent_sock),
            request_timeout=request_timeout,
            alive_probe=self._proc.is_alive,
        )

    # -- health ---------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._alive and self._proc.is_alive()

    def ping(self) -> bool:
        """Heartbeat target: OS-level process liveness.

        Deliberately *not* a transport round-trip — the request/reply
        stream is busy with batches, and an interleaved ping would steal
        a reply.  ``kill -9`` flips this within one heartbeat interval.
        """
        return self._alive and self._proc.is_alive()

    def kill(self) -> None:
        """``kill -9`` the worker (the fault-injection twin of thread kill)."""
        if self._proc.is_alive():
            self._proc.kill()
        self._alive = False

    def revive(self) -> None:
        raise RuntimeError("a SIGKILLed worker process cannot be revived")

    # -- serving --------------------------------------------------------------

    def run(self, x: np.ndarray, width: str) -> np.ndarray:
        return self.run_parts([x], width)

    def run_parts(self, parts: List[np.ndarray], width: str) -> np.ndarray:
        if not self.ping():
            raise ReplicaUnavailable(f"worker {self.index} is down")
        dtype = compute_dtype(training=False)
        with self._transport_lock:
            started = time.perf_counter()
            reply = self._exchange(parts, width, dtype)
            service_s = time.perf_counter() - started
        if "ring_offset" in reply.fields:
            view = self._out_ring.view(
                int(reply.fields["ring_offset"]),
                tuple(reply.fields["out_shape"]),
                reply.fields["dtype"],
            )
            out = view.copy()  # the ring is reused by the next batch
        else:
            out = reply.arrays["out"]
        self._observe(reply, out.shape[0], service_s)
        return out

    def _exchange(self, parts: List[np.ndarray], width: str, dtype) -> EndpointReply:
        total = sum(p.shape[0] for p in parts) * int(
            np.prod(parts[0].shape[1:], dtype=np.int64)
        ) * np.dtype(dtype).itemsize
        try:
            if total <= self._in_ring.capacity:
                offset, rows = self._in_ring.place_parts(parts, dtype)
                fields = {
                    "ring_offset": int(offset),
                    "rows": int(rows),
                    "row_shape": [int(d) for d in parts[0].shape[1:]],
                    "dtype": np.dtype(dtype).name,
                }
                return self._await(width, fields, None)
            stacked = np.ascontiguousarray(
                np.concatenate(parts, axis=0) if len(parts) > 1 else parts[0],
                dtype=dtype,
            )
            return self._await(width, {}, {"x": stacked})
        except EndpointUnavailable as exc:
            # An ERROR reply from a live worker leaves the transport in
            # sync — the replica survives (the request reroutes anyway).
            # A dead process / closed transport is permanent.
            if not (self._proc.is_alive() and self._endpoint.available):
                self._alive = False
            raise ReplicaUnavailable(
                f"worker {self.index} lost: {exc}"
            ) from exc

    def _await(self, width: str, fields: Dict, arrays) -> EndpointReply:
        """Send one run_parts request; wait out slowness, fail on death.

        :class:`EndpointTimeout` means the process is alive and still
        computing — re-entering the recv keeps the transport in sync (a
        re-send would desynchronise request/reply pairing).  Stragglers
        are the hedge watchdog's problem, not ours.
        """
        try:
            return self._endpoint.run_parts(width, fields, arrays)
        except EndpointTimeout:
            pass
        while True:
            try:
                message, payload = self._endpoint.await_reply()
            except EndpointTimeout:
                continue
            return EndpointReply(
                arrays=message.arrays,
                fields=message.fields,
                compute_s=float(message.fields.get("compute_s", 0.0)),
                payload_bytes=payload,
            )

    def _observe(self, reply: EndpointReply, rows: int, service_s: float) -> None:
        """Per-worker telemetry: rows served, repacks, measured rows/s."""
        label = f"worker.{self.index}"
        self.metrics.counter(f"{label}.rows").inc(rows)
        self.metrics.counter(f"{label}.batches").inc()
        packs = int(reply.fields.get("packs", self._last_packs))
        if packs > self._last_packs:
            self.metrics.counter(f"{label}.repacks").inc(packs - self._last_packs)
            self._last_packs = packs
        if service_s > 0:
            self.metrics.ewma(f"{label}.rows_per_s").observe(rows / service_s)

    # -- lifecycle ------------------------------------------------------------

    def close(self, timeout: float = 5.0) -> None:
        """Bounded shutdown: SHUTDOWN message, join, SIGTERM, SIGKILL, unlink.

        The transport lock is held by any in-flight exchange; a *hung*
        exchange (stalled worker, dropped reply) must not stall close
        forever, so the graceful SHUTDOWN leg waits at most ``timeout``
        for the lock and is skipped — straight to signal escalation —
        when it cannot be taken.  Either way the worker is dead and the
        ring segment unlinked when this returns.
        """
        self._alive = False
        if self._reaped:
            return  # idempotent: the process object is already closed
        shutdown_sent = False
        if self._proc.is_alive():
            if self._transport_lock.acquire(timeout=timeout):
                try:
                    self._endpoint.shutdown()  # sends SHUTDOWN, closes transport
                    shutdown_sent = True
                except (TransportError, OSError):
                    pass
                finally:
                    self._transport_lock.release()
            if shutdown_sent:
                self._proc.join(timeout=timeout)
            if self._proc.is_alive():
                self._proc.terminate()  # SIGTERM: the worker's handler exits
                self._proc.join(timeout=timeout)
            if self._proc.is_alive():
                self._proc.kill()  # SIGKILL: unconditional
                self._proc.join(timeout=timeout)
        if not shutdown_sent:
            try:
                self._endpoint.transport.close()
            except (TransportError, OSError):
                pass
        self._proc.close()
        self._reaped = True
        from repro.nn.shm import _unlink_quietly

        _unlink_quietly(self._segment.name)

    def __repr__(self) -> str:
        state = "up" if self.ping() else "down"
        return f"ProcessReplica({self.index}, {state}, pending={self.pending})"


def make_process_replicas(
    model,
    count: int,
    *,
    plan_options: Optional[Dict] = None,
    ring_bytes: int = DEFAULT_RING_BYTES,
    request_timeout: float = 2.0,
    metrics: Optional[MetricsRegistry] = None,
    total_threads: Optional[int] = None,
) -> List[ProcessReplica]:
    """Share the weights, partition the thread budget, fork ``count`` workers."""
    from repro.nn.shm import ensure_shared_parameters

    ensure_shared_parameters(model)
    budget = partition_thread_budget(count, total_threads)
    return [
        ProcessReplica(
            i,
            model,
            plan_options=plan_options,
            omp_threads=budget,
            ring_bytes=ring_bytes,
            request_timeout=request_timeout,
            metrics=metrics,
        )
        for i in range(count)
    ]
