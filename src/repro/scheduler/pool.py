"""Failure-aware replica pool.

A :class:`Replica` models one serving endpoint: a set of
:class:`~repro.engine.session.InferenceSession` handles (one per
sub-network width, created lazily) over the *shared* weight store — so N
replicas still hold zero parameter copies, exactly like the engine's
in-process endpoints.  The :class:`ReplicaPool` routes each request to
the least-loaded healthy replica, ejects replicas via the same
:class:`~repro.runtime.monitor.HeartbeatMonitor` the live system uses
(threshold / interval from config keys), and retries a request on a
surviving replica when its endpoint dies mid-flight — the HA story at
request granularity.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.session import InferenceSession
from repro.runtime.monitor import HeartbeatMonitor
from repro.scheduler.telemetry import MetricsRegistry
from repro.utils.config import Config


class ReplicaUnavailable(RuntimeError):
    """The targeted replica (or every replica) cannot serve the request."""


class Replica:
    """One serving endpoint: per-width sessions over shared weights.

    ``plans`` maps width names to compiled
    :class:`~repro.nn.plan.InferencePlan` (or
    :class:`~repro.nn.plan.PlanLadder`) objects; a width with a plan
    serves through the allocation-free compiled path (plans are immutable
    and thread-safe, so all replicas share one plan per width — workspace
    isolation happens inside the plan's pool, and a ladder additionally
    lands each flush on the smallest row-ceiling rung that fits it).
    """

    def __init__(self, index: int, model, plans: Optional[Dict[str, object]] = None) -> None:
        self.index = index
        self._model = model
        self._plans = plans or {}
        self._sessions: Dict[str, InferenceSession] = {}
        self._session_lock = threading.Lock()
        self._pending = 0          # dispatched but not yet completed requests
        self._pending_lock = threading.Lock()
        self._alive = True

    # -- health ---------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._alive

    def ping(self) -> bool:
        """Heartbeat target (what a transport-level ping would report)."""
        return self._alive

    def kill(self) -> None:
        """Simulate endpoint death: every subsequent run raises."""
        self._alive = False

    def revive(self) -> None:
        self._alive = True

    # -- load accounting ------------------------------------------------------

    @property
    def pending(self) -> int:
        with self._pending_lock:
            return self._pending

    def begin(self) -> None:
        with self._pending_lock:
            self._pending += 1

    def finish(self) -> None:
        with self._pending_lock:
            self._pending = max(0, self._pending - 1)

    # -- serving --------------------------------------------------------------

    def session(self, width: str) -> InferenceSession:
        with self._session_lock:
            if width not in self._sessions:
                self._sessions[width] = InferenceSession(
                    self._model, width, plan=self._plans.get(width)
                )
            return self._sessions[width]

    def run(self, x: np.ndarray, width: str) -> np.ndarray:
        """Serve one (possibly batched) request at the given width."""
        if not self._alive:
            raise ReplicaUnavailable(f"replica {self.index} is down")
        out = self.session(width).run(x)
        if not self._alive:
            # Killed mid-forward: the caller must not trust a result a dead
            # endpoint could never have delivered.
            raise ReplicaUnavailable(f"replica {self.index} died mid-request")
        return out

    def run_parts(self, parts: List[np.ndarray], width: str) -> np.ndarray:
        """Serve a micro-batch given as per-request row groups.

        The compiled-plan path lands the rows directly in the plan's input
        arena; without a plan this concatenates and runs eagerly.
        """
        if not self._alive:
            raise ReplicaUnavailable(f"replica {self.index} is down")
        out = self.session(width).run_parts(parts)
        if not self._alive:
            raise ReplicaUnavailable(f"replica {self.index} died mid-request")
        return out

    def close(self) -> None:
        """Release endpoint resources (thread replicas hold none)."""

    def __repr__(self) -> str:
        state = "up" if self._alive else "down"
        return f"Replica({self.index}, {state}, pending={self.pending})"


class ReplicaPool:
    """Least-loaded routing over N replicas with heartbeat-driven ejection.

    ``backend`` selects what a replica *is*: ``"thread"`` (the default)
    keeps N in-process session sets sharing one interpreter, while
    ``"process"`` forks N worker processes over shared-memory weights
    (:mod:`repro.scheduler.procpool`) — same routing, health and reroute
    machinery either way, but process replicas escape the GIL and can
    genuinely die (``kill -9``), which the heartbeat path handles
    identically to a simulated thread kill.  ``process_options`` forwards
    to :func:`~repro.scheduler.procpool.make_process_replicas`.
    """

    def __init__(
        self,
        model,
        num_replicas: int,
        *,
        config: Optional[Config] = None,
        metrics: Optional[MetricsRegistry] = None,
        plans: Optional[Dict[str, object]] = None,
        backend: str = "thread",
        process_options: Optional[Dict] = None,
    ) -> None:
        if num_replicas <= 0:
            raise ValueError("num_replicas must be positive")
        if backend not in ("thread", "process"):
            raise ValueError(f"unknown replica backend {backend!r}")
        self.backend = backend
        self.metrics = metrics or MetricsRegistry()
        # Spawn ingredients, kept so a supervisor can respawn a dead
        # replica with exactly the recipe the pool was built from.
        self._model = model
        self._plans = plans
        self._process_options = dict(process_options or {})
        if backend == "process":
            from repro.scheduler.procpool import make_process_replicas

            self.replicas: List[Replica] = make_process_replicas(
                model,
                num_replicas,
                metrics=self.metrics,
                **(process_options or {}),
            )
        else:
            self.replicas = [Replica(i, model, plans) for i in range(num_replicas)]
        # One monitor per replica, all reading the shared heartbeat config
        # keys — the same detector the live master/worker path uses.
        self.monitors: List[HeartbeatMonitor] = [
            HeartbeatMonitor.from_config(replica.ping, config)
            for replica in self.replicas
        ]
        self.heartbeat_interval_s = self.monitors[0].interval_s
        self._lock = threading.Lock()         # routing decisions
        self._health_lock = threading.Lock()  # monitor state transitions

    # -- health ---------------------------------------------------------------

    def healthy(self) -> List[Replica]:
        return [
            r for r, m in zip(self.replicas, self.monitors) if not m.declared_dead
        ]

    def check_health(self) -> List[Replica]:
        """Run one heartbeat round; returns replicas newly declared dead.

        Serialised with :meth:`report_failure` (one lock) so a death seen
        simultaneously by the health loop and a failing request counts as
        exactly one ejection.
        """
        ejected = []
        with self._health_lock:
            for replica, monitor in zip(self.replicas, self.monitors):
                if monitor.declared_dead:
                    continue
                if not monitor.check() and monitor.declared_dead:
                    ejected.append(replica)
                    self.metrics.counter("pool.ejections").inc()
        return ejected

    def report_failure(self, replica: Replica) -> None:
        """Account an observed request failure as missed heartbeats.

        A hard transport failure is stronger evidence than a silent miss,
        so the monitor is driven to its threshold immediately — the
        replica is ejected through the same state machine the periodic
        heartbeat uses, keeping one definition of "dead".
        """
        monitor = self.monitors[replica.index]
        with self._health_lock:
            if self.replicas[replica.index] is not replica:
                # Stale report: this replica was already replaced by a
                # respawn.  Its monitor now pings the *new* (live) peer, so
                # driving it here could never reach the threshold — and the
                # failure belongs to an object no longer in routing anyway.
                return
            was_dead = monitor.declared_dead
            while not monitor.declared_dead and not replica.ping():
                monitor.check()
            if monitor.declared_dead and not was_dead:
                self.metrics.counter("pool.ejections").inc()

    # -- respawn --------------------------------------------------------------

    def spawn_replica(self, index: int) -> Replica:
        """Build a fresh replica for slot ``index`` from the pool's recipe.

        Process backend: forks a brand-new worker (the old process is
        gone — SIGKILL is not survivable).  Thread backend: revives the
        existing object in place.  The result is *not* yet routed; warm
        it up, then :meth:`adopt` it.
        """
        replica = self.replicas[index]
        if self.backend != "process":
            replica.revive()
            return replica
        from repro.scheduler.procpool import (
            ProcessReplica,
            partition_thread_budget,
        )

        options = dict(self._process_options)
        total_threads = options.pop("total_threads", None)
        options.setdefault(
            "omp_threads", partition_thread_budget(len(self.replicas), total_threads)
        )
        return ProcessReplica(index, self._model, metrics=self.metrics, **options)

    def adopt(self, index: int, replica: Replica) -> Replica:
        """Swap ``replica`` into slot ``index`` and return it to routing.

        The monitor object keeps its slot — it is rebound to the new
        peer and reset, so the replica re-enters :meth:`healthy` with a
        clean heartbeat history.  Returns the replaced replica (the
        caller owns closing it; for a respawn that unlinks the dead
        worker's ring segment).
        """
        with self._lock, self._health_lock:
            old = self.replicas[index]
            self.replicas[index] = replica
            self.monitors[index].rebind(replica.ping)
        return old

    # -- routing --------------------------------------------------------------

    def total_pending(self) -> int:
        return sum(r.pending for r in self.healthy())

    def route(self, exclude: Tuple[int, ...] = ()) -> Replica:
        """Least-loaded healthy replica, skipping ``exclude`` indices."""
        with self._lock:
            options = [r for r in self.healthy() if r.index not in exclude]
            if not options:
                # Nothing else left: fall back to any healthy replica (a
                # hedge would rather reuse the primary's replica than fail).
                options = self.healthy()
            if not options:
                raise ReplicaUnavailable("no healthy replicas")
            choice = min(options, key=lambda r: (r.pending, r.index))
            choice.begin()
            return choice

    def execute(
        self, x: np.ndarray, width: str, *, exclude: Tuple[int, ...] = ()
    ) -> Tuple[np.ndarray, Replica]:
        """Serve ``x`` on the least-loaded healthy replica; reroute on death.

        Tries every healthy replica at most once; a replica that fails is
        reported to its monitor (ejection) before the next is tried.
        Raises :class:`ReplicaUnavailable` only when the whole pool is dead.

        This is the *synchronous* serving path (no batching, no futures);
        :class:`~repro.scheduler.frontend.ServingFrontend` implements the
        same route/report/reroute cycle asynchronously over its queues —
        keep the two semantically aligned when changing either.
        """
        tried = tuple(exclude)
        for _ in range(len(self.replicas)):
            replica = self.route(exclude=tried)
            try:
                # The timer observes into pool.execute_s only on success —
                # a dead-replica attempt's duration is not a service time.
                with self.metrics.timer("pool.execute_s"):
                    out = replica.run(x, width)
                return out, replica
            except ReplicaUnavailable:
                self.report_failure(replica)
                self.metrics.counter("pool.reroutes").inc()
                tried = tried + (replica.index,)
            finally:
                replica.finish()
        raise ReplicaUnavailable("no healthy replicas")

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release every replica (process workers shut down and unlink shm)."""
        for replica in self.replicas:
            replica.close()

    def __repr__(self) -> str:
        return f"ReplicaPool({self.replicas!r})"


def wait_for_ejection(
    pool: ReplicaPool, *, timeout_s: float = 1.0
) -> List[Replica]:
    """Drive heartbeat rounds until an ejection happens or ``timeout_s`` passes.

    Test/benchmark helper mirroring what the frontend's background health
    loop does continuously.
    """
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        ejected = pool.check_health()
        if ejected:
            return ejected
        time.sleep(pool.heartbeat_interval_s)
    return []
