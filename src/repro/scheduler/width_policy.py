"""Deadline-driven sub-network width selection.

The paper's weight store serves many widths; this policy decides *which*
width a given request gets.  The rule is the slimmable-network latency /
accuracy tradeoff made operational: **serve the widest slice predicted to
meet the deadline** — wider means better accuracy, narrower means lower
latency, and the deadline says how much latency the caller will tolerate.

Predictions start from the analytical cost model
(:func:`repro.device.cost.subnet_flops` through a
:class:`~repro.device.profiles.DeviceProfile`), which gets the *relative*
ordering of widths right but knows nothing about this process's
wall-clock speed.  An online calibration layer fixes that: a per-width
EWMA of observed service times (exact once a width has been served) plus
a pooled observed/model ratio that transfers calibration to widths not
yet observed.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.device.cost import subnet_flops, subnet_num_layers
from repro.device.profiles import DeviceProfile, jetson_nx_master
from repro.scheduler.telemetry import EWMA
from repro.slimmable.slim_net import SlimmableConvNet
from repro.slimmable.spec import SubNetSpec


class WidthPolicy:
    """Pick the widest candidate whose calibrated latency fits the budget.

    ``candidates`` are kept sorted widest-first (by model FLOPs), so
    :meth:`choose` scans until the first one that fits; ``min_width`` /
    ``max_width`` name the narrowest / widest candidates the caller's SLA
    allows.  Falls back to the narrowest allowed width when nothing fits
    — admission decides whether even that is worth queuing.
    """

    def __init__(
        self,
        net: SlimmableConvNet,
        candidates: Sequence[SubNetSpec],
        *,
        profile: Optional[DeviceProfile] = None,
        alpha: float = 0.3,
        plan_flops: Optional[Mapping[str, int]] = None,
    ) -> None:
        if not candidates:
            raise ValueError("WidthPolicy needs at least one candidate spec")
        profile = profile or jetson_nx_master()
        layers = subnet_num_layers(net)
        # Widths with a compiled plan seed their base cost from the plan's
        # own FLOP count (derived from the compiled geometry) — the same
        # numbers the plan will actually execute; the rest fall back to
        # the analytical cost model.
        plan_flops = plan_flops or {}
        self._base_s: Dict[str, float] = {
            spec.name: profile.compute_time(
                plan_flops.get(spec.name, None) or subnet_flops(net, spec), layers
            )
            for spec in candidates
        }
        # Widest (most FLOPs) first: choose() returns the first fit.
        self.candidates: Tuple[SubNetSpec, ...] = tuple(
            sorted(candidates, key=lambda s: self._base_s[s.name], reverse=True)
        )
        self._by_name = {spec.name: spec for spec in self.candidates}
        self._observed: Dict[str, EWMA] = {
            spec.name: EWMA(alpha) for spec in self.candidates
        }
        self._scale = EWMA(alpha)  # pooled observed/model wall-clock ratio

    # -- calibration ---------------------------------------------------------

    def observe(self, name: str, service_s: float) -> None:
        """Record one observed service time for width ``name``."""
        if name not in self._observed:
            raise KeyError(f"unknown width {name!r}")
        if service_s < 0:
            raise ValueError("service time cannot be negative")
        self._observed[name].observe(service_s)
        self._scale.observe(service_s / self._base_s[name])

    def predict(self, name: str) -> float:
        """Calibrated service-time prediction for width ``name``.

        Preference order: the width's own EWMA; the analytical cost scaled
        by the pooled ratio learned on *other* widths; the raw analytical
        cost (relative ordering only, before any observation).
        """
        if name not in self._base_s:
            raise KeyError(f"unknown width {name!r}")
        own = self._observed[name].value
        if own is not None:
            return own
        scale = self._scale.value
        return self._base_s[name] * (scale if scale is not None else 1.0)

    # -- selection -----------------------------------------------------------

    def allowed(
        self, min_width: Optional[str] = None, max_width: Optional[str] = None
    ) -> List[SubNetSpec]:
        """Candidates within ``[min_width, max_width]``, widest first."""
        lo = self._rank(min_width) if min_width is not None else len(self.candidates) - 1
        hi = self._rank(max_width) if max_width is not None else 0
        if hi > lo:
            raise ValueError(
                f"min_width {min_width!r} is wider than max_width {max_width!r}"
            )
        return list(self.candidates[hi : lo + 1])

    def narrowest(
        self, min_width: Optional[str] = None, max_width: Optional[str] = None
    ) -> SubNetSpec:
        return self.allowed(min_width, max_width)[-1]

    def narrower_than(self, name: str, min_width: Optional[str] = None) -> Optional[SubNetSpec]:
        """The next candidate narrower than ``name`` (for hedged retries)."""
        rank = self._rank(name)
        floor = self._rank(min_width) if min_width is not None else len(self.candidates) - 1
        if rank >= floor:
            return None
        return self.candidates[rank + 1]

    def choose(
        self,
        budget_s: float,
        *,
        min_width: Optional[str] = None,
        max_width: Optional[str] = None,
    ) -> Tuple[SubNetSpec, float]:
        """Widest allowed spec predicted to finish within ``budget_s``.

        Returns ``(spec, predicted_s)``.  When no allowed width fits, the
        narrowest allowed one is returned (with its honest prediction) —
        rejecting outright is admission's call, not the width policy's.
        """
        allowed = self.allowed(min_width, max_width)
        for spec in allowed:
            predicted = self.predict(spec.name)
            if predicted <= budget_s:
                return spec, predicted
        fallback = allowed[-1]
        return fallback, self.predict(fallback.name)

    def _rank(self, name: Optional[str]) -> int:
        for i, spec in enumerate(self.candidates):
            if spec.name == name:
                return i
        raise KeyError(f"unknown width {name!r}")

    def calibration_snapshot(self) -> Dict[str, Dict[str, Optional[float]]]:
        """Per-width model cost, EWMA and prediction (for reports/debugging)."""
        return {
            spec.name: {
                "model_s": self._base_s[spec.name],
                "observed_ewma_s": self._observed[spec.name].value,
                "predicted_s": self.predict(spec.name),
            }
            for spec in self.candidates
        }
